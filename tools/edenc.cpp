// edenc — the Eden action-function compiler CLI.
//
// Compiles an EAL source file against the enclave schema and prints the
// disassembly, derived concurrency mode and state usage; optionally
// emits the portable bytecode and dry-runs the program against zeroed
// state with the reference evaluator (the paper's "run and debug
// locally without invoking the enclave", Section 6).
//
// Usage:
//   edenc FILE.eal [--emit OUT.edbc] [--run] [--global name[:array]]...
//         [--profile] [--profile-runs N]
//
// Global state fields referenced by the program are declared with
// --global; plain names are read-only scalars, ":array" suffixes make
// plain arrays, "name:a,b,c" makes a record array with those fields.
//
// --profile executes the compiled bytecode in the real interpreter
// (zeroed state, --profile-runs executions, default 100) with the
// hot-spot profiler attached, then prints the disassembly annotated
// with per-instruction execution counts and sampled cycle shares.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/enclave_schema.h"
#include "lang/ast_eval.h"
#include "lang/compiler.h"
#include "lang/disasm.h"
#include "lang/interpreter.h"
#include "lang/optimizer.h"
#include "lang/parser.h"
#include "telemetry/profile.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: edenc FILE.eal [-O0|-O1] [--emit OUT.edbc] [--run]\n"
               "             [--profile] [--profile-runs N]\n"
               "             [--global NAME | --global NAME:array |\n"
               "              --global NAME:f1,f2,...]...\n");
  return 2;
}

eden::lang::FieldDef parse_global(const std::string& spec) {
  eden::lang::FieldDef f;
  const std::size_t colon = spec.find(':');
  f.name = spec.substr(0, colon);
  f.access = eden::lang::Access::read_write;
  if (colon == std::string::npos) {
    f.kind = eden::lang::FieldKind::scalar;
    return f;
  }
  const std::string rest = spec.substr(colon + 1);
  if (rest == "array") {
    f.kind = eden::lang::FieldKind::array;
    return f;
  }
  f.kind = eden::lang::FieldKind::record_array;
  std::stringstream ss(rest);
  std::string field;
  while (std::getline(ss, field, ',')) {
    if (!field.empty()) f.record_fields.push_back(field);
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eden;

  std::string input_path;
  std::string emit_path;
  bool run = false;
  bool profile = false;
  long profile_runs = 100;
  lang::OptLevel opt_level = lang::OptLevel::O1;
  std::vector<lang::FieldDef> globals;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--emit" && i + 1 < argc) {
      emit_path = argv[++i];
    } else if (arg == "--run") {
      run = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--profile-runs" && i + 1 < argc) {
      profile_runs = std::strtol(argv[++i], nullptr, 10);
      profile = true;
    } else if (arg == "-O0") {
      opt_level = lang::OptLevel::O0;
    } else if (arg == "-O1") {
      opt_level = lang::OptLevel::O1;
    } else if (arg == "--global" && i + 1 < argc) {
      globals.push_back(parse_global(argv[++i]));
    } else if (arg.rfind("-", 0) == 0) {
      return usage();
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      return usage();
    }
  }
  if (input_path.empty()) return usage();

  std::ifstream in(input_path);
  if (!in) {
    std::fprintf(stderr, "edenc: cannot open %s\n", input_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();

  try {
    const lang::StateSchema schema = core::make_enclave_schema(globals);
    const lang::Program ast = lang::parse(source);
    // Compile at O0 first so the raw translation can be shown, then run
    // the optimizer stage explicitly (the same pipeline an enclave's
    // install_action applies).
    const lang::CompiledProgram unoptimized =
        lang::compile(ast, schema, {}, input_path);
    lang::OptStats opt_stats;
    const lang::CompiledProgram program =
        lang::optimize(unoptimized, opt_level, &opt_stats);

    std::printf("%s: %zu instruction(s), %zu function(s)\n",
                input_path.c_str(), program.code.size(),
                program.functions.size());
    std::printf("concurrency: %s\n",
                std::string(lang::concurrency_mode_name(program.concurrency))
                    .c_str());
    if (opt_level != lang::OptLevel::O0) {
      std::printf("optimizer: %zu -> %zu instruction(s) "
                  "(%zu folded, %zu dead, %zu jumps threaded, %zu fused)\n",
                  opt_stats.instructions_before, opt_stats.instructions_after,
                  opt_stats.constants_folded, opt_stats.dead_eliminated,
                  opt_stats.jumps_threaded, opt_stats.fused);
    }
    for (int s = 0; s < lang::kNumScopes; ++s) {
      const auto scope = static_cast<lang::Scope>(s);
      std::printf("%s: reads scalars %#llx arrays %#llx, "
                  "writes scalars %#llx arrays %#llx\n",
                  std::string(lang::scope_name(scope)).c_str(),
                  static_cast<unsigned long long>(
                      program.usage.scalar_read[s]),
                  static_cast<unsigned long long>(program.usage.array_read[s]),
                  static_cast<unsigned long long>(
                      program.usage.scalar_write[s]),
                  static_cast<unsigned long long>(
                      program.usage.array_write[s]));
    }
    if (opt_level != lang::OptLevel::O0 &&
        program.code.size() != unoptimized.code.size()) {
      std::printf("\n; ---- before optimization (-O0) ----\n%s",
                  lang::disassemble(unoptimized).c_str());
      std::printf("\n; ---- after optimization (-O1) ----\n%s",
                  lang::disassemble(program).c_str());
    } else {
      std::printf("\n%s", lang::disassemble(program).c_str());
    }

    if (profile) {
      lang::StateBlock pkt =
          lang::StateBlock::from_schema(schema, lang::Scope::packet);
      lang::StateBlock msg =
          lang::StateBlock::from_schema(schema, lang::Scope::message);
      lang::StateBlock glb =
          lang::StateBlock::from_schema(schema, lang::Scope::global);
      lang::Interpreter interp;
      telemetry::ProgramProfile prof;
      interp.set_profile(&prof);
      lang::ExecStatus last = lang::ExecStatus::ok;
      for (long r = 0; r < profile_runs; ++r) {
        last = interp.execute(program, &pkt, &msg, &glb).status;
      }
      interp.set_profile(nullptr);
      std::printf("\n; ---- hot-spot profile (%ld run(s), zeroed state, "
                  "last status: %s) ----\n%s",
                  profile_runs,
                  std::string(lang::exec_status_name(last)).c_str(),
                  lang::disassemble(program, prof).c_str());
    }

    if (!emit_path.empty()) {
      const std::vector<std::uint8_t> bytes = program.serialize();
      std::ofstream out(emit_path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      std::printf("\nwrote %zu bytes of bytecode to %s\n", bytes.size(),
                  emit_path.c_str());
    }

    if (run) {
      lang::StateBlock pkt =
          lang::StateBlock::from_schema(schema, lang::Scope::packet);
      lang::StateBlock msg =
          lang::StateBlock::from_schema(schema, lang::Scope::message);
      lang::StateBlock glb =
          lang::StateBlock::from_schema(schema, lang::Scope::global);
      util::Rng rng(1);
      lang::AstEvalOptions options;
      options.max_nodes = 10'000'000;
      const lang::ExecResult r =
          lang::ast_eval(ast, schema, &pkt, &msg, &glb, rng, 0, options);
      std::printf("\ndry run (reference evaluator, zeroed state):\n");
      std::printf("  status: %s\n",
                  std::string(lang::exec_status_name(r.status)).c_str());
      std::printf("  result: %lld, nodes evaluated: %llu\n",
                  static_cast<long long>(r.value),
                  static_cast<unsigned long long>(r.steps));
      std::printf("  packet state after:");
      for (std::size_t i = 0; i < pkt.scalars.size(); ++i) {
        if (pkt.scalars[i] != 0) {
          std::printf(" [%zu]=%lld", i,
                      static_cast<long long>(pkt.scalars[i]));
        }
      }
      std::printf("\n");
    }
  } catch (const lang::LangError& e) {
    std::fprintf(stderr, "edenc: %s: %s\n", input_path.c_str(), e.what());
    return 1;
  }
  return 0;
}
