file(REMOVE_RECURSE
  "CMakeFiles/fig11_pulsar_qos.dir/fig11_pulsar_qos.cpp.o"
  "CMakeFiles/fig11_pulsar_qos.dir/fig11_pulsar_qos.cpp.o.d"
  "fig11_pulsar_qos"
  "fig11_pulsar_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pulsar_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
