# Empty compiler generated dependencies file for fig11_pulsar_qos.
# This may be replaced when dependencies are built.
