# Empty dependencies file for micro_enclave.
# This may be replaced when dependencies are built.
