file(REMOVE_RECURSE
  "CMakeFiles/micro_enclave.dir/micro_enclave.cpp.o"
  "CMakeFiles/micro_enclave.dir/micro_enclave.cpp.o.d"
  "micro_enclave"
  "micro_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
