# Empty dependencies file for fig10_wcmp.
# This may be replaced when dependencies are built.
