file(REMOVE_RECURSE
  "CMakeFiles/fig10_wcmp.dir/fig10_wcmp.cpp.o"
  "CMakeFiles/fig10_wcmp.dir/fig10_wcmp.cpp.o.d"
  "fig10_wcmp"
  "fig10_wcmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_wcmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
