# Empty compiler generated dependencies file for fig9_flow_scheduling.
# This may be replaced when dependencies are built.
