file(REMOVE_RECURSE
  "CMakeFiles/fig9_flow_scheduling.dir/fig9_flow_scheduling.cpp.o"
  "CMakeFiles/fig9_flow_scheduling.dir/fig9_flow_scheduling.cpp.o.d"
  "fig9_flow_scheduling"
  "fig9_flow_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_flow_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
