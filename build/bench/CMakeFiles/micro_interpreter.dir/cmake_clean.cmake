file(REMOVE_RECURSE
  "CMakeFiles/micro_interpreter.dir/micro_interpreter.cpp.o"
  "CMakeFiles/micro_interpreter.dir/micro_interpreter.cpp.o.d"
  "micro_interpreter"
  "micro_interpreter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
