# Empty dependencies file for edenc.
# This may be replaced when dependencies are built.
