
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/edenc.cpp" "tools/CMakeFiles/edenc.dir/edenc.cpp.o" "gcc" "tools/CMakeFiles/edenc.dir/edenc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eden_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/eden_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/eden_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eden_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
