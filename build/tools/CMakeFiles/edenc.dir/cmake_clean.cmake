file(REMOVE_RECURSE
  "CMakeFiles/edenc.dir/edenc.cpp.o"
  "CMakeFiles/edenc.dir/edenc.cpp.o.d"
  "edenc"
  "edenc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edenc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
