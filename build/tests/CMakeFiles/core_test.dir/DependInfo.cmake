
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/class_name_test.cpp" "tests/CMakeFiles/core_test.dir/core/class_name_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/class_name_test.cpp.o.d"
  "/root/repo/tests/core/controller_test.cpp" "tests/CMakeFiles/core_test.dir/core/controller_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/controller_test.cpp.o.d"
  "/root/repo/tests/core/enclave_schema_test.cpp" "tests/CMakeFiles/core_test.dir/core/enclave_schema_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/enclave_schema_test.cpp.o.d"
  "/root/repo/tests/core/enclave_test.cpp" "tests/CMakeFiles/core_test.dir/core/enclave_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/enclave_test.cpp.o.d"
  "/root/repo/tests/core/stage_test.cpp" "tests/CMakeFiles/core_test.dir/core/stage_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/stage_test.cpp.o.d"
  "/root/repo/tests/core/wire_test.cpp" "tests/CMakeFiles/core_test.dir/core/wire_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eden_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/eden_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/functions/CMakeFiles/eden_functions.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/eden_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/eden_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eden_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
