file(REMOVE_RECURSE
  "CMakeFiles/hoststack_test.dir/hoststack/host_stack_test.cpp.o"
  "CMakeFiles/hoststack_test.dir/hoststack/host_stack_test.cpp.o.d"
  "CMakeFiles/hoststack_test.dir/hoststack/rate_conformance_test.cpp.o"
  "CMakeFiles/hoststack_test.dir/hoststack/rate_conformance_test.cpp.o.d"
  "CMakeFiles/hoststack_test.dir/hoststack/token_bucket_test.cpp.o"
  "CMakeFiles/hoststack_test.dir/hoststack/token_bucket_test.cpp.o.d"
  "hoststack_test"
  "hoststack_test.pdb"
  "hoststack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoststack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
