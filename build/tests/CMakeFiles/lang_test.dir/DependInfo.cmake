
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lang/ast_eval_test.cpp" "tests/CMakeFiles/lang_test.dir/lang/ast_eval_test.cpp.o" "gcc" "tests/CMakeFiles/lang_test.dir/lang/ast_eval_test.cpp.o.d"
  "/root/repo/tests/lang/compiler_test.cpp" "tests/CMakeFiles/lang_test.dir/lang/compiler_test.cpp.o" "gcc" "tests/CMakeFiles/lang_test.dir/lang/compiler_test.cpp.o.d"
  "/root/repo/tests/lang/interpreter_test.cpp" "tests/CMakeFiles/lang_test.dir/lang/interpreter_test.cpp.o" "gcc" "tests/CMakeFiles/lang_test.dir/lang/interpreter_test.cpp.o.d"
  "/root/repo/tests/lang/lexer_test.cpp" "tests/CMakeFiles/lang_test.dir/lang/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/lang_test.dir/lang/lexer_test.cpp.o.d"
  "/root/repo/tests/lang/parser_test.cpp" "tests/CMakeFiles/lang_test.dir/lang/parser_test.cpp.o" "gcc" "tests/CMakeFiles/lang_test.dir/lang/parser_test.cpp.o.d"
  "/root/repo/tests/lang/robustness_test.cpp" "tests/CMakeFiles/lang_test.dir/lang/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/lang_test.dir/lang/robustness_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/eden_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/functions/CMakeFiles/eden_functions.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eden_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/eden_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eden_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
