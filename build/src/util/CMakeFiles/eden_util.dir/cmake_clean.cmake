file(REMOVE_RECURSE
  "CMakeFiles/eden_util.dir/rng.cpp.o"
  "CMakeFiles/eden_util.dir/rng.cpp.o.d"
  "CMakeFiles/eden_util.dir/stats.cpp.o"
  "CMakeFiles/eden_util.dir/stats.cpp.o.d"
  "CMakeFiles/eden_util.dir/table.cpp.o"
  "CMakeFiles/eden_util.dir/table.cpp.o.d"
  "libeden_util.a"
  "libeden_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
