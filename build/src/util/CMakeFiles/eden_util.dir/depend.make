# Empty dependencies file for eden_util.
# This may be replaced when dependencies are built.
