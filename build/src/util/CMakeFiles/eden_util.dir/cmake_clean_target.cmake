file(REMOVE_RECURSE
  "libeden_util.a"
)
