# Empty dependencies file for eden_storage.
# This may be replaced when dependencies are built.
