file(REMOVE_RECURSE
  "libeden_storage.a"
)
