file(REMOVE_RECURSE
  "libeden_transport.a"
)
