file(REMOVE_RECURSE
  "CMakeFiles/eden_transport.dir/tcp.cpp.o"
  "CMakeFiles/eden_transport.dir/tcp.cpp.o.d"
  "libeden_transport.a"
  "libeden_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
