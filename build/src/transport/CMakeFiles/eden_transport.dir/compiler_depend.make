# Empty compiler generated dependencies file for eden_transport.
# This may be replaced when dependencies are built.
