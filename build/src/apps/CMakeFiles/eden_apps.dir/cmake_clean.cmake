file(REMOVE_RECURSE
  "CMakeFiles/eden_apps.dir/memcached_stage.cpp.o"
  "CMakeFiles/eden_apps.dir/memcached_stage.cpp.o.d"
  "CMakeFiles/eden_apps.dir/workload.cpp.o"
  "CMakeFiles/eden_apps.dir/workload.cpp.o.d"
  "libeden_apps.a"
  "libeden_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
