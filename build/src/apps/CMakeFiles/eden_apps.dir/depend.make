# Empty dependencies file for eden_apps.
# This may be replaced when dependencies are built.
