file(REMOVE_RECURSE
  "libeden_apps.a"
)
