file(REMOVE_RECURSE
  "CMakeFiles/eden_core.dir/class_name.cpp.o"
  "CMakeFiles/eden_core.dir/class_name.cpp.o.d"
  "CMakeFiles/eden_core.dir/controller.cpp.o"
  "CMakeFiles/eden_core.dir/controller.cpp.o.d"
  "CMakeFiles/eden_core.dir/enclave.cpp.o"
  "CMakeFiles/eden_core.dir/enclave.cpp.o.d"
  "CMakeFiles/eden_core.dir/enclave_schema.cpp.o"
  "CMakeFiles/eden_core.dir/enclave_schema.cpp.o.d"
  "CMakeFiles/eden_core.dir/stage.cpp.o"
  "CMakeFiles/eden_core.dir/stage.cpp.o.d"
  "CMakeFiles/eden_core.dir/wire.cpp.o"
  "CMakeFiles/eden_core.dir/wire.cpp.o.d"
  "libeden_core.a"
  "libeden_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
