file(REMOVE_RECURSE
  "libeden_core.a"
)
