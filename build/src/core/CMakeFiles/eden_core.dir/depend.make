# Empty dependencies file for eden_core.
# This may be replaced when dependencies are built.
