
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/class_name.cpp" "src/core/CMakeFiles/eden_core.dir/class_name.cpp.o" "gcc" "src/core/CMakeFiles/eden_core.dir/class_name.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/eden_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/eden_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/enclave.cpp" "src/core/CMakeFiles/eden_core.dir/enclave.cpp.o" "gcc" "src/core/CMakeFiles/eden_core.dir/enclave.cpp.o.d"
  "/root/repo/src/core/enclave_schema.cpp" "src/core/CMakeFiles/eden_core.dir/enclave_schema.cpp.o" "gcc" "src/core/CMakeFiles/eden_core.dir/enclave_schema.cpp.o.d"
  "/root/repo/src/core/stage.cpp" "src/core/CMakeFiles/eden_core.dir/stage.cpp.o" "gcc" "src/core/CMakeFiles/eden_core.dir/stage.cpp.o.d"
  "/root/repo/src/core/wire.cpp" "src/core/CMakeFiles/eden_core.dir/wire.cpp.o" "gcc" "src/core/CMakeFiles/eden_core.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/eden_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/eden_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eden_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
