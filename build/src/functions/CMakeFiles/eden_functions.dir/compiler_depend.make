# Empty compiler generated dependencies file for eden_functions.
# This may be replaced when dependencies are built.
