file(REMOVE_RECURSE
  "libeden_functions.a"
)
