file(REMOVE_RECURSE
  "CMakeFiles/eden_functions.dir/firewall.cpp.o"
  "CMakeFiles/eden_functions.dir/firewall.cpp.o.d"
  "CMakeFiles/eden_functions.dir/function.cpp.o"
  "CMakeFiles/eden_functions.dir/function.cpp.o.d"
  "CMakeFiles/eden_functions.dir/misc.cpp.o"
  "CMakeFiles/eden_functions.dir/misc.cpp.o.d"
  "CMakeFiles/eden_functions.dir/pulsar.cpp.o"
  "CMakeFiles/eden_functions.dir/pulsar.cpp.o.d"
  "CMakeFiles/eden_functions.dir/registry.cpp.o"
  "CMakeFiles/eden_functions.dir/registry.cpp.o.d"
  "CMakeFiles/eden_functions.dir/scheduling.cpp.o"
  "CMakeFiles/eden_functions.dir/scheduling.cpp.o.d"
  "CMakeFiles/eden_functions.dir/wcmp.cpp.o"
  "CMakeFiles/eden_functions.dir/wcmp.cpp.o.d"
  "libeden_functions.a"
  "libeden_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
