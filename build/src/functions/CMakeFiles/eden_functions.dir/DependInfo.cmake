
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/functions/firewall.cpp" "src/functions/CMakeFiles/eden_functions.dir/firewall.cpp.o" "gcc" "src/functions/CMakeFiles/eden_functions.dir/firewall.cpp.o.d"
  "/root/repo/src/functions/function.cpp" "src/functions/CMakeFiles/eden_functions.dir/function.cpp.o" "gcc" "src/functions/CMakeFiles/eden_functions.dir/function.cpp.o.d"
  "/root/repo/src/functions/misc.cpp" "src/functions/CMakeFiles/eden_functions.dir/misc.cpp.o" "gcc" "src/functions/CMakeFiles/eden_functions.dir/misc.cpp.o.d"
  "/root/repo/src/functions/pulsar.cpp" "src/functions/CMakeFiles/eden_functions.dir/pulsar.cpp.o" "gcc" "src/functions/CMakeFiles/eden_functions.dir/pulsar.cpp.o.d"
  "/root/repo/src/functions/registry.cpp" "src/functions/CMakeFiles/eden_functions.dir/registry.cpp.o" "gcc" "src/functions/CMakeFiles/eden_functions.dir/registry.cpp.o.d"
  "/root/repo/src/functions/scheduling.cpp" "src/functions/CMakeFiles/eden_functions.dir/scheduling.cpp.o" "gcc" "src/functions/CMakeFiles/eden_functions.dir/scheduling.cpp.o.d"
  "/root/repo/src/functions/wcmp.cpp" "src/functions/CMakeFiles/eden_functions.dir/wcmp.cpp.o" "gcc" "src/functions/CMakeFiles/eden_functions.dir/wcmp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eden_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/eden_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/eden_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eden_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
