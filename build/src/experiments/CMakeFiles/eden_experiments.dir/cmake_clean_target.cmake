file(REMOVE_RECURSE
  "libeden_experiments.a"
)
