file(REMOVE_RECURSE
  "CMakeFiles/eden_experiments.dir/fig10_wcmp.cpp.o"
  "CMakeFiles/eden_experiments.dir/fig10_wcmp.cpp.o.d"
  "CMakeFiles/eden_experiments.dir/fig11_pulsar.cpp.o"
  "CMakeFiles/eden_experiments.dir/fig11_pulsar.cpp.o.d"
  "CMakeFiles/eden_experiments.dir/fig12_overheads.cpp.o"
  "CMakeFiles/eden_experiments.dir/fig12_overheads.cpp.o.d"
  "CMakeFiles/eden_experiments.dir/fig9_scheduling.cpp.o"
  "CMakeFiles/eden_experiments.dir/fig9_scheduling.cpp.o.d"
  "CMakeFiles/eden_experiments.dir/testbed.cpp.o"
  "CMakeFiles/eden_experiments.dir/testbed.cpp.o.d"
  "libeden_experiments.a"
  "libeden_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
