
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/experiments/fig10_wcmp.cpp" "src/experiments/CMakeFiles/eden_experiments.dir/fig10_wcmp.cpp.o" "gcc" "src/experiments/CMakeFiles/eden_experiments.dir/fig10_wcmp.cpp.o.d"
  "/root/repo/src/experiments/fig11_pulsar.cpp" "src/experiments/CMakeFiles/eden_experiments.dir/fig11_pulsar.cpp.o" "gcc" "src/experiments/CMakeFiles/eden_experiments.dir/fig11_pulsar.cpp.o.d"
  "/root/repo/src/experiments/fig12_overheads.cpp" "src/experiments/CMakeFiles/eden_experiments.dir/fig12_overheads.cpp.o" "gcc" "src/experiments/CMakeFiles/eden_experiments.dir/fig12_overheads.cpp.o.d"
  "/root/repo/src/experiments/fig9_scheduling.cpp" "src/experiments/CMakeFiles/eden_experiments.dir/fig9_scheduling.cpp.o" "gcc" "src/experiments/CMakeFiles/eden_experiments.dir/fig9_scheduling.cpp.o.d"
  "/root/repo/src/experiments/testbed.cpp" "src/experiments/CMakeFiles/eden_experiments.dir/testbed.cpp.o" "gcc" "src/experiments/CMakeFiles/eden_experiments.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hoststack/CMakeFiles/eden_hoststack.dir/DependInfo.cmake"
  "/root/repo/build/src/functions/CMakeFiles/eden_functions.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/eden_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eden_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eden_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/eden_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/eden_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/eden_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eden_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
