# Empty compiler generated dependencies file for eden_experiments.
# This may be replaced when dependencies are built.
