# Empty dependencies file for eden_netsim.
# This may be replaced when dependencies are built.
