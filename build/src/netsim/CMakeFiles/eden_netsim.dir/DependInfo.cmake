
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/event_queue.cpp" "src/netsim/CMakeFiles/eden_netsim.dir/event_queue.cpp.o" "gcc" "src/netsim/CMakeFiles/eden_netsim.dir/event_queue.cpp.o.d"
  "/root/repo/src/netsim/network.cpp" "src/netsim/CMakeFiles/eden_netsim.dir/network.cpp.o" "gcc" "src/netsim/CMakeFiles/eden_netsim.dir/network.cpp.o.d"
  "/root/repo/src/netsim/node.cpp" "src/netsim/CMakeFiles/eden_netsim.dir/node.cpp.o" "gcc" "src/netsim/CMakeFiles/eden_netsim.dir/node.cpp.o.d"
  "/root/repo/src/netsim/queue.cpp" "src/netsim/CMakeFiles/eden_netsim.dir/queue.cpp.o" "gcc" "src/netsim/CMakeFiles/eden_netsim.dir/queue.cpp.o.d"
  "/root/repo/src/netsim/routing.cpp" "src/netsim/CMakeFiles/eden_netsim.dir/routing.cpp.o" "gcc" "src/netsim/CMakeFiles/eden_netsim.dir/routing.cpp.o.d"
  "/root/repo/src/netsim/switch_node.cpp" "src/netsim/CMakeFiles/eden_netsim.dir/switch_node.cpp.o" "gcc" "src/netsim/CMakeFiles/eden_netsim.dir/switch_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eden_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
