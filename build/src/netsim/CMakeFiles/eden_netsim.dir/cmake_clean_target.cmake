file(REMOVE_RECURSE
  "libeden_netsim.a"
)
