file(REMOVE_RECURSE
  "CMakeFiles/eden_netsim.dir/event_queue.cpp.o"
  "CMakeFiles/eden_netsim.dir/event_queue.cpp.o.d"
  "CMakeFiles/eden_netsim.dir/network.cpp.o"
  "CMakeFiles/eden_netsim.dir/network.cpp.o.d"
  "CMakeFiles/eden_netsim.dir/node.cpp.o"
  "CMakeFiles/eden_netsim.dir/node.cpp.o.d"
  "CMakeFiles/eden_netsim.dir/queue.cpp.o"
  "CMakeFiles/eden_netsim.dir/queue.cpp.o.d"
  "CMakeFiles/eden_netsim.dir/routing.cpp.o"
  "CMakeFiles/eden_netsim.dir/routing.cpp.o.d"
  "CMakeFiles/eden_netsim.dir/switch_node.cpp.o"
  "CMakeFiles/eden_netsim.dir/switch_node.cpp.o.d"
  "libeden_netsim.a"
  "libeden_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
