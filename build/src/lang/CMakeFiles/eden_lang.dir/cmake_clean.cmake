file(REMOVE_RECURSE
  "CMakeFiles/eden_lang.dir/ast_eval.cpp.o"
  "CMakeFiles/eden_lang.dir/ast_eval.cpp.o.d"
  "CMakeFiles/eden_lang.dir/bytecode.cpp.o"
  "CMakeFiles/eden_lang.dir/bytecode.cpp.o.d"
  "CMakeFiles/eden_lang.dir/compiler.cpp.o"
  "CMakeFiles/eden_lang.dir/compiler.cpp.o.d"
  "CMakeFiles/eden_lang.dir/disasm.cpp.o"
  "CMakeFiles/eden_lang.dir/disasm.cpp.o.d"
  "CMakeFiles/eden_lang.dir/interpreter.cpp.o"
  "CMakeFiles/eden_lang.dir/interpreter.cpp.o.d"
  "CMakeFiles/eden_lang.dir/lexer.cpp.o"
  "CMakeFiles/eden_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/eden_lang.dir/parser.cpp.o"
  "CMakeFiles/eden_lang.dir/parser.cpp.o.d"
  "CMakeFiles/eden_lang.dir/state_schema.cpp.o"
  "CMakeFiles/eden_lang.dir/state_schema.cpp.o.d"
  "libeden_lang.a"
  "libeden_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
