
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/ast_eval.cpp" "src/lang/CMakeFiles/eden_lang.dir/ast_eval.cpp.o" "gcc" "src/lang/CMakeFiles/eden_lang.dir/ast_eval.cpp.o.d"
  "/root/repo/src/lang/bytecode.cpp" "src/lang/CMakeFiles/eden_lang.dir/bytecode.cpp.o" "gcc" "src/lang/CMakeFiles/eden_lang.dir/bytecode.cpp.o.d"
  "/root/repo/src/lang/compiler.cpp" "src/lang/CMakeFiles/eden_lang.dir/compiler.cpp.o" "gcc" "src/lang/CMakeFiles/eden_lang.dir/compiler.cpp.o.d"
  "/root/repo/src/lang/disasm.cpp" "src/lang/CMakeFiles/eden_lang.dir/disasm.cpp.o" "gcc" "src/lang/CMakeFiles/eden_lang.dir/disasm.cpp.o.d"
  "/root/repo/src/lang/interpreter.cpp" "src/lang/CMakeFiles/eden_lang.dir/interpreter.cpp.o" "gcc" "src/lang/CMakeFiles/eden_lang.dir/interpreter.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/lang/CMakeFiles/eden_lang.dir/lexer.cpp.o" "gcc" "src/lang/CMakeFiles/eden_lang.dir/lexer.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/lang/CMakeFiles/eden_lang.dir/parser.cpp.o" "gcc" "src/lang/CMakeFiles/eden_lang.dir/parser.cpp.o.d"
  "/root/repo/src/lang/state_schema.cpp" "src/lang/CMakeFiles/eden_lang.dir/state_schema.cpp.o" "gcc" "src/lang/CMakeFiles/eden_lang.dir/state_schema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eden_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
