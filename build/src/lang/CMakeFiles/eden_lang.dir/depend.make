# Empty dependencies file for eden_lang.
# This may be replaced when dependencies are built.
