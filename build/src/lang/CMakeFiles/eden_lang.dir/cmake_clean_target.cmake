file(REMOVE_RECURSE
  "libeden_lang.a"
)
