# Empty dependencies file for eden_hoststack.
# This may be replaced when dependencies are built.
