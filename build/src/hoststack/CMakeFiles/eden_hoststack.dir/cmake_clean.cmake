file(REMOVE_RECURSE
  "CMakeFiles/eden_hoststack.dir/host_stack.cpp.o"
  "CMakeFiles/eden_hoststack.dir/host_stack.cpp.o.d"
  "CMakeFiles/eden_hoststack.dir/nic.cpp.o"
  "CMakeFiles/eden_hoststack.dir/nic.cpp.o.d"
  "CMakeFiles/eden_hoststack.dir/token_bucket.cpp.o"
  "CMakeFiles/eden_hoststack.dir/token_bucket.cpp.o.d"
  "libeden_hoststack.a"
  "libeden_hoststack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_hoststack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
