file(REMOVE_RECURSE
  "libeden_hoststack.a"
)
