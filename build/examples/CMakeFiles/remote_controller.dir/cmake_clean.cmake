file(REMOVE_RECURSE
  "CMakeFiles/remote_controller.dir/remote_controller.cpp.o"
  "CMakeFiles/remote_controller.dir/remote_controller.cpp.o.d"
  "remote_controller"
  "remote_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
