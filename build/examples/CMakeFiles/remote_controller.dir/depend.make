# Empty dependencies file for remote_controller.
# This may be replaced when dependencies are built.
