# Empty dependencies file for qos_pulsar.
# This may be replaced when dependencies are built.
