file(REMOVE_RECURSE
  "CMakeFiles/qos_pulsar.dir/qos_pulsar.cpp.o"
  "CMakeFiles/qos_pulsar.dir/qos_pulsar.cpp.o.d"
  "qos_pulsar"
  "qos_pulsar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_pulsar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
