# Empty dependencies file for port_knocking.
# This may be replaced when dependencies are built.
