file(REMOVE_RECURSE
  "CMakeFiles/port_knocking.dir/port_knocking.cpp.o"
  "CMakeFiles/port_knocking.dir/port_knocking.cpp.o.d"
  "port_knocking"
  "port_knocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_knocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
