# Empty compiler generated dependencies file for memcached_lb.
# This may be replaced when dependencies are built.
