file(REMOVE_RECURSE
  "CMakeFiles/memcached_lb.dir/memcached_lb.cpp.o"
  "CMakeFiles/memcached_lb.dir/memcached_lb.cpp.o.d"
  "memcached_lb"
  "memcached_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcached_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
