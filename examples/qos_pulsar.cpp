// Datacenter QoS demo (case study 3, scaled down): two tenants hammer a
// storage server behind a 1 Gbps link. Without control the READ tenant
// floods the shared request queue; with Pulsar's action function READ
// requests are charged their operation size at the client enclave and
// both tenants get their guarantee.
//
// Build & run:  ./build/examples/qos_pulsar
#include <cstdio>

#include "experiments/fig11_pulsar.h"

int main() {
  using namespace eden;
  using namespace eden::experiments;

  std::printf("Two tenants, 64KB IOs, storage server on a 1 Gbps link.\n\n");
  for (const PulsarMode mode :
       {PulsarMode::isolated, PulsarMode::simultaneous,
        PulsarMode::rate_controlled}) {
    Fig11Config cfg;
    cfg.mode = mode;
    cfg.duration = 500 * netsim::kMillisecond;
    const Fig11Result r = run_fig11(cfg);
    std::printf("%-16s  READ tenant %6.1f MB/s   WRITE tenant %6.1f MB/s\n",
                to_string(mode).c_str(), r.read_mbps, r.write_mbps);
  }

  std::printf(
      "\nThe Pulsar action function (installed only for rate-controlled):\n"
      "  - steers each tenant's traffic to its rate-limited NIC queue\n"
      "  - charges READ requests their operation size (64KB), not their\n"
      "    wire size (200B) — that is the application semantics the\n"
      "    enclave gets from the storage stage's classification.\n");
  return 0;
}
