// Flow scheduling demo (case study 1, scaled down): watch PIAS demote a
// growing flow through the priority bands, then compare completion
// times of a small flow with and without scheduling while an elephant
// flow congests the link.
//
// Build & run:  ./build/examples/flow_scheduling
#include <cstdio>

#include "experiments/fig9_scheduling.h"
#include "experiments/testbed.h"
#include "functions/scheduling.h"

using namespace eden;
constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;

// Part 1: demotion trace — feed one message through the PIAS action and
// print the priority the enclave assigns as the message grows.
static void demotion_trace() {
  core::ClassRegistry registry;
  core::Enclave enclave("demo", registry);
  const functions::PiasFunction pias;
  const core::ActionId action = pias.install(enclave, false);
  const std::int64_t limits[] = {10 * 1024, 1024 * 1024};
  const std::int64_t prios[] = {7, 5};
  functions::push_priority_thresholds(enclave, action, limits, prios);
  const core::TableId table = enclave.create_table("t");
  enclave.add_rule(table, core::ClassPattern("*"), action);

  std::printf("PIAS demotion for one growing message "
              "(thresholds: 10KB, 1MB):\n");
  netsim::Packet packet;
  packet.size_bytes = 64 * 1024;  // 64KB chunks
  packet.meta.msg_id = 1;
  std::uint8_t last = 255;
  for (int chunk = 1; chunk <= 20; ++chunk) {
    enclave.process(packet);
    if (packet.priority != last) {
      std::printf("  after %4d KB -> priority %d\n", chunk * 64,
                  packet.priority);
      last = packet.priority;
    }
  }
  std::printf("\n");
}

// Part 2: a small flow racing an elephant, baseline vs PIAS.
static void race(experiments::SchedulingScheme scheme) {
  experiments::Fig9Config cfg;
  cfg.scheme = scheme;
  cfg.variant = scheme == experiments::SchedulingScheme::baseline
                    ? experiments::SchedulingVariant::native
                    : experiments::SchedulingVariant::eden;
  cfg.duration = 300 * netsim::kMillisecond;
  cfg.warmup = 100 * netsim::kMillisecond;
  const experiments::Fig9Result r = run_fig9(cfg);
  std::printf("  %-8s: small flows avg %7.1f us (p95 %8.1f us), "
              "intermediate avg %8.1f us\n",
              to_string(scheme).c_str(), r.small_fct_us.mean(),
              r.small_fct_us.p95(), r.intermediate_fct_us.mean());
}

int main() {
  demotion_trace();
  std::printf("Small flows racing background elephants (10G link, ~70%% "
              "load):\n");
  race(experiments::SchedulingScheme::baseline);
  race(experiments::SchedulingScheme::pias);
  race(experiments::SchedulingScheme::sff);
  std::printf("\nPIAS needs no application changes (the enclave classifies "
              "flows);\nSFF uses the flow size the application provided via "
              "its stage.\n");
  return 0;
}
