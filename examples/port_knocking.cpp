// Stateful firewall demo: port knocking (Table 1).
//
// The protected service on port 2222 drops everything until the source
// has "knocked" ports 1001, 1002, 1003 in order. Knock progress lives
// in enclave message state keyed per source. A knocker gets through; a
// stranger (and a wrong-order knocker in strict mode) does not.
//
// Build & run:  ./build/examples/port_knocking
#include <cstdio>

#include "core/enclave.h"
#include "functions/firewall.h"

using namespace eden;

namespace {

// Sends one raw packet from `src` to `port` through the enclave and
// reports whether the firewall let it pass.
bool probe(core::Enclave& enclave, std::uint32_t src, std::uint16_t port) {
  netsim::Packet packet;
  packet.src = src;
  packet.dst = 99;
  packet.dst_port = port;
  packet.size_bytes = 100;
  packet.meta.msg_id = src;  // knock state is tracked per source
  return enclave.process(packet);
}

}  // namespace

int main() {
  core::ClassRegistry registry;
  core::Enclave enclave("firewall", registry);

  const functions::PortKnockFunction knock;
  const core::ActionId action = knock.install(enclave, false);
  const std::int64_t sequence[] = {1001, 1002, 1003};
  functions::push_knock_config(enclave, action, sequence, /*open_port=*/2222,
                               /*strict=*/false);
  const core::TableId table = enclave.create_table("fw");
  enclave.add_rule(table, core::ClassPattern("*"), action);

  std::printf("knock sequence: 1001 -> 1002 -> 1003, protected port 2222\n\n");

  const std::uint32_t knocker = 1, stranger = 2;

  std::printf("stranger tries port 2222 directly:     %s\n",
              probe(enclave, stranger, 2222) ? "PASSED (bug!)" : "dropped");

  std::printf("knocker sends the sequence:            ");
  for (const std::int64_t port : sequence) {
    probe(enclave, knocker, static_cast<std::uint16_t>(port));
    std::printf("%lld ", static_cast<long long>(port));
  }
  std::printf("\n");
  std::printf("knocker tries port 2222:               %s\n",
              probe(enclave, knocker, 2222) ? "passed" : "DROPPED (bug!)");
  std::printf("stranger tries port 2222 again:        %s\n",
              probe(enclave, stranger, 2222) ? "PASSED (bug!)" : "dropped");

  // Partial knocks do not open the port.
  const std::uint32_t half_knocker = 3;
  probe(enclave, half_knocker, 1001);
  probe(enclave, half_knocker, 1002);
  std::printf("half-knocker (2 of 3) tries port 2222: %s\n",
              probe(enclave, half_knocker, 2222) ? "PASSED (bug!)"
                                                 : "dropped");

  std::printf(
      "\nthe whole policy is ~15 lines of EAL running in the enclave;\n"
      "per-source progress lives in message state (msg.state0).\n");
  return 0;
}
