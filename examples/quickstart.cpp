// Quickstart: the smallest complete Eden deployment.
//
//  1. Build a two-host network.
//  2. Write an action function in EAL (priority by message size).
//  3. Compile it at the controller and ship the bytecode to the sender's
//     enclave.
//  4. Send classified messages and watch the enclave set priorities.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "experiments/testbed.h"
#include "lang/disasm.h"

int main() {
  using namespace eden;
  constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;

  // --- 1. Network: two hosts, one switch --------------------------------
  experiments::Testbed bed;
  auto& alice = bed.add_host("alice");
  auto& bob = bed.add_host("bob");
  auto& tor = bed.add_switch("tor");
  bed.connect(alice, tor, 10 * kGbps, 2 * netsim::kMicrosecond);
  bed.connect(bob, tor, 10 * kGbps, 2 * netsim::kMicrosecond);
  bed.routing().install_dest_routes();
  bed.finalize();

  // --- 2. An action function in EAL -------------------------------------
  // Small messages ride the express lane (priority 7).
  const char* kSource = R"(
    fun(packet : Packet, msg : Message, global : Global) ->
      packet.priority <- (if packet.msg_size <= global.cutoff then 7 else 1)
  )";
  lang::FieldDef cutoff;
  cutoff.name = "cutoff";
  cutoff.access = lang::Access::read_only;

  // --- 3. Controller: compile + install + configure ---------------------
  core::Controller& controller = bed.controller();
  const lang::CompiledProgram program =
      controller.compile("express_lane", kSource, {{cutoff}});
  std::printf("Compiled action function (%zu instructions, %s):\n%s\n",
              program.code.size(),
              std::string(lang::concurrency_mode_name(program.concurrency))
                  .c_str(),
              lang::disassemble(program).c_str());

  experiments::TestHost& sender = *bed.host_by_name("alice");
  const core::ActionId action =
      sender.enclave->install_action("express_lane", program, {{cutoff}});
  sender.enclave->set_global_scalar(action, "cutoff", 10 * 1024);
  const core::TableId table = sender.enclave->create_table("main");
  sender.enclave->add_rule(table, core::ClassPattern("*"), action);

  // --- 4. Send messages --------------------------------------------------
  experiments::TestHost& receiver = *bed.host_by_name("bob");
  receiver.stack->listen(
      9090, [](transport::TcpReceiver& r, const hoststack::FlowInfo& info) {
        r.expect(static_cast<std::uint64_t>(info.meta.msg_size));
      });

  for (int i = 0; i < 2; ++i) {
    const std::uint64_t bytes = i == 0 ? 4 * 1024 : 256 * 1024;
    netsim::PacketMeta meta;
    meta.msg_id = i + 1;
    meta.msg_size = static_cast<std::int64_t>(bytes);
    auto& flow = sender.stack->open_flow(bob.id(), 9090, meta);
    flow.start(bytes);
    bed.run_for(50 * netsim::kMillisecond);
    std::printf("message %d (%llu KB) sent, enclave executions so far: %llu\n",
                i + 1, static_cast<unsigned long long>(bytes / 1024),
                static_cast<unsigned long long>(
                    sender.enclave->action_stats(action).executions));
  }

  std::printf(
      "\nenclave processed %llu packets, %llu matched the table, "
      "0 errors: %s\n",
      static_cast<unsigned long long>(sender.enclave->stats().packets),
      static_cast<unsigned long long>(sender.enclave->stats().matched),
      sender.enclave->action_stats(action).errors == 0 ? "ok" : "FAILED");
  std::printf("receiver got %llu bytes\n",
              static_cast<unsigned long long>(receiver.node->rx_bytes()));
  return 0;
}
