// Application-aware load balancing for a memcached-style service — the
// running example of the paper's introduction.
//
// A client talks to three replicas. The memcached *stage* classifies
// each request as GET or PUT and exposes the key; the enclave's
// replica_select action routes GETs by key hash to the replica owning
// the key (mcrouter-style), while PUTs fan out to the primary. No
// application change beyond the stage's classification calls.
//
// Build & run:  ./build/examples/memcached_lb
#include <cstdio>
#include <map>

#include "apps/memcached_stage.h"
#include "experiments/testbed.h"
#include "functions/misc.h"

int main() {
  using namespace eden;
  constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;
  constexpr std::uint16_t kPort = 11211;

  // Client + 3 replicas behind one switch.
  experiments::Testbed bed;
  auto& client = bed.add_host("client");
  netsim::HostNode* replicas[3];
  for (int i = 0; i < 3; ++i) {
    replicas[i] = &bed.add_host("replica" + std::to_string(i));
  }
  auto& tor = bed.add_switch("tor");
  bed.connect(client, tor, 10 * kGbps, 2 * netsim::kMicrosecond);
  for (auto* r : replicas) {
    bed.connect(*r, tor, 10 * kGbps, 2 * netsim::kMicrosecond);
  }
  bed.routing().install_all_paths();
  bed.routing().install_dest_routes();
  bed.finalize();

  experiments::TestHost& client_host = *bed.host_by_name("client");

  // The memcached stage: controller programs GET/PUT classification
  // (Figure 6's rule-set r1).
  apps::MemcachedStage stage(bed.registry());
  bed.controller().register_stage(stage);
  stage.create_rule("r1",
                    {core::FieldPattern::exact("GET"),
                     core::FieldPattern::any()},
                    "GET", core::kMetaAll);
  stage.create_rule("r1",
                    {core::FieldPattern::exact("PUT"),
                     core::FieldPattern::any()},
                    "PUT", core::kMetaAll);
  const core::StageInfo info = stage.get_stage_info();
  std::printf("stage '%s' classifies on:", info.name.c_str());
  for (const auto& f : info.classifier_fields) std::printf(" %s", f.c_str());
  std::printf("\n\n");

  // replica_select routes GETs by key hash; a label per replica.
  const functions::ReplicaSelectFunction replica_select;
  const core::ActionId action =
      replica_select.install(*client_host.enclave, false);
  std::vector<std::int64_t> labels;
  for (auto* r : replicas) {
    const auto& paths =
        bed.routing().paths(client.id(), r->id());
    labels.push_back(paths.front().label);
  }
  client_host.enclave->set_global_array(action, "replica_labels", labels);
  const core::TableId table = client_host.enclave->create_table("lb");
  // Only GETs are key-routed (PUTs would go to the primary).
  client_host.enclave->add_rule(table,
                                core::ClassPattern("memcached.r1.GET"),
                                action);

  // Replicas accept request flows.
  std::map<std::string, std::uint64_t> hits;  // replica -> requests
  for (auto* r : replicas) {
    experiments::TestHost& host = *bed.host_by_name(r->name());
    host.stack->listen(kPort, [&hits, name = r->name()](
                                  transport::TcpReceiver& receiver,
                                  const hoststack::FlowInfo& fi) {
      receiver.expect(static_cast<std::uint64_t>(fi.meta.msg_size));
      ++hits[name];
    });
  }

  // NOTE: labels route to a *host*, so the packet's dst is rewritten by
  // the path; for this demo every replica listens on the same port and
  // the label decides where a GET lands. The client addresses replica0
  // (the "virtual IP") and the enclave spreads by key.
  const char* keys[] = {"user:17",  "cart:3",   "user:99", "item:4711",
                        "session:8", "user:17", "cart:3",  "news:1",
                        "item:42",   "user:23"};
  for (const char* key : keys) {
    const core::MessageAttrs attrs = apps::MemcachedStage::get_attrs(key);
    const netsim::PacketMeta base =
        apps::MemcachedStage::request_meta(true, key, 2048);
    client_host.stack->send_message(stage, attrs, base, replicas[0]->id(),
                                    kPort, 2048);
  }
  bed.run_for(200 * netsim::kMillisecond);

  std::printf("GET routing by key hash (10 requests):\n");
  for (const auto& [name, count] : hits) {
    std::printf("  %-9s %llu request(s)\n", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\nsame key always lands on the same replica; different keys"
              "\nspread across the pool — application-level load balancing\n"
              "with an unmodified transport underneath.\n");
  return 0;
}
