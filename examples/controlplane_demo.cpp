// The resilient control-plane session surviving a hostile link.
//
// A controller-side EnclaveSession programs an enclave through the
// framed wire protocol while every connection runs through a
// FaultyTransport that drops, delays, duplicates and truncates sends
// and occasionally hard-closes the link. The session's job is to make
// that not matter: heartbeats + timeouts detect the damage, reconnect
// with backoff, and a desired-state journal replays as one transaction
// so the enclave always converges to the controller's view.
//
// The demo's invariant makes atomicity visible on the data path: each
// epoch installs, in ONE transaction, an action writing p.path <- N and
// an action writing p.queue <- N. A packet processed at any moment must
// therefore see path == queue — a torn rule set (one rule repointed,
// the other not) would split the two fields. Halfway through, the
// "remote host" restarts from scratch (fresh agent, blank enclave) and
// the journal rebuilds it.
//
// Build & run:  ./build/examples/controlplane_demo
#include <cstdio>
#include <memory>
#include <string>

#include "controlplane/fault.h"
#include "controlplane/session.h"
#include "core/controller.h"

int main() {
  using namespace eden;
  namespace cp = controlplane;

  core::ClassRegistry registry;
  core::Controller controller(registry);
  core::Enclave enclave("demo-host.enclave", registry);
  auto agent = std::make_unique<cp::EnclaveAgent>(enclave);

  cp::PipePump pump;
  std::uint64_t now_ns = 0;
  bool chaos = true;
  std::uint64_t dials = 0;

  cp::SessionConfig config;
  config.heartbeat_interval_ns = 5'000'000;  // 5 ms
  config.liveness_timeout_ns = 20'000'000;
  config.request_timeout_ns = 15'000'000;
  config.backoff_initial_ns = 1'000'000;
  config.backoff_max_ns = 20'000'000;
  config.seed = 7;

  cp::EnclaveSession session(
      "demo-host",
      [&]() -> std::unique_ptr<cp::Transport> {
        auto [near, far] = cp::make_pipe(pump, /*chunk_bytes=*/3);
        agent->attach(std::move(far));
        ++dials;
        if (!chaos) return std::move(near);
        cp::FaultProfile profile;
        profile.drop_prob = 0.05;
        profile.delay_prob = 0.10;
        profile.duplicate_prob = 0.05;
        profile.truncate_prob = 0.03;
        profile.disconnect_prob = 0.01;
        profile.seed = 1000 + dials;  // a different storm every dial
        return std::make_unique<cp::FaultyTransport>(std::move(near), pump,
                                                     profile);
      },
      [&]() { return now_ns; }, config);

  const core::ClassId cls = registry.intern("app.demo.flow");
  auto step_ms = [&](int ms) {
    for (int i = 0; i < ms; ++i) {
      now_ns += 1'000'000;
      session.tick();
      pump.run();
    }
  };
  auto probe = [&]() {
    netsim::Packet p;
    p.size_bytes = 1000;
    p.classes.add(cls);
    enclave.process(p);
    return p;
  };

  // Mutations issued before the first connect are journaled: the first
  // resync replays them, so "program first, dial later" just works.
  session.create_table("paths");
  session.create_table("queues");

  auto epoch_program = [&](const std::string& name, const char* field,
                           int value) {
    return controller.compile(name, std::string("fun(p, m, g) -> p.") + field +
                                        " <- " + std::to_string(value),
                              {});
  };

  std::printf("driving 30 epochs over a link that drops/dups/truncates...\n");
  int violations = 0, probes = 0;
  cp::EnclaveSession::RuleHandle path_rule = 0, queue_rule = 0;
  for (int epoch = 1; epoch <= 30; ++epoch) {
    const std::string pa = "path_" + std::to_string(epoch % 2);
    const std::string qa = "queue_" + std::to_string(epoch % 2);
    session.begin_txn();
    session.install_action(pa, epoch_program(pa, "path", epoch), {});
    session.install_action(qa, epoch_program(qa, "queue", epoch), {});
    if (path_rule != 0) session.remove_rule("paths", path_rule);
    if (queue_rule != 0) session.remove_rule("queues", queue_rule);
    path_rule = session.add_rule("paths", "app.demo.flow", pa);
    queue_rule = session.add_rule("queues", "app.demo.flow", qa);
    session.commit_txn();

    if (epoch == 15) {
      // Hard host restart: new agent (fresh boot id), blank enclave.
      // The session notices the boot id change and resyncs the journal.
      agent->detach();
      enclave.clear_all();
      agent = std::make_unique<cp::EnclaveAgent>(enclave);
      std::printf("  epoch 15: remote host wiped and restarted\n");
    }

    for (int ms = 0; ms < 8; ++ms) {
      step_ms(1);
      const netsim::Packet p = probe();
      ++probes;
      if (p.path_label != p.rl_queue) ++violations;  // a torn rule set
    }
  }

  // Calm the link and let the last resync land.
  chaos = false;
  agent->detach();
  for (int i = 0; i < 20000; ++i) {
    step_ms(1);
    if (session.ready() && session.inflight() == 0 && pump.pending() == 0) {
      break;
    }
  }
  const netsim::Packet final_probe = probe();

  const cp::SessionStats& s = session.stats();
  std::printf("\n%d probes, %d saw a torn rule set (path != queue)\n", probes,
              violations);
  std::printf("final probe: path=%d queue=%d (want 30/30)\n",
              final_probe.path_label, final_probe.rl_queue);
  std::printf("\nwhat the session survived:\n");
  std::printf("  dials %llu, connects %llu, teardowns %llu, resyncs %llu "
              "(last replayed %llu commands)\n",
              static_cast<unsigned long long>(dials),
              static_cast<unsigned long long>(s.connects),
              static_cast<unsigned long long>(s.teardowns),
              static_cast<unsigned long long>(s.resyncs),
              static_cast<unsigned long long>(s.last_resync_commands));
  std::printf("  requests %llu sent / %llu ok, %llu timeouts, "
              "%llu corrupt streams, %llu liveness timeouts\n",
              static_cast<unsigned long long>(s.requests_sent),
              static_cast<unsigned long long>(s.responses_ok),
              static_cast<unsigned long long>(s.request_timeouts),
              static_cast<unsigned long long>(s.corrupt_streams),
              static_cast<unsigned long long>(s.liveness_timeouts));
  std::printf("  txns %llu committed / %llu aborted, agent restarts seen %llu\n",
              static_cast<unsigned long long>(s.txns_committed),
              static_cast<unsigned long long>(s.txns_aborted),
              static_cast<unsigned long long>(s.agent_restarts_seen));
  const telemetry::HistogramSnapshot rtt = session.rtt();
  std::printf("  request rtt p50 %.0f ns, p99 %.0f ns (%llu samples)\n",
              rtt.p50(), rtt.quantile(0.99),
              static_cast<unsigned long long>(rtt.count));
  return violations == 0 && final_probe.path_label == 30 ? 0 : 1;
}
