// The controller programming a remote enclave over the wire protocol.
//
// In production the controller and enclaves live on different machines;
// this example separates them by the actual wire encoding: every API
// call is serialized into a command frame, "sent" across a channel, and
// applied by the enclave-side agent — including shipping the compiled
// action-function bytecode.
//
// Build & run:  ./build/examples/remote_controller
#include <cstdio>

#include "core/controller.h"
#include "core/wire.h"
#include "functions/scheduling.h"

int main() {
  using namespace eden;
  using core::wire::RemoteEnclave;
  using core::wire::Status;

  // The "remote host": an enclave plus the agent loop. The transport
  // counts frames so we can show what actually crossed the wire.
  core::ClassRegistry registry;
  core::Enclave enclave("remote-host.enclave", registry);
  std::size_t frames = 0, bytes = 0;
  RemoteEnclave remote([&](std::vector<std::uint8_t> frame) {
    ++frames;
    bytes += frame.size();
    return encode_response(core::wire::apply(enclave, frame));
  });

  // The "controller side": compile PIAS locally, then program the
  // remote enclave entirely through command frames.
  core::Controller controller(registry);
  const functions::PiasFunction pias;
  const lang::CompiledProgram program = pias.compile();
  std::printf("compiled '%s': %zu instructions, %zu bytes of bytecode\n",
              pias.name(), program.code.size(), program.serialize().size());

  const auto fields = pias.global_fields();
  core::wire::Response r = remote.install_action("pias", program, fields);
  std::printf("install_action     -> %s (action id %llu)\n",
              r.status == Status::ok ? "ok" : r.error.c_str(),
              static_cast<unsigned long long>(r.value));

  r = remote.create_table("sched");
  const auto table = static_cast<core::TableId>(r.value);
  std::printf("create_table       -> ok (table id %u)\n", table);

  r = remote.add_rule(table, "*", "pias");
  std::printf("add_rule '*'       -> %s\n",
              r.status == Status::ok ? "ok" : r.error.c_str());

  const std::int64_t thresholds[] = {10 * 1024, 7, 1024 * 1024, 5};
  r = remote.set_global_array("pias", "priorities", thresholds);
  std::printf("set_global_array   -> %s\n",
              r.status == Status::ok ? "ok" : r.error.c_str());

  // Data path on the remote host: a message growing through the bands.
  std::printf("\nremote enclave now enforcing PIAS (4KB chunks):\n");
  netsim::Packet packet;
  packet.size_bytes = 4 * 1024;
  packet.meta.msg_id = 1;
  int last_priority = -1;
  for (int chunk = 1; chunk <= 300; ++chunk) {
    enclave.process(packet);
    if (packet.priority != last_priority) {
      std::printf("  after %4d KB -> priority %d\n", chunk * 4,
                  packet.priority);
      last_priority = packet.priority;
    }
  }

  // Errors travel back too.
  r = remote.set_global_scalar("pias", "bogus_field", 1);
  std::printf("\nbad request over the wire -> status %d (\"%s\")\n",
              static_cast<int>(r.status), r.error.c_str());

  std::printf("\ntotal controller traffic: %zu frames, %zu bytes\n", frames,
              bytes);
  return 0;
}
