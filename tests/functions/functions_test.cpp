// The network-function library: behaviour of each function and the
// central property that the interpreted bytecode and the native twin
// are observationally equivalent on the same state.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string_view>

#include "core/enclave.h"
#include "functions/firewall.h"
#include "functions/misc.h"
#include "functions/pulsar.h"
#include "functions/registry.h"
#include "functions/scheduling.h"
#include "functions/wcmp.h"
#include "util/rng.h"

namespace eden::functions {
namespace {

using core::MessageSlot;
using core::PacketSlot;

// Harness executing one function both ways against identical state.
class TwinHarness {
 public:
  explicit TwinHarness(const NetworkFunction& fn)
      : schema_(core::make_enclave_schema(fn.global_fields())),
        program_(fn.compile()),
        native_(fn.native()),
        interp_(lang::ExecLimits{}, /*rng_seed=*/99),
        native_rng_(99) {
    reset();
  }

  void reset() {
    eden_pkt_ = lang::StateBlock::from_schema(schema_, lang::Scope::packet);
    eden_msg_ = lang::StateBlock::from_schema(schema_, lang::Scope::message);
    eden_glb_ = lang::StateBlock::from_schema(schema_, lang::Scope::global);
    native_pkt_ = eden_pkt_;
    native_msg_ = eden_msg_;
    native_glb_ = eden_glb_;
  }

  // Sets the same value in both variants' state.
  void set_packet(std::uint16_t slot, std::int64_t v) {
    eden_pkt_.scalars[slot] = native_pkt_.scalars[slot] = v;
  }
  void set_message(std::uint16_t slot, std::int64_t v) {
    eden_msg_.scalars[slot] = native_msg_.scalars[slot] = v;
  }
  void set_global_scalar(std::uint16_t slot, std::int64_t v) {
    eden_glb_.scalars[slot] = native_glb_.scalars[slot] = v;
  }
  void set_global_array(std::uint16_t slot, std::uint16_t stride,
                        std::vector<std::int64_t> data) {
    eden_glb_.arrays[slot].stride = stride;
    eden_glb_.arrays[slot].data = data;
    native_glb_.arrays[slot].stride = stride;
    native_glb_.arrays[slot].data = std::move(data);
  }

  // Runs both variants; EXPECTs identical status and — on success —
  // identical packet/message state afterwards. On error the enclave
  // discards all writes, so only the status must agree (a bytecode trap
  // may have applied a prefix of the writes to the scratch blocks).
  // Randomized functions (wcmp) must be compared distributionally
  // instead — use run_eden/run_native directly there.
  void run_both_and_compare() {
    const lang::ExecResult r =
        interp_.execute(program_, &eden_pkt_, &eden_msg_, &eden_glb_);
    core::NativeCtx ctx{native_rng_, 0};
    const lang::ExecStatus ns =
        native_(native_pkt_, &native_msg_, &native_glb_, ctx);
    ASSERT_EQ(r.status, ns);
    if (r.status != lang::ExecStatus::ok) return;
    EXPECT_EQ(eden_pkt_.scalars, native_pkt_.scalars);
    EXPECT_EQ(eden_msg_.scalars, native_msg_.scalars);
  }

  lang::ExecStatus run_eden() {
    return interp_.execute(program_, &eden_pkt_, &eden_msg_, &eden_glb_)
        .status;
  }
  lang::ExecStatus run_native() {
    core::NativeCtx ctx{native_rng_, 0};
    return native_(native_pkt_, &native_msg_, &native_glb_, ctx);
  }

  lang::StateSchema schema_;
  lang::CompiledProgram program_;
  core::NativeActionFn native_;
  lang::Interpreter interp_;
  util::Rng native_rng_;
  lang::StateBlock eden_pkt_, eden_msg_, eden_glb_;
  lang::StateBlock native_pkt_, native_msg_, native_glb_;
};

// ---- PIAS ----------------------------------------------------------------

TEST(Pias, DemotesThroughBands) {
  PiasFunction pias;
  TwinHarness h(pias);
  h.set_global_array(0, 2, {10240, 7, 1048576, 5});
  h.set_message(MessageSlot::priority, 1);
  h.set_packet(PacketSlot::size, 1460);

  // Band 1: under 10KB.
  h.set_message(MessageSlot::size, 0);
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::priority], 7);
  // Band 2.
  h.set_message(MessageSlot::size, 500000);
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::priority], 5);
  // Band 3: background.
  h.set_message(MessageSlot::size, 5000000);
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::priority], 0);
}

TEST(Pias, EmptyThresholdTableMeansBackground) {
  PiasFunction pias;
  TwinHarness h(pias);
  h.set_message(MessageSlot::priority, 1);
  h.set_packet(PacketSlot::size, 100);
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::priority], 0);
}

// Property sweep: interpreted PIAS == native PIAS across message sizes.
class PiasEquivalence : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(PiasEquivalence, TwinsAgree) {
  PiasFunction pias;
  TwinHarness h(pias);
  h.set_global_array(0, 2, {10240, 7, 1048576, 5});
  h.set_message(MessageSlot::priority, 1);
  h.set_message(MessageSlot::size, GetParam());
  h.set_packet(PacketSlot::size, 1460);
  h.run_both_and_compare();
}

INSTANTIATE_TEST_SUITE_P(Sizes, PiasEquivalence,
                         ::testing::Values(0, 1, 8780, 8781, 10239, 10240,
                                           10241, 524288, 1048575, 1048576,
                                           1048577, 1 << 30));

// ---- SFF ------------------------------------------------------------------

TEST(Sff, PriorityFixedByFlowSize) {
  SffFunction sff;
  TwinHarness h(sff);
  h.set_global_array(0, 2, {10240, 7, 1048576, 5});
  h.set_packet(PacketSlot::app_priority, 1);

  h.set_packet(PacketSlot::flow_size, 500);
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::priority], 7);

  h.set_packet(PacketSlot::flow_size, 50000);
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::priority], 5);

  h.set_packet(PacketSlot::flow_size, 50000000);
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::priority], 0);
}

TEST(Sff, RespectsAppPinnedPriority) {
  SffFunction sff;
  TwinHarness h(sff);
  h.set_global_array(0, 2, {10240, 7});
  h.set_packet(PacketSlot::app_priority, 0);
  h.set_packet(PacketSlot::flow_size, 500);  // would be priority 7
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::priority], 0);
}

TEST(Sff, IsParallelWhilePiasIsPerMessage) {
  EXPECT_EQ(SffFunction{}.compile().concurrency,
            lang::ConcurrencyMode::parallel);
  EXPECT_EQ(PiasFunction{}.compile().concurrency,
            lang::ConcurrencyMode::per_message);
}

// ---- WCMP -----------------------------------------------------------------

TEST(Wcmp, WeightsRespectedDistributionally) {
  WcmpFunction wcmp;
  TwinHarness h(wcmp);
  // dst 2: labels 100 (weight 900) and 200 (weight 100).
  h.set_global_array(0, 3, {2, 100, 900, 2, 200, 100});
  h.set_packet(PacketSlot::dst, 2);

  int eden_hits[2] = {};
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    ASSERT_EQ(h.run_eden(), lang::ExecStatus::ok);
    const std::int64_t label = h.eden_pkt_.scalars[PacketSlot::path];
    ASSERT_TRUE(label == 100 || label == 200);
    ++eden_hits[label == 200];
  }
  EXPECT_NEAR(static_cast<double>(eden_hits[0]) / kDraws, 0.9, 0.02);

  int native_hits[2] = {};
  for (int i = 0; i < kDraws; ++i) {
    ASSERT_EQ(h.run_native(), lang::ExecStatus::ok);
    const std::int64_t label = h.native_pkt_.scalars[PacketSlot::path];
    ++native_hits[label == 200];
  }
  EXPECT_NEAR(static_cast<double>(native_hits[0]) / kDraws, 0.9, 0.02);
}

TEST(Wcmp, UnknownDestinationFallsBackToDestRouting) {
  WcmpFunction wcmp;
  TwinHarness h(wcmp);
  h.set_global_array(0, 3, {2, 100, 1000});
  h.set_packet(PacketSlot::dst, 99);  // not in the table
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::path], -1);
}

TEST(Wcmp, MultiDestinationTableSelectsMatchingRows) {
  WcmpFunction wcmp;
  TwinHarness h(wcmp);
  h.set_global_array(0, 3, {5, 50, 1000, 2, 100, 1000});
  h.set_packet(PacketSlot::dst, 2);
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::path], 100);
}

TEST(MessageWcmp, CachesPathInMessageState) {
  MessageWcmpFunction mwcmp;
  TwinHarness h(mwcmp);
  h.set_global_array(0, 3, {2, 100, 500, 2, 200, 500});
  h.set_packet(PacketSlot::dst, 2);
  h.set_message(MessageSlot::path, -1);

  ASSERT_EQ(h.run_eden(), lang::ExecStatus::ok);
  const std::int64_t first = h.eden_pkt_.scalars[PacketSlot::path];
  EXPECT_EQ(h.eden_msg_.scalars[MessageSlot::path], first);
  // Every subsequent packet of the message takes the cached path.
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(h.run_eden(), lang::ExecStatus::ok);
    EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::path], first);
  }
}

// ---- Pulsar -----------------------------------------------------------------

TEST(Pulsar, ChargesReadsByOperationSize) {
  PulsarFunction pulsar;
  TwinHarness h(pulsar);
  h.set_global_array(0, 2, {1, 3, 2, 4});  // tenant 1 -> q3, tenant 2 -> q4
  h.set_packet(PacketSlot::tenant, 1);
  h.set_packet(PacketSlot::size, 200);
  h.set_packet(PacketSlot::msg_size, 65536);
  h.set_packet(PacketSlot::msg_type, kIoRead);
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::queue], 3);
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::charge], 65536);
}

TEST(Pulsar, ChargesWritesByPacketSize) {
  PulsarFunction pulsar;
  TwinHarness h(pulsar);
  h.set_global_array(0, 2, {2, 4});
  h.set_packet(PacketSlot::tenant, 2);
  h.set_packet(PacketSlot::size, 1514);
  h.set_packet(PacketSlot::msg_size, 65536);
  h.set_packet(PacketSlot::msg_type, kIoWrite);
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::queue], 4);
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::charge], 1514);
}

TEST(Pulsar, UnknownTenantBypassesQueues) {
  PulsarFunction pulsar;
  TwinHarness h(pulsar);
  h.set_global_array(0, 2, {1, 3});
  h.set_packet(PacketSlot::tenant, 42);
  h.set_packet(PacketSlot::size, 100);
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::queue], -1);
}

// ---- Port knocking ---------------------------------------------------------

class PortKnockTest : public ::testing::Test {
 protected:
  PortKnockFunction fn_;
  TwinHarness h_{fn_};

  void SetUp() override {
    h_.set_global_array(0, 1, {1001, 1002, 1003});
    h_.set_global_scalar(0, 2222);  // open_port
    h_.set_global_scalar(1, 0);     // strict off
  }

  std::int64_t knock(std::int64_t port) {
    h_.set_packet(PacketSlot::dst_port, port);
    h_.set_packet(PacketSlot::drop, 0);
    h_.run_both_and_compare();
    return h_.eden_pkt_.scalars[PacketSlot::drop];
  }
};

TEST_F(PortKnockTest, ClosedUntilFullSequence) {
  EXPECT_EQ(knock(2222), 1);  // dropped
  EXPECT_EQ(knock(1001), 0);
  EXPECT_EQ(knock(2222), 1);  // still dropped
  EXPECT_EQ(knock(1002), 0);
  EXPECT_EQ(knock(1003), 0);
  EXPECT_EQ(knock(2222), 0);  // open
  EXPECT_EQ(knock(2222), 0);  // stays open
}

TEST_F(PortKnockTest, WrongKnockTolerantByDefault) {
  knock(1001);
  knock(7777);  // unrelated traffic
  knock(1002);
  knock(1003);
  EXPECT_EQ(knock(2222), 0);
}

TEST_F(PortKnockTest, StrictModeResetsOnWrongKnock) {
  h_.set_global_scalar(1, 1);  // strict on
  knock(1001);
  knock(7777);  // resets
  knock(1002);
  knock(1003);
  EXPECT_EQ(knock(2222), 1);  // not open: sequence restarted mid-way
  knock(1001);
  knock(1002);
  knock(1003);
  EXPECT_EQ(knock(2222), 0);
}

// ---- Connection tracking ------------------------------------------------------

class ConntrackTest : public ::testing::Test {
 protected:
  ConntrackFunction fn_;
  TwinHarness h_{fn_};

  void SetUp() override {
    h_.set_global_scalar(0, 10);          // self = host 10
    h_.set_global_array(0, 1, {80, 443});  // public ports
  }

  // Simulates a packet; returns true if it would be dropped.
  bool dropped(std::int64_t src, std::int64_t dst_port) {
    h_.set_packet(PacketSlot::src, src);
    h_.set_packet(PacketSlot::dst_port, dst_port);
    h_.set_packet(PacketSlot::drop, 0);
    h_.run_both_and_compare();
    return h_.eden_pkt_.scalars[PacketSlot::drop] != 0;
  }
};

TEST_F(ConntrackTest, InboundOnUnknownConnectionDrops) {
  EXPECT_TRUE(dropped(/*src=*/99, /*dst_port=*/5000));
}

TEST_F(ConntrackTest, OutboundEstablishesThenInboundPasses) {
  EXPECT_FALSE(dropped(/*src=*/10, /*dst_port=*/5000));  // we initiated
  EXPECT_FALSE(dropped(/*src=*/99, /*dst_port=*/12345)); // reply passes
}

TEST_F(ConntrackTest, OpenPortsAlwaysAccept) {
  EXPECT_FALSE(dropped(/*src=*/99, /*dst_port=*/80));
  EXPECT_FALSE(dropped(/*src=*/99, /*dst_port=*/443));
  // And the accepted connection is now established for other ports too
  // (same message state in this harness).
  EXPECT_FALSE(dropped(/*src=*/99, /*dst_port=*/5000));
}

TEST(ConntrackEnclave, SymmetricFlowKeysTieDirectionsTogether) {
  // End-to-end through the enclave: outbound and inbound packets of the
  // same connection have mirrored five-tuples; the symmetric flow
  // classifier must give them the same message state.
  core::ClassRegistry registry;
  core::Enclave enclave("fw", registry);
  core::FlowClassifierRule rule;
  rule.class_id = registry.intern("enclave.flows.all");
  rule.symmetric = true;
  enclave.add_flow_rule(rule);

  ConntrackFunction fn;
  const core::ActionId action = fn.install(enclave, false);
  const std::int64_t open_ports[] = {80};
  push_conntrack_config(enclave, action, /*self_host=*/1, open_ports);
  const core::TableId table = enclave.create_table("fw");
  enclave.add_rule(table, core::ClassPattern("*"), action);

  // Outbound: host 1 -> host 2, sport 5555 dport 9999.
  netsim::Packet out;
  out.src = 1;
  out.dst = 2;
  out.src_port = 5555;
  out.dst_port = 9999;
  out.size_bytes = 100;
  EXPECT_TRUE(enclave.process(out));

  // Inbound reply: host 2 -> host 1, mirrored ports. Must pass.
  netsim::Packet reply;
  reply.src = 2;
  reply.dst = 1;
  reply.src_port = 9999;
  reply.dst_port = 5555;
  reply.size_bytes = 100;
  EXPECT_TRUE(enclave.process(reply));
  EXPECT_FALSE(reply.drop_mark);

  // Unrelated inbound connection to a closed port: dropped.
  netsim::Packet attack;
  attack.src = 3;
  attack.dst = 1;
  attack.src_port = 4444;
  attack.dst_port = 5555;
  attack.size_bytes = 100;
  EXPECT_FALSE(enclave.process(attack));
}

// ---- VIP load balancing --------------------------------------------------------

TEST(VipLb, PinsConnectionToOneBackend) {
  VipLbFunction fn;
  TwinHarness h(fn);
  h.set_global_scalar(0, 42);  // VIP
  h.set_global_array(0, 1, {101, 102, 103});
  h.set_packet(PacketSlot::dst, 42);

  ASSERT_EQ(h.run_eden(), lang::ExecStatus::ok);
  const std::int64_t first = h.eden_pkt_.scalars[PacketSlot::path];
  EXPECT_TRUE(first == 101 || first == 102 || first == 103);
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(h.run_eden(), lang::ExecStatus::ok);
    EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::path], first);
  }
}

TEST(VipLb, NonVipTrafficUntouched) {
  VipLbFunction fn;
  TwinHarness h(fn);
  h.set_global_scalar(0, 42);
  h.set_global_array(0, 1, {101});
  h.set_packet(PacketSlot::dst, 7);  // not the VIP
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::path], -1);
}

TEST(VipLb, SpreadsConnectionsAcrossBackends) {
  VipLbFunction fn;
  TwinHarness h(fn);
  h.set_global_scalar(0, 42);
  h.set_global_array(0, 1, {101, 102, 103});
  h.set_packet(PacketSlot::dst, 42);
  std::map<std::int64_t, int> hits;
  for (int conn = 0; conn < 300; ++conn) {
    h.set_message(MessageSlot::state0, 0);  // fresh connection
    ASSERT_EQ(h.run_eden(), lang::ExecStatus::ok);
    ++hits[h.eden_pkt_.scalars[PacketSlot::path]];
  }
  ASSERT_EQ(hits.size(), 3u);
  for (const auto& [label, count] : hits) {
    EXPECT_NEAR(count, 100, 45) << label;
  }
}

// ---- QJump / replica select / counter ---------------------------------------

TEST(Qjump, MapsLevelToPriorityAndQueue) {
  QjumpFunction qjump;
  TwinHarness h(qjump);
  h.set_global_array(0, 1, {10, 11, 12, 13, 14, 15, 16, 17});
  h.set_packet(PacketSlot::app_priority, 5);
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::priority], 5);
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::queue], 15);
}

TEST(Qjump, ClampsOutOfRangeLevels) {
  QjumpFunction qjump;
  TwinHarness h(qjump);
  h.set_global_array(0, 1, {10, 11, 12, 13, 14, 15, 16, 17});
  h.set_packet(PacketSlot::app_priority, 99);
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::priority], 7);
  h.set_packet(PacketSlot::app_priority, -2);
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::priority], 0);
}

TEST(ReplicaSelect, SameKeySamePath) {
  ReplicaSelectFunction rs;
  TwinHarness h(rs);
  h.set_global_array(0, 1, {100, 200, 300});
  h.set_packet(PacketSlot::key_hash, 123456789);
  h.run_both_and_compare();
  const std::int64_t first = h.eden_pkt_.scalars[PacketSlot::path];
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::path], first);
}

TEST(ReplicaSelect, SpreadsAcrossReplicas) {
  ReplicaSelectFunction rs;
  TwinHarness h(rs);
  h.set_global_array(0, 1, {100, 200, 300});
  std::set<std::int64_t> seen;
  for (std::int64_t key = 1; key <= 30; ++key) {
    h.set_packet(PacketSlot::key_hash, key * 7919);
    h.run_both_and_compare();
    seen.insert(h.eden_pkt_.scalars[PacketSlot::path]);
  }
  EXPECT_EQ(seen.size(), 3u);  // all replicas used
}

TEST(ReplicaSelect, EmptyTableLeavesPathAlone) {
  ReplicaSelectFunction rs;
  TwinHarness h(rs);
  h.set_packet(PacketSlot::key_hash, 42);
  h.run_both_and_compare();
  EXPECT_EQ(h.eden_pkt_.scalars[PacketSlot::path], -1);
}

TEST(Counter, AccumulatesAndIsSerialized) {
  CounterFunction counter;
  TwinHarness h(counter);
  h.set_packet(PacketSlot::size, 1514);
  for (int i = 0; i < 5; ++i) h.run_both_and_compare();
  EXPECT_EQ(h.eden_glb_.scalars[0], 5);
  EXPECT_EQ(h.eden_glb_.scalars[1], 5 * 1514);
  EXPECT_EQ(h.eden_glb_.scalars, h.native_glb_.scalars);
  EXPECT_EQ(counter.compile().concurrency,
            lang::ConcurrencyMode::serialized);
}

// ---- Registry ----------------------------------------------------------------

TEST(Registry, EveryFunctionCompilesAndAgreesWithItsTwin) {
  // Smoke equivalence over default (zeroed) state for every registered
  // function except the randomized ones.
  for (const auto& fn : all_functions()) {
    SCOPED_TRACE(fn->name());
    const lang::CompiledProgram program = fn->compile();
    EXPECT_FALSE(program.code.empty());
    if (std::string_view(fn->name()).find("wcmp") != std::string_view::npos) {
      continue;  // randomized: covered distributionally above
    }
    TwinHarness h(*fn);
    h.run_both_and_compare();
  }
}

TEST(Registry, Table1HasBothImplementedAndTaxonomyRows) {
  const auto rows = table1_rows();
  int implemented = 0, taxonomy = 0;
  for (const auto& row : rows) {
    (row.implemented ? implemented : taxonomy)++;
  }
  EXPECT_EQ(implemented, static_cast<int>(all_functions().size()));
  EXPECT_GT(taxonomy, 4);
}

}  // namespace
}  // namespace eden::functions
