// The enclave data path: match-action tables, state management, the
// concurrency model, error isolation and the enclave's own stage.
#include "core/enclave.h"

#include <gtest/gtest.h>

#include <thread>

#include "core/controller.h"

namespace eden::core {
namespace {

netsim::Packet tcp_packet(std::int64_t msg_id = 7) {
  netsim::Packet p;
  p.src = 1;
  p.dst = 2;
  p.src_port = 1000;
  p.dst_port = 2000;
  p.protocol = netsim::Protocol::tcp;
  p.size_bytes = 1514;
  p.payload_bytes = 1460;
  p.meta.msg_id = msg_id;
  return p;
}

class EnclaveTest : public ::testing::Test {
 protected:
  ClassRegistry registry_;
  Enclave enclave_{"test", registry_};
  Controller controller_{registry_};

  ActionId install(const char* name, const char* source,
                   std::vector<lang::FieldDef> globals = {}) {
    const lang::CompiledProgram program =
        controller_.compile(name, source, globals);
    return enclave_.install_action(name, program, globals);
  }

  // Installs `source` behind a match-any rule in a fresh table.
  ActionId install_with_rule(const char* name, const char* source,
                             std::vector<lang::FieldDef> globals = {}) {
    const ActionId action = install(name, source, globals);
    const TableId table = enclave_.create_table(name);
    enclave_.add_rule(table, ClassPattern("*"), action);
    return action;
  }
};

TEST_F(EnclaveTest, ActionSetsPacketPriority) {
  install_with_rule("p3", "fun(p, m, g) -> p.priority <- 3");
  netsim::Packet packet = tcp_packet();
  EXPECT_TRUE(enclave_.process(packet));
  EXPECT_EQ(packet.priority, 3);
  EXPECT_EQ(enclave_.stats().packets, 1u);
  EXPECT_EQ(enclave_.stats().matched, 1u);
}

TEST_F(EnclaveTest, PriorityClampedToValidRange) {
  install_with_rule("p99", "fun(p, m, g) -> p.priority <- 99");
  netsim::Packet packet = tcp_packet();
  enclave_.process(packet);
  EXPECT_EQ(packet.priority, netsim::kMaxPriorities - 1);
}

TEST_F(EnclaveTest, DropActionDropsPacket) {
  install_with_rule("dropper", "fun(p, m, g) -> p.drop <- 1");
  netsim::Packet packet = tcp_packet();
  EXPECT_FALSE(enclave_.process(packet));
  EXPECT_EQ(enclave_.stats().dropped_by_action, 1u);
}

TEST_F(EnclaveTest, NoTableMeansPassThrough) {
  netsim::Packet packet = tcp_packet();
  packet.priority = 5;
  EXPECT_TRUE(enclave_.process(packet));
  EXPECT_EQ(packet.priority, 5);
  EXPECT_EQ(enclave_.stats().matched, 0u);
}

TEST_F(EnclaveTest, RuleMatchesOnClassNotHeaders) {
  const ClassId get = registry_.intern("memcached.r1.GET");
  const ClassId put = registry_.intern("memcached.r1.PUT");
  const ActionId action = install("p6", "fun(p, m, g) -> p.priority <- 6");
  const TableId table = enclave_.create_table("t");
  enclave_.add_rule(table, ClassPattern("memcached.r1.GET"), action);

  netsim::Packet get_packet = tcp_packet();
  get_packet.classes.add(get);
  enclave_.process(get_packet);
  EXPECT_EQ(get_packet.priority, 6);

  netsim::Packet put_packet = tcp_packet();
  put_packet.classes.add(put);
  enclave_.process(put_packet);
  EXPECT_EQ(put_packet.priority, 0);  // no rule matched
}

TEST_F(EnclaveTest, FirstMatchingRuleWinsWithinTable) {
  const ClassId get = registry_.intern("memcached.r1.GET");
  const ActionId first = install("first", "fun(p, m, g) -> p.priority <- 1");
  const ActionId second = install("second", "fun(p, m, g) -> p.priority <- 2");
  const TableId table = enclave_.create_table("t");
  enclave_.add_rule(table, ClassPattern("memcached.r1.*"), first);
  enclave_.add_rule(table, ClassPattern("memcached.r1.GET"), second);
  netsim::Packet packet = tcp_packet();
  packet.classes.add(get);
  enclave_.process(packet);
  EXPECT_EQ(packet.priority, 1);
}

TEST_F(EnclaveTest, TablesApplyInOrderAndCompose) {
  // Table 1 sets the priority, table 2 reads nothing but sets the path;
  // both actions run on the same packet.
  const ActionId prio = install("prio", "fun(p, m, g) -> p.priority <- 4");
  const ActionId path = install("path", "fun(p, m, g) -> p.path <- 17");
  const TableId t1 = enclave_.create_table("t1");
  const TableId t2 = enclave_.create_table("t2");
  enclave_.add_rule(t1, ClassPattern("*"), prio);
  enclave_.add_rule(t2, ClassPattern("*"), path);
  netsim::Packet packet = tcp_packet();
  enclave_.process(packet);
  EXPECT_EQ(packet.priority, 4);
  EXPECT_EQ(packet.path_label, 17);
}

TEST_F(EnclaveTest, ReinstallUnderLiveNameReplacesInPlace) {
  const ActionId first =
      install_with_rule("prio", "fun(p, m, g) -> p.priority <- 3");
  netsim::Packet packet = tcp_packet();
  enclave_.process(packet);
  ASSERT_EQ(packet.priority, 3);

  // Live update: same name, new program. The id (and the rule bound to
  // it) survives, and name lookups resolve the new entry — never a
  // stale duplicate.
  const ActionId second = install("prio", "fun(p, m, g) -> p.priority <- 5");
  EXPECT_EQ(second, first);
  EXPECT_EQ(enclave_.find_action("prio"), first);
  packet = tcp_packet();
  enclave_.process(packet);
  EXPECT_EQ(packet.priority, 5);
}

TEST_F(EnclaveTest, ReinstallInsideTxnStaysStagedUntilCommit) {
  const ActionId id =
      install_with_rule("prio", "fun(p, m, g) -> p.priority <- 3");
  enclave_.begin_txn();
  EXPECT_EQ(install("prio", "fun(p, m, g) -> p.priority <- 5"), id);
  netsim::Packet packet = tcp_packet();
  enclave_.process(packet);
  EXPECT_EQ(packet.priority, 3);  // the committed program still runs
  enclave_.commit_txn();
  packet = tcp_packet();
  enclave_.process(packet);
  EXPECT_EQ(packet.priority, 5);
}

TEST_F(EnclaveTest, RemoveRuleStopsMatching) {
  const ActionId action = install("p5", "fun(p, m, g) -> p.priority <- 5");
  const TableId table = enclave_.create_table("t");
  const MatchRuleId rule = enclave_.add_rule(table, ClassPattern("*"), action);
  EXPECT_EQ(enclave_.rule_count(table), 1u);
  EXPECT_TRUE(enclave_.remove_rule(table, rule));
  EXPECT_FALSE(enclave_.remove_rule(table, rule));
  netsim::Packet packet = tcp_packet();
  enclave_.process(packet);
  EXPECT_EQ(packet.priority, 0);
}

TEST_F(EnclaveTest, DeleteTableRemovesItsRules) {
  const ActionId action = install("p5", "fun(p, m, g) -> p.priority <- 5");
  const TableId table = enclave_.create_table("t");
  enclave_.add_rule(table, ClassPattern("*"), action);
  enclave_.delete_table(table);
  netsim::Packet packet = tcp_packet();
  enclave_.process(packet);
  EXPECT_EQ(packet.priority, 0);
  EXPECT_THROW(enclave_.add_rule(table, ClassPattern("*"), action),
               std::invalid_argument);
}

TEST_F(EnclaveTest, RemoveActionDetachesItsRules) {
  const ActionId action = install("p5", "fun(p, m, g) -> p.priority <- 5");
  const TableId table = enclave_.create_table("t");
  enclave_.add_rule(table, ClassPattern("*"), action);
  enclave_.remove_action(action);
  EXPECT_EQ(enclave_.rule_count(table), 0u);
  netsim::Packet packet = tcp_packet();
  EXPECT_TRUE(enclave_.process(packet));
  EXPECT_EQ(packet.priority, 0);
}

TEST_F(EnclaveTest, FindActionByName) {
  const ActionId action = install("needle", "fun(p, m, g) -> 0");
  EXPECT_EQ(enclave_.find_action("needle"), action);
  EXPECT_FALSE(enclave_.find_action("haystack").has_value());
}

TEST_F(EnclaveTest, MessageStatePersistsAcrossPackets) {
  const ActionId action = install_with_rule(
      "accum", "fun(p, m, g) -> m.size <- m.size + p.size");
  for (int i = 0; i < 3; ++i) {
    netsim::Packet packet = tcp_packet(/*msg_id=*/5);
    enclave_.process(packet);
  }
  EXPECT_EQ(enclave_.peek_message_state(action, 5, MessageSlot::size),
            3 * 1514);
}

TEST_F(EnclaveTest, MessagesAreIsolatedFromEachOther) {
  const ActionId action = install_with_rule(
      "accum", "fun(p, m, g) -> m.size <- m.size + p.size");
  netsim::Packet a = tcp_packet(1);
  netsim::Packet b = tcp_packet(2);
  enclave_.process(a);
  enclave_.process(a);
  enclave_.process(b);
  EXPECT_EQ(enclave_.peek_message_state(action, 1, MessageSlot::size),
            2 * 1514);
  EXPECT_EQ(enclave_.peek_message_state(action, 2, MessageSlot::size),
            1514);
}

TEST_F(EnclaveTest, MessageStateInitializedFromFirstPacket) {
  const ActionId action = install_with_rule(
      "peek_prio", "fun(p, m, g) -> p.priority <- m.priority");
  netsim::Packet packet = tcp_packet(9);
  packet.meta.app_priority = 6;
  enclave_.process(packet);
  EXPECT_EQ(packet.priority, 6);  // msg.priority seeded from app_priority
  EXPECT_EQ(enclave_.peek_message_state(action, 9, MessageSlot::priority), 6);
}

// Virtual clock for deterministic message-store timestamps: every
// now_ns() call ticks one virtual microsecond.
std::int64_t test_clock(void* ctx) {
  return (*static_cast<std::int64_t*>(ctx) += 1'000);
}

TEST_F(EnclaveTest, MessageStoreEvictsBeyondCap) {
  EnclaveConfig config;
  config.max_messages_per_action = 4;
  // One shard: a single eviction queue, so the idlest entry globally is
  // the one evicted and the assertions below are deterministic.
  config.message_store_shards = 1;
  Enclave small("small", registry_, config);
  std::int64_t vclock = 0;
  small.set_clock(&test_clock, &vclock);
  const lang::CompiledProgram program = controller_.compile(
      "accum", "fun(p, m, g) -> m.size <- m.size + p.size", {});
  const ActionId action = small.install_action("accum", program, {});
  const TableId table = small.create_table("t");
  small.add_rule(table, ClassPattern("*"), action);
  for (std::int64_t id = 1; id <= 10; ++id) {
    netsim::Packet packet = tcp_packet(id);
    small.process(packet);
  }
  EXPECT_EQ(small.stats().message_entries_created, 10u);
  EXPECT_EQ(small.stats().message_entries_evicted, 6u);
  EXPECT_EQ(small.stats().message_entries_live, 4u);
  // Idlest (here: oldest-touched) entries gone, newest retained.
  EXPECT_FALSE(small.peek_message_state(action, 1, 0).has_value());
  EXPECT_TRUE(small.peek_message_state(action, 10, 0).has_value());
}

TEST_F(EnclaveTest, MessageStoreEvictionSparesHotEntries) {
  // Unlike the old creation-order deque, capacity eviction picks the
  // idlest entry: a long-lived message that keeps receiving packets
  // survives churn that would have evicted it by age.
  EnclaveConfig config;
  config.max_messages_per_action = 4;
  config.message_store_shards = 1;
  Enclave small("small", registry_, config);
  std::int64_t vclock = 0;
  small.set_clock(&test_clock, &vclock);
  const lang::CompiledProgram program = controller_.compile(
      "accum", "fun(p, m, g) -> m.size <- m.size + p.size", {});
  const ActionId action = small.install_action("accum", program, {});
  const TableId table = small.create_table("t");
  small.add_rule(table, ClassPattern("*"), action);

  // Message 1 is created first but stays hot; fresh messages churn by.
  for (std::int64_t id = 1; id <= 12; ++id) {
    netsim::Packet packet = tcp_packet(id);
    small.process(packet);
    netsim::Packet keepalive = tcp_packet(1);
    small.process(keepalive);
  }
  EXPECT_TRUE(small.peek_message_state(action, 1, 0).has_value())
      << "hot oldest-created message was evicted";
  EXPECT_EQ(small.peek_message_state(action, 1, MessageSlot::size),
            13 * 1514);  // one create + 12 keepalives
}

TEST_F(EnclaveTest, ZeroMessageCapMeansUnlimited) {
  EnclaveConfig config;
  config.max_messages_per_action = 0;  // 0 = unlimited, not "evict all"
  Enclave big("big", registry_, config);
  const lang::CompiledProgram program = controller_.compile(
      "accum", "fun(p, m, g) -> m.size <- m.size + p.size", {});
  const ActionId action = big.install_action("accum", program, {});
  const TableId table = big.create_table("t");
  big.add_rule(table, ClassPattern("*"), action);
  for (std::int64_t id = 1; id <= 1000; ++id) {
    netsim::Packet packet = tcp_packet(id);
    big.process(packet);
  }
  EXPECT_EQ(big.stats().message_entries_created, 1000u);
  EXPECT_EQ(big.stats().message_entries_evicted, 0u);
  EXPECT_EQ(big.stats().message_entries_live, 1000u);
  EXPECT_TRUE(big.peek_message_state(action, 1, 0).has_value());
}

TEST_F(EnclaveTest, IdleMessagesExpireOnTimerWheel) {
  EnclaveConfig config;
  config.message_idle_timeout_ns = 10'000'000;  // 10 virtual ms
  config.message_wheel_tick_ns = 1'000'000;
  config.message_store_shards = 1;
  Enclave timed("timed", registry_, config);
  std::int64_t vclock = 0;
  timed.set_clock(&test_clock, &vclock);
  const lang::CompiledProgram program = controller_.compile(
      "accum", "fun(p, m, g) -> m.size <- m.size + p.size", {});
  const ActionId action = timed.install_action("accum", program, {});
  const TableId table = timed.create_table("t");
  timed.add_rule(table, ClassPattern("*"), action);

  netsim::Packet a = tcp_packet(1);
  timed.process(a);
  netsim::Packet b = tcp_packet(2);
  timed.process(b);

  // Keep message 1 warm, let message 2 idle past the timeout.
  vclock = 8'000'000;
  netsim::Packet keepalive = tcp_packet(1);
  timed.process(keepalive);
  vclock = 13'000'000;
  timed.advance_message_expiry();

  EXPECT_FALSE(timed.peek_message_state(action, 2, 0).has_value())
      << "idle message survived expiry";
  EXPECT_TRUE(timed.peek_message_state(action, 1, 0).has_value())
      << "recently touched message expired";
  EXPECT_EQ(timed.stats().message_entries_expired, 1u);

  // Far future: everything idles out; expired != evicted accounting.
  vclock = 1'000'000'000;
  timed.advance_message_expiry();
  EXPECT_FALSE(timed.peek_message_state(action, 1, 0).has_value());
  EXPECT_EQ(timed.stats().message_entries_expired, 2u);
  EXPECT_EQ(timed.stats().message_entries_evicted, 0u);
  EXPECT_EQ(timed.stats().message_entries_live, 0u);
}

TEST_F(EnclaveTest, ThreadStateRegistryReclaimedAfterEnclaveDeath) {
  // Each enclave instance leaves a per-thread ThreadState in this
  // thread's registry. Destroying the enclave must not leak it forever:
  // the next registry access sweeps entries of dead instances, so
  // serial create/use/destroy cycles hold the registry size flat.
  std::size_t high_water = 0;
  for (int i = 0; i < 8; ++i) {
    Enclave e("leak" + std::to_string(i), registry_);
    netsim::Packet packet = tcp_packet();
    e.process(packet);
    const std::size_t n = enclave_thread_state_count();
    if (i == 0) high_water = n;
    EXPECT_LE(n, high_water) << "registry grew on iteration " << i;
  }
}

TEST_F(EnclaveTest, GlobalStateReadableAndUpdatable) {
  lang::FieldDef counter;
  counter.name = "limit";
  counter.access = lang::Access::read_only;
  const ActionId action = install_with_rule(
      "cmp", "fun(p, m, g) -> p.priority <- (if p.size > g.limit then 1 else 7)",
      {counter});
  enclave_.set_global_scalar(action, "limit", 100);
  EXPECT_EQ(enclave_.read_global_scalar(action, "limit"), 100);

  netsim::Packet packet = tcp_packet();
  enclave_.process(packet);
  EXPECT_EQ(packet.priority, 1);  // 1514 > 100

  enclave_.set_global_scalar(action, "limit", 100000);
  enclave_.process(packet);
  EXPECT_EQ(packet.priority, 7);
}

TEST_F(EnclaveTest, GlobalArrayValidation) {
  lang::FieldDef table_field;
  table_field.name = "recs";
  table_field.kind = lang::FieldKind::record_array;
  table_field.record_fields = {"a", "b", "c"};
  const ActionId action =
      install("arr", "fun(p, m, g) -> g.recs[0].a", {table_field});
  EXPECT_THROW(enclave_.set_global_array(action, "recs", {1, 2}),
               std::invalid_argument);  // not a whole record
  enclave_.set_global_array(action, "recs", {1, 2, 3});
  EXPECT_THROW(enclave_.set_global_array(action, "nope", {1}),
               std::invalid_argument);
  EXPECT_THROW(enclave_.set_global_scalar(action, "recs", 1),
               std::invalid_argument);
}

TEST_F(EnclaveTest, FaultyActionIsIsolated) {
  // Out-of-bounds access: the action fails, the packet continues
  // unmodified, the error is counted (Section 3.4.3).
  lang::FieldDef arr;
  arr.name = "xs";
  arr.kind = lang::FieldKind::array;
  const ActionId action = install_with_rule(
      "oob", "fun(p, m, g) -> p.priority <- g.xs[99]", {arr});
  netsim::Packet packet = tcp_packet();
  packet.priority = 2;
  EXPECT_TRUE(enclave_.process(packet));
  EXPECT_EQ(packet.priority, 2);  // untouched
  EXPECT_EQ(enclave_.action_stats(action).errors, 1u);
  EXPECT_EQ(enclave_.action_stats(action).executions, 1u);
}

TEST_F(EnclaveTest, FaultyActionRollsBackMessageState) {
  // The program writes message state and *then* traps; the authoritative
  // message entry must keep its pre-run value (the function ran against
  // a consistent copy, Section 3.4.4).
  lang::FieldDef arr;
  arr.name = "xs";
  arr.kind = lang::FieldKind::array;
  const ActionId action = install_with_rule(
      "late_trap", "fun(p, m, g) -> m.size <- 123; p.priority <- g.xs[5]",
      {arr});
  netsim::Packet packet = tcp_packet(/*msg_id=*/77);
  EXPECT_TRUE(enclave_.process(packet));
  EXPECT_EQ(enclave_.action_stats(action).errors, 1u);
  EXPECT_EQ(enclave_.peek_message_state(action, 77, MessageSlot::size), 0);
}

TEST_F(EnclaveTest, DivideByZeroIsIsolated) {
  const ActionId action = install_with_rule(
      "div0", "fun(p, m, g) -> p.priority <- 1 / (p.size - p.size)");
  netsim::Packet packet = tcp_packet();
  EXPECT_TRUE(enclave_.process(packet));
  EXPECT_EQ(enclave_.action_stats(action).errors, 1u);
}

TEST_F(EnclaveTest, NativeActionSeesSameStateMachinery) {
  const ActionId action = enclave_.install_native_action(
      "native_accum",
      [](lang::StateBlock& pkt, lang::StateBlock* msg, lang::StateBlock*,
         NativeCtx&) {
        msg->scalars[MessageSlot::size] += pkt.scalars[PacketSlot::size];
        pkt.scalars[PacketSlot::priority] = 5;
        return lang::ExecStatus::ok;
      },
      lang::ConcurrencyMode::per_message, /*touches_message=*/true);
  const TableId table = enclave_.create_table("t");
  enclave_.add_rule(table, ClassPattern("*"), action);
  netsim::Packet packet = tcp_packet(3);
  enclave_.process(packet);
  enclave_.process(packet);
  EXPECT_EQ(packet.priority, 5);
  EXPECT_EQ(enclave_.peek_message_state(action, 3, MessageSlot::size),
            2 * 1514);
}

TEST_F(EnclaveTest, FlowClassifierAssignsClassAndMessageId) {
  const ClassId tcp_class = registry_.intern("enclave.flows.tcp");
  FlowClassifierRule rule;
  rule.proto = static_cast<std::int64_t>(netsim::Protocol::tcp);
  rule.class_id = tcp_class;
  enclave_.add_flow_rule(rule);

  netsim::Packet packet = tcp_packet(/*msg_id=*/0);
  enclave_.process(packet);
  EXPECT_TRUE(packet.classes.contains(tcp_class));
  EXPECT_NE(packet.meta.msg_id, 0);

  // Same five-tuple -> same message id; different flow -> different id.
  netsim::Packet same = tcp_packet(0);
  enclave_.process(same);
  EXPECT_EQ(same.meta.msg_id, packet.meta.msg_id);
  netsim::Packet other = tcp_packet(0);
  other.src_port = 4321;
  enclave_.process(other);
  EXPECT_NE(other.meta.msg_id, packet.meta.msg_id);
}

TEST_F(EnclaveTest, FlowClassifierRespectsFieldFilters) {
  const ClassId cls = registry_.intern("enclave.flows.port80");
  FlowClassifierRule rule;
  rule.dst_port = 80;
  rule.class_id = cls;
  enclave_.add_flow_rule(rule);

  netsim::Packet hit = tcp_packet(0);
  hit.dst_port = 80;
  enclave_.process(hit);
  EXPECT_TRUE(hit.classes.contains(cls));

  netsim::Packet miss = tcp_packet(0);
  miss.dst_port = 443;
  enclave_.process(miss);
  EXPECT_FALSE(miss.classes.contains(cls));
}

TEST_F(EnclaveTest, StageAssignedMessageIdTakesPrecedence) {
  const ClassId cls = registry_.intern("enclave.flows.tcp");
  FlowClassifierRule rule;
  rule.class_id = cls;
  enclave_.add_flow_rule(rule);
  netsim::Packet packet = tcp_packet(/*msg_id=*/1234);
  enclave_.process(packet);
  EXPECT_EQ(packet.meta.msg_id, 1234);  // not overwritten
}

// --- Platform presets -----------------------------------------------------

TEST_F(EnclaveTest, NicEnclaveEnforcesCycleBudget) {
  // The same bytecode ships to an OS enclave (unbounded) and a NIC
  // enclave (hard instruction budget). An expensive function runs on
  // the OS but trips the NIC's budget — and is isolated there.
  const char* expensive = R"(fun(p, m, g) ->
      let i = 0 in
      (while i < 10000 do i <- i + 1 done;
       p.priority <- 5))";
  const auto program = controller_.compile("spin", expensive, {});

  Enclave os("os", registry_, core::EnclaveConfig::os_default());
  Enclave nic("nic", registry_, core::EnclaveConfig::nic_default());
  for (Enclave* e : {&os, &nic}) {
    const ActionId action = e->install_action("spin", program, {});
    const TableId table = e->create_table("t");
    e->add_rule(table, ClassPattern("*"), action);
  }

  netsim::Packet on_os = tcp_packet();
  os.process(on_os);
  EXPECT_EQ(on_os.priority, 5);

  netsim::Packet on_nic = tcp_packet();
  nic.process(on_nic);
  EXPECT_EQ(on_nic.priority, 0);  // fuel exhausted: no write-back
  EXPECT_EQ(nic.action_stats(*nic.find_action("spin")).errors, 1u);
}

TEST_F(EnclaveTest, NicEnclaveRunsTheLibraryFunctions) {
  // The actual library programs fit comfortably inside the NIC budget —
  // the paper's claim that the same action functions run on both
  // platforms.
  Enclave nic("nic", registry_, core::EnclaveConfig::nic_default());
  const auto program = controller_.compile(
      "pias_like", R"(fun(p, m, g) ->
        m.size <- m.size + p.size;
        p.priority <- (if m.size <= 10240 then 7 else 5))",
      {});
  const ActionId action = nic.install_action("pias_like", program, {});
  const TableId table = nic.create_table("t");
  nic.add_rule(table, ClassPattern("*"), action);
  netsim::Packet packet = tcp_packet();
  nic.process(packet);
  EXPECT_EQ(packet.priority, 7);
  EXPECT_EQ(nic.action_stats(action).errors, 0u);
}

// --- Batched execution (Section 6) --------------------------------------

TEST_F(EnclaveTest, BatchMatchesPerPacketSemantics) {
  // Same PIAS-style accumulation, one enclave fed per packet, the other
  // in batches: identical message state and packet priorities.
  const char* source = R"(fun(p, m, g) ->
      m.size <- m.size + p.size;
      p.priority <- (if m.size > 4000 then 2 else 6))";
  Enclave batch_enclave("batch", registry_);
  const auto program = controller_.compile("accum", source, {});
  const ActionId a1 = install_with_rule("accum", source);
  const ActionId a2 = batch_enclave.install_action("accum", program, {});
  const TableId t2 = batch_enclave.create_table("t");
  batch_enclave.add_rule(t2, ClassPattern("*"), a2);

  std::vector<netsim::PacketPtr> batch;
  std::vector<std::uint8_t> expected;
  for (int i = 0; i < 8; ++i) {
    // Two interleaved messages.
    netsim::Packet p = tcp_packet(1 + (i % 2));
    enclave_.process(p);
    expected.push_back(p.priority);
    auto bp = netsim::make_packet();
    *bp = tcp_packet(1 + (i % 2));
    batch.push_back(std::move(bp));
  }
  EXPECT_EQ(batch_enclave.process_batch(batch), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i]->priority, expected[i]) << i;
  }
  EXPECT_EQ(batch_enclave.peek_message_state(a2, 1, MessageSlot::size),
            enclave_.peek_message_state(a1, 1, MessageSlot::size));
  EXPECT_EQ(batch_enclave.peek_message_state(a2, 2, MessageSlot::size),
            enclave_.peek_message_state(a1, 2, MessageSlot::size));
}

TEST_F(EnclaveTest, BatchDropsAreCountedAndMarked) {
  install_with_rule("dropper", "fun(p, m, g) -> p.drop <- p.size > 1000");
  std::vector<netsim::PacketPtr> batch;
  for (int i = 0; i < 4; ++i) {
    auto p = netsim::make_packet();
    *p = tcp_packet();
    p->size_bytes = i % 2 == 0 ? 500 : 1500;
    batch.push_back(std::move(p));
  }
  EXPECT_EQ(enclave_.process_batch(batch), 2u);
  EXPECT_FALSE(batch[0]->drop_mark);
  EXPECT_TRUE(batch[1]->drop_mark);
  EXPECT_EQ(enclave_.stats().dropped_by_action, 2u);
}

TEST_F(EnclaveTest, BatchRollsBackOnlyFaultyPackets) {
  // The action accumulates message state, then traps on large packets.
  lang::FieldDef arr;
  arr.name = "xs";
  arr.kind = lang::FieldKind::array;
  const ActionId action = install_with_rule("trapper", R"(fun(p, m, g) ->
      m.size <- m.size + p.size;
      (if p.size > 1000 then p.priority <- g.xs[9] else 0))",
                                            {arr});
  std::vector<netsim::PacketPtr> batch;
  for (int i = 0; i < 4; ++i) {
    auto p = netsim::make_packet();
    *p = tcp_packet(5);
    p->size_bytes = i == 2 ? 1500 : 100;  // third packet traps
    batch.push_back(std::move(p));
  }
  enclave_.process_batch(batch);
  // Message state includes only the three successful packets.
  EXPECT_EQ(enclave_.peek_message_state(action, 5, MessageSlot::size), 300);
  EXPECT_EQ(enclave_.action_stats(action).errors, 1u);
}

TEST_F(EnclaveTest, BatchFallsBackWithMultipleTables) {
  const ActionId prio = install("prio", "fun(p, m, g) -> p.priority <- 4");
  const ActionId path = install("path", "fun(p, m, g) -> p.path <- 17");
  const TableId t1 = enclave_.create_table("t1");
  const TableId t2 = enclave_.create_table("t2");
  enclave_.add_rule(t1, ClassPattern("*"), prio);
  enclave_.add_rule(t2, ClassPattern("*"), path);
  std::vector<netsim::PacketPtr> batch;
  for (int i = 0; i < 3; ++i) {
    auto p = netsim::make_packet();
    *p = tcp_packet();
    batch.push_back(std::move(p));
  }
  EXPECT_EQ(enclave_.process_batch(batch), 3u);
  for (const auto& p : batch) {
    EXPECT_EQ(p->priority, 4);
    EXPECT_EQ(p->path_label, 17);
  }
}

TEST_F(EnclaveTest, EmptyBatchIsFine) {
  std::vector<netsim::PacketPtr> batch;
  EXPECT_EQ(enclave_.process_batch(batch), 0u);
}

// The concurrency model under real threads: a serialized (global-
// writing) action must not lose updates.
TEST_F(EnclaveTest, SerializedActionIsThreadSafe) {
  lang::FieldDef packets;
  packets.name = "packets";
  packets.access = lang::Access::read_write;
  const ActionId action = install_with_rule(
      "count", "fun(p, m, g) -> g.packets <- g.packets + 1", {packets});

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        netsim::Packet packet = tcp_packet();
        enclave_.process(packet);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(enclave_.read_global_scalar(action, "packets"),
            kThreads * kPerThread);
  // A writable global scalar can never be key-disjoint: this action
  // must run fully serialized, not key-sharded.
  EXPECT_FALSE(enclave_.action_global_sharded(action));
}

// --- Key-sharded global serialization ------------------------------------

TEST_F(EnclaveTest, GlobalShardingRequiresKeyPartitionedWrites) {
  // Eligible: serialized mode, and the only writable global field is a
  // key_partitioned array (writes provably disjoint by message key).
  lang::FieldDef counts;
  counts.name = "counts";
  counts.kind = lang::FieldKind::array;
  counts.access = lang::Access::read_write;
  counts.key_partitioned = true;
  const ActionId sharded = install_with_rule(
      "sharded", "fun(p, m, g) -> g.counts[p.msg_id] <- g.counts[p.msg_id] + 1",
      {counts});
  EXPECT_TRUE(enclave_.action_global_sharded(sharded));

  // Not eligible: same shape without the key_partitioned declaration.
  lang::FieldDef plain = counts;
  plain.key_partitioned = false;
  const ActionId serial = install(
      "serial", "fun(p, m, g) -> g.counts[p.msg_id] <- g.counts[p.msg_id] + 1",
      {plain});
  EXPECT_FALSE(enclave_.action_global_sharded(serial));

  // Not eligible: a writable scalar rides along, even though the array
  // is partitioned (the scalar write would race across stripes).
  lang::FieldDef total;
  total.name = "total";
  total.access = lang::Access::read_write;
  const ActionId mixed = install(
      "mixed", "fun(p, m, g) -> g.total <- g.total + 1", {counts, total});
  EXPECT_FALSE(enclave_.action_global_sharded(mixed));

  // Read-only scalars are fine next to the partitioned array.
  lang::FieldDef limit;
  limit.name = "limit";
  limit.access = lang::Access::read_only;
  const ActionId with_ro = install(
      "with_ro", "fun(p, m, g) -> g.counts[p.msg_id] <- g.limit",
      {counts, limit});
  EXPECT_TRUE(enclave_.action_global_sharded(with_ro));
}

TEST_F(EnclaveTest, ShardedGlobalWritesAreExactUnderContention) {
  // Key-partitioned global increments from racing threads: stripe
  // locking must serialize same-key writers while different keys run in
  // parallel, and no update may be lost. The action also reads its own
  // slot back, so a final packet per key observes the exact total.
  lang::FieldDef counts;
  counts.name = "counts";
  counts.kind = lang::FieldKind::array;
  counts.access = lang::Access::read_write;
  counts.key_partitioned = true;
  const ActionId action = install_with_rule("shard_count", R"(fun(p, m, g) ->
      g.counts[p.msg_id] <- g.counts[p.msg_id] + 1;
      p.path <- g.counts[p.msg_id])",
                                            {counts});
  enclave_.set_global_array(action, "counts", std::vector<std::int64_t>(8, 0));
  ASSERT_TRUE(enclave_.action_global_sharded(action));

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Two threads share key 1, two share key 2: same-key writes
        // contend on one stripe, cross-key writes run concurrently.
        netsim::Packet packet = tcp_packet(1 + (t % 2));
        enclave_.process(packet);
      }
    });
  }
  for (auto& t : threads) t.join();

  for (const std::int64_t key : {1, 2}) {
    netsim::Packet probe = tcp_packet(key);
    enclave_.process(probe);
    EXPECT_EQ(probe.path_label, 2 * kPerThread + 1) << "key " << key;
  }
}

TEST_F(EnclaveTest, ShardedGlobalStateVisibleToControllerWrites) {
  // Controller writes keep the exclusive global lock, so a
  // set_global_array lands atomically even against sharded executions.
  lang::FieldDef counts;
  counts.name = "counts";
  counts.kind = lang::FieldKind::array;
  counts.access = lang::Access::read_write;
  counts.key_partitioned = true;
  const ActionId action = install_with_rule(
      "reset_me", "fun(p, m, g) -> p.path <- g.counts[p.msg_id]", {counts});
  enclave_.set_global_array(action, "counts", {7, 8, 9, 10});
  netsim::Packet packet = tcp_packet(2);
  enclave_.process(packet);
  EXPECT_EQ(packet.path_label, 9);
}

TEST_F(EnclaveTest, PerMessageActionIsThreadSafePerMessage) {
  const ActionId action = install_with_rule(
      "accum", "fun(p, m, g) -> m.size <- m.size + p.size");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Two threads share message 1, two share message 2.
        netsim::Packet packet = tcp_packet(1 + (t % 2));
        enclave_.process(packet);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(enclave_.peek_message_state(action, 1, MessageSlot::size),
            2 * kPerThread * 1514);
  EXPECT_EQ(enclave_.peek_message_state(action, 2, MessageSlot::size),
            2 * kPerThread * 1514);
}

// --- Telemetry ---------------------------------------------------------

// Helpers for enclaves with a non-default (telemetry) configuration.
EnclaveConfig telemetry_config() {
  EnclaveConfig config;
  config.telemetry.enabled = true;
  config.telemetry.histogram_sample_every = 1;
  config.telemetry.trace_sample_every = 1;
  config.telemetry.trace_capacity = 4;
  return config;
}

ActionId install_with_rule_in(Controller& controller, Enclave& enclave,
                              const char* name, const char* source,
                              const ClassPattern& pattern) {
  const lang::CompiledProgram program = controller.compile(name, source, {});
  const ActionId action = enclave.install_action(name, program, {});
  const TableId table = enclave.create_table(name);
  enclave.add_rule(table, pattern, action);
  return action;
}

TEST_F(EnclaveTest, TelemetryOffByDefault) {
  install_with_rule("p3", "fun(p, m, g) -> p.priority <- 3");
  netsim::Packet packet = tcp_packet();
  enclave_.process(packet);
  const telemetry::EnclaveTelemetry t = enclave_.telemetry_snapshot();
  EXPECT_FALSE(t.telemetry_enabled);
  EXPECT_EQ(t.packets, 1u);
  EXPECT_EQ(t.matched, 1u);
  ASSERT_EQ(t.actions.size(), 1u);
  EXPECT_FALSE(t.actions[0].has_histograms);
  EXPECT_TRUE(t.classes.empty());
  EXPECT_TRUE(t.trace.empty());
}

TEST(EnclaveTelemetryTest, PerClassCountersAndStatsFold) {
  ClassRegistry registry;
  Controller controller(registry);
  Enclave enclave("tele", registry, telemetry_config());
  const ClassId web = registry.intern("enclave.flows.web");
  const ClassId bulk = registry.intern("enclave.flows.bulk");
  install_with_rule_in(controller, enclave, "keep",
                       "fun(p, m, g) -> p.priority <- 3",
                       ClassPattern("enclave.flows.web"));
  install_with_rule_in(controller, enclave, "drop",
                       "fun(p, m, g) -> p.drop <- 1",
                       ClassPattern("enclave.flows.bulk"));

  netsim::Packet p = tcp_packet();
  p.classes.add(web);
  EXPECT_TRUE(enclave.process(p));
  EXPECT_TRUE(enclave.process(p));
  netsim::Packet q = tcp_packet();
  q.classes.add(bulk);
  q.drop_mark = false;
  EXPECT_FALSE(enclave.process(q));

  // The class slots are the sole per-packet counters with telemetry on;
  // stats() must fold them back into the enclave totals.
  const EnclaveStats stats = enclave.stats();
  EXPECT_EQ(stats.packets, 3u);
  EXPECT_EQ(stats.matched, 3u);
  EXPECT_EQ(stats.dropped_by_action, 1u);

  const telemetry::EnclaveTelemetry t = enclave.telemetry_snapshot();
  ASSERT_EQ(t.classes.size(), 2u);
  std::uint64_t web_matched = 0, bulk_dropped = 0;
  for (const auto& c : t.classes) {
    if (c.name == "enclave.flows.web") web_matched = c.matched;
    if (c.name == "enclave.flows.bulk") bulk_dropped = c.dropped;
  }
  EXPECT_EQ(web_matched, 2u);
  EXPECT_EQ(bulk_dropped, 1u);
}

TEST(EnclaveTelemetryTest, BatchPathAttributesClassesAndFolds) {
  ClassRegistry registry;
  Controller controller(registry);
  Enclave enclave("tele", registry, telemetry_config());
  const ClassId web = registry.intern("enclave.flows.web");
  install_with_rule_in(controller, enclave, "drop_big",
                       "fun(p, m, g) -> if p.size > 1000 then p.drop <- 1 "
                       "else p.priority <- 2",
                       ClassPattern("enclave.flows.*"));
  std::vector<netsim::PacketPtr> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(netsim::make_packet());
    *batch.back() = tcp_packet();
    batch.back()->classes.add(web);
    batch.back()->size_bytes = i < 3 ? 100 : 1500;  // last one drops
  }
  EXPECT_EQ(enclave.process_batch(batch), 3u);
  const EnclaveStats stats = enclave.stats();
  EXPECT_EQ(stats.matched, 4u);
  EXPECT_EQ(stats.dropped_by_action, 1u);
  const telemetry::EnclaveTelemetry t = enclave.telemetry_snapshot();
  ASSERT_EQ(t.classes.size(), 1u);
  EXPECT_EQ(t.classes[0].matched, 4u);
  EXPECT_EQ(t.classes[0].dropped, 1u);
}

TEST(EnclaveTelemetryTest, HistogramsRecordEverySampledExecution) {
  ClassRegistry registry;
  Controller controller(registry);
  Enclave enclave("tele", registry, telemetry_config());
  install_with_rule_in(controller, enclave, "p3",
                       "fun(p, m, g) -> p.priority <- 3", ClassPattern("*"));
  netsim::Packet packet = tcp_packet();
  for (int i = 0; i < 10; ++i) enclave.process(packet);
  const telemetry::EnclaveTelemetry t = enclave.telemetry_snapshot();
  ASSERT_EQ(t.actions.size(), 1u);
  const telemetry::ActionTelemetry& a = t.actions[0];
  EXPECT_TRUE(a.has_histograms);
  EXPECT_EQ(a.latency_ns.count, 10u);  // sample_every = 1: all executions
  EXPECT_EQ(a.steps_hist.count, 10u);
  // Every run of the same program takes the same weighted steps.
  EXPECT_EQ(a.steps_hist.sum, a.steps);
  EXPECT_GT(a.steps, 0u);
}

TEST(EnclaveTelemetryTest, TraceRingSamplesAndWraps) {
  ClassRegistry registry;
  Controller controller(registry);
  Enclave enclave("tele", registry, telemetry_config());  // capacity 4
  const ClassId web = registry.intern("enclave.flows.web");
  install_with_rule_in(controller, enclave, "p3",
                       "fun(p, m, g) -> p.priority <- 3",
                       ClassPattern("enclave.flows.*"));
  netsim::Packet packet = tcp_packet();
  packet.classes.add(web);
  for (int i = 0; i < 10; ++i) enclave.process(packet);
  const telemetry::EnclaveTelemetry t = enclave.telemetry_snapshot();
  EXPECT_EQ(t.trace_sampled, 10u);  // every execution offered and kept
  EXPECT_EQ(t.trace_sample_every, 1u);
  ASSERT_EQ(t.trace.size(), 4u);    // ring keeps the most recent 4
  for (const auto& entry : t.trace) {
    EXPECT_EQ(entry.action, "p3");
    EXPECT_EQ(entry.class_name, "enclave.flows.web");
    EXPECT_EQ(entry.status, "ok");
    EXPECT_GT(entry.steps, 0u);
  }
}

TEST(EnclaveTelemetryTest, ErrorBreakdownSumsByStatus) {
  ClassRegistry registry;
  Controller controller(registry);
  Enclave enclave("tele", registry, telemetry_config());
  const ActionId div0 = install_with_rule_in(
      controller, enclave, "div0",
      "fun(p, m, g) -> p.priority <- 1 / (p.size - p.size)",
      ClassPattern("*"));
  netsim::Packet packet = tcp_packet();
  for (int i = 0; i < 3; ++i) enclave.process(packet);
  const ActionStats stats = enclave.action_stats(div0);
  EXPECT_EQ(stats.errors, 3u);
  std::uint64_t by_status_total = 0;
  for (const std::uint64_t n : stats.errors_by_status) by_status_total += n;
  EXPECT_EQ(by_status_total, stats.errors);
  EXPECT_EQ(stats.errors_by_status[static_cast<std::size_t>(
                lang::ExecStatus::div_by_zero)],
            3u);
}

TEST(EnclaveTelemetryTest, WeightedStepsStableAcrossOptLevels) {
  // Superinstructions charge the cost of the base ops they replace
  // (lang::kOpStepCost), so the steps metric is comparable across
  // optimization levels: the same program charges the same steps at
  // -O0 and -O1 even though -O1 executes fewer instructions.
  const char* source =
      "fun(p, m, g) -> m.size <- m.size + p.size; "
      "p.priority <- m.size / 1000";
  std::uint64_t steps[2] = {0, 0};
  for (int level = 0; level < 2; ++level) {
    ClassRegistry registry;
    Controller controller(registry);
    EnclaveConfig config;
    config.opt_level = level == 0 ? lang::OptLevel::O0 : lang::OptLevel::O1;
    Enclave enclave("opt", registry, config);
    const lang::CompiledProgram program =
        controller.compile("accum", source, {});
    const ActionId action = enclave.install_action("accum", program, {});
    const TableId table = enclave.create_table("t");
    enclave.add_rule(table, ClassPattern("*"), action);
    netsim::Packet packet = tcp_packet();
    for (int i = 0; i < 5; ++i) enclave.process(packet);
    steps[level] = enclave.action_stats(action).steps;
  }
  EXPECT_GT(steps[0], 0u);
  EXPECT_EQ(steps[0], steps[1]);
}

TEST(EnclaveTelemetryTest, ControllerCollectsAndAggregates) {
  ClassRegistry registry;
  Controller controller(registry);
  Enclave a("host0", registry, telemetry_config());
  Enclave b("host1", registry, telemetry_config());
  controller.register_enclave(a);
  controller.register_enclave(b);
  install_with_rule_in(controller, a, "p3",
                       "fun(p, m, g) -> p.priority <- 3", ClassPattern("*"));
  install_with_rule_in(controller, b, "p3",
                       "fun(p, m, g) -> p.priority <- 3", ClassPattern("*"));
  netsim::Packet packet = tcp_packet();
  for (int i = 0; i < 2; ++i) a.process(packet);
  for (int i = 0; i < 3; ++i) b.process(packet);

  const telemetry::AggregateTelemetry agg = controller.collect_telemetry();
  EXPECT_EQ(agg.enclaves.size(), 2u);
  EXPECT_EQ(agg.packets, 5u);
  EXPECT_EQ(agg.matched, 5u);
  ASSERT_EQ(agg.actions.size(), 1u);
  EXPECT_EQ(agg.actions[0].name, "p3");
  EXPECT_EQ(agg.actions[0].executions, 5u);
  EXPECT_EQ(agg.actions[0].latency_ns.count, 5u);
}

}  // namespace
}  // namespace eden::core
