// The controller <-> enclave wire protocol: command round trips, agent
// behaviour, error handling and robustness against corrupt frames.
#include "core/wire.h"

#include <gtest/gtest.h>

#include "core/controller.h"
#include "functions/scheduling.h"
#include "lang/optimizer.h"
#include "telemetry/delta.h"

namespace eden::core::wire {
namespace {

class WireTest : public ::testing::Test {
 protected:
  ClassRegistry registry_;
  Enclave enclave_{"remote", registry_};
  Controller controller_{registry_};
  RemoteEnclave remote_{loopback_transport(enclave_)};
};

TEST_F(WireTest, InstallAndDriveActionRemotely) {
  // The full controller workflow over the wire: compile locally, ship
  // bytecode, create a table, add a rule, configure global state —
  // then verify the remote enclave processes packets accordingly.
  lang::FieldDef cutoff;
  cutoff.name = "cutoff";
  const auto program = controller_.compile(
      "express",
      "fun(p, m, g) -> p.priority <- (if p.size <= g.cutoff then 7 else 1)",
      {{cutoff}});

  Response r = remote_.install_action("express", program, {{cutoff}});
  ASSERT_EQ(r.status, Status::ok);

  r = remote_.create_table("main");
  ASSERT_EQ(r.status, Status::ok);
  const auto table = static_cast<TableId>(r.value);

  ASSERT_EQ(remote_.add_rule(table, "*", "express").status, Status::ok);
  ASSERT_EQ(remote_.set_global_scalar("express", "cutoff", 500).status,
            Status::ok);

  netsim::Packet small;
  small.size_bytes = 100;
  enclave_.process(small);
  EXPECT_EQ(small.priority, 7);

  netsim::Packet big;
  big.size_bytes = 1500;
  enclave_.process(big);
  EXPECT_EQ(big.priority, 1);

  const Response read = remote_.read_global_scalar("express", "cutoff");
  EXPECT_EQ(read.status, Status::ok);
  EXPECT_EQ(read.value, 500u);
}

TEST_F(WireTest, GlobalArrayRoundTrip) {
  const functions::PiasFunction pias;
  const auto fields = pias.global_fields();
  ASSERT_EQ(remote_.install_action("pias", pias.compile(), fields).status,
            Status::ok);
  const std::int64_t data[] = {10240, 7, 1048576, 5};
  EXPECT_EQ(remote_.set_global_array("pias", "priorities", data).status,
            Status::ok);
  // Misaligned record data is rejected by the enclave, reported over
  // the wire.
  const std::int64_t bad[] = {1, 2, 3};
  EXPECT_EQ(remote_.set_global_array("pias", "priorities", bad).status,
            Status::rejected);
}

TEST_F(WireTest, KeyPartitionedFlagSurvivesTheWire) {
  // key_partitioned is what makes an action eligible for key-sharded
  // global serialization; dropping it on the wire would silently
  // de-shard remotely installed actions.
  lang::FieldDef counts;
  counts.name = "counts";
  counts.kind = lang::FieldKind::array;
  counts.access = lang::Access::read_write;
  counts.key_partitioned = true;
  const auto program = controller_.compile(
      "sharded", "fun(p, m, g) -> g.counts[p.msg_id] <- 1", {{counts}});
  ASSERT_EQ(remote_.install_action("sharded", program, {{counts}}).status,
            Status::ok);
  const auto id = enclave_.find_action("sharded");
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(enclave_.action_global_sharded(*id));
}

TEST_F(WireTest, UnknownActionReported) {
  EXPECT_EQ(remote_.set_global_scalar("ghost", "x", 1).status,
            Status::unknown_action);
  EXPECT_EQ(remote_.remove_action("ghost").status, Status::unknown_action);
  EXPECT_EQ(remote_.read_global_scalar("ghost", "x").status,
            Status::unknown_action);
}

TEST_F(WireTest, UnknownTableAndRuleReported) {
  const auto program = controller_.compile("noop", "fun(p, m, g) -> 0", {});
  remote_.install_action("noop", program, {});
  EXPECT_EQ(remote_.add_rule(99, "*", "noop").status, Status::unknown_table);
  EXPECT_EQ(remote_.remove_rule(99, 1).status, Status::unknown_table);
}

TEST_F(WireTest, RemoveActionAndRuleLifecycle) {
  const auto program =
      controller_.compile("p3", "fun(p, m, g) -> p.priority <- 3", {});
  remote_.install_action("p3", program, {});
  const auto table =
      static_cast<TableId>(remote_.create_table("t").value);
  const Response rule = remote_.add_rule(table, "*", "p3");
  ASSERT_EQ(rule.status, Status::ok);
  EXPECT_EQ(remote_.remove_rule(table, rule.value).status, Status::ok);
  EXPECT_EQ(remote_.remove_rule(table, rule.value).status,
            Status::unknown_table);
  EXPECT_EQ(remote_.remove_action("p3").status, Status::ok);
  EXPECT_EQ(remote_.remove_action("p3").status, Status::unknown_action);
}

TEST_F(WireTest, FlowRulesOverTheWire) {
  const auto program = controller_.compile(
      "p6", "fun(p, m, g) -> p.priority <- 6", {});
  remote_.install_action("p6", program, {});
  const auto table = static_cast<TableId>(remote_.create_table("t").value);
  remote_.add_rule(table, "enclave.flows.tcp", "p6");

  FlowClassifierRule rule;
  rule.proto = static_cast<std::int64_t>(netsim::Protocol::tcp);
  const Response r = remote_.add_flow_rule(rule, "enclave.flows.tcp");
  ASSERT_EQ(r.status, Status::ok);

  netsim::Packet packet;
  packet.protocol = netsim::Protocol::tcp;
  packet.size_bytes = 100;
  enclave_.process(packet);
  EXPECT_EQ(packet.priority, 6);

  // Malformed class names are rejected.
  EXPECT_EQ(remote_.add_flow_rule(rule, "not-a-class").status,
            Status::rejected);
}

TEST_F(WireTest, TelemetryPullOverTheWire) {
  const auto program = controller_.compile(
      "p6", "fun(p, m, g) -> p.priority <- 6", {});
  remote_.install_action("p6", program, {});
  const auto table = static_cast<TableId>(remote_.create_table("t").value);
  remote_.add_rule(table, "*", "p6");
  netsim::Packet packet;
  packet.size_bytes = 100;
  enclave_.process(packet);
  enclave_.process(packet);

  const Response r = remote_.get_telemetry();
  ASSERT_EQ(r.status, Status::ok);
  const std::string json = remote_.get_telemetry_json();
  EXPECT_NE(json.find("\"name\":\"remote\""), std::string::npos);
  EXPECT_NE(json.find("\"packets\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p6\""), std::string::npos);
}

TEST_F(WireTest, PreOptimizedProgramInstallsAndRuns) {
  // A controller may optimize before shipping: the fused-opcode program
  // (wire format v2) must survive serialization, install-time
  // verification and execution on the remote enclave.
  const auto o1 = lang::optimize(
      controller_.compile(
          "express",
          "fun(p, m, g) -> p.priority <- (if p.size <= 500 then 7 else 1)",
          {}),
      lang::OptLevel::O1);
  bool has_fused = false;
  for (const auto& instr : o1.code) has_fused |= lang::is_fused_op(instr.op);
  ASSERT_TRUE(has_fused);

  ASSERT_EQ(remote_.install_action("express", o1, {}).status, Status::ok);
  const auto table = static_cast<TableId>(remote_.create_table("t").value);
  ASSERT_EQ(remote_.add_rule(table, "*", "express").status, Status::ok);

  netsim::Packet small;
  small.size_bytes = 100;
  enclave_.process(small);
  EXPECT_EQ(small.priority, 7);

  netsim::Packet big;
  big.size_bytes = 1500;
  enclave_.process(big);
  EXPECT_EQ(big.priority, 1);
}

TEST_F(WireTest, StructurallyInvalidProgramRejected) {
  // Install-time verification runs on the receiving enclave: a program
  // whose branch escapes the code is rejected over the wire, not
  // installed to trap later on the data path.
  lang::CompiledProgram bad;
  bad.code = {{lang::Op::jmp, 1000, 0}, {lang::Op::halt, 0, 0}};
  bad.functions.push_back({"main", 0, 0, 0});
  const Response r = remote_.install_action("bad", bad, {});
  EXPECT_EQ(r.status, Status::rejected);
  EXPECT_FALSE(enclave_.find_action("bad").has_value());
}

TEST_F(WireTest, CorruptFramesNeverThrow) {
  // Every prefix of a valid frame must produce bad_request, not a crash.
  const auto program = controller_.compile("p", "fun(p, m, g) -> 1", {});
  const auto frame = encode_install_action("p", program, {});
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const std::span<const std::uint8_t> prefix(frame.data(), len);
    const Response r = wire::apply(enclave_, prefix);
    EXPECT_NE(r.status, Status::ok) << "prefix length " << len;
  }
  // Flipping the command byte.
  auto bad = frame;
  bad[4] = 0xee;
  EXPECT_EQ(wire::apply(enclave_, bad).status, Status::bad_request);
  // Corrupting the embedded bytecode's magic is caught by the bytecode
  // deserializer and reported as rejected. Layout: wire magic (4) +
  // command (1) + name "p" (4+1) + payload length (4) = 14 bytes before
  // the bytecode magic.
  auto corrupt = frame;
  corrupt[14] ^= 0xff;
  EXPECT_EQ(wire::apply(enclave_, corrupt).status, Status::rejected);
}

TEST_F(WireTest, StageApiOverTheWire) {
  // S0/S1/S2 of Table 3, executed remotely against a memcached-like
  // stage.
  Stage stage("memcached", {"msg_type", "key"}, {"msg_id", "msg_size"},
              registry_);
  RemoteStage remote_stage{loopback_stage_transport(stage)};

  const auto info = remote_stage.get_stage_info();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->name, "memcached");
  EXPECT_EQ(info->classifier_fields,
            (std::vector<std::string>{"msg_type", "key"}));
  EXPECT_EQ(info->meta_fields.size(), 2u);

  const Response rule = remote_stage.create_rule(
      "r1", {FieldPattern::exact("GET"), FieldPattern::any()}, "GET");
  ASSERT_EQ(rule.status, Status::ok);
  EXPECT_EQ(stage.rule_count(), 1u);
  EXPECT_NE(registry_.find("memcached.r1.GET"), kInvalidClass);

  // The installed rule classifies as if created locally.
  const Classification c = stage.classify({"GET", "k"}, {});
  EXPECT_TRUE(c.classes.contains(registry_.find("memcached.r1.GET")));

  EXPECT_EQ(remote_stage.remove_rule("r1", rule.value).status, Status::ok);
  EXPECT_EQ(remote_stage.remove_rule("r1", rule.value).status,
            Status::rejected);
  EXPECT_EQ(stage.rule_count(), 0u);
}

TEST_F(WireTest, StageRejectsBadArity) {
  Stage stage("s", {"one_field"}, {}, registry_);
  RemoteStage remote_stage{loopback_stage_transport(stage)};
  const Response r = remote_stage.create_rule(
      "r1", {FieldPattern::any(), FieldPattern::any()}, "X");
  EXPECT_EQ(r.status, Status::rejected);
}

TEST_F(WireTest, EnclaveCommandsRejectedByStageAgent) {
  Stage stage("s", {"f"}, {}, registry_);
  const Response r = apply_stage(stage, encode_create_table("t"));
  EXPECT_EQ(r.status, Status::bad_request);
}

TEST_F(WireTest, ResponseRoundTrip) {
  Response original;
  original.status = Status::rejected;
  original.value = 424242;
  original.error = "because reasons";
  const Response copy = decode_response(encode_response(original));
  EXPECT_EQ(copy.status, original.status);
  EXPECT_EQ(copy.value, original.value);
  EXPECT_EQ(copy.error, original.error);
}

TEST_F(WireTest, TruncatedResponseDecodesAsBadRequest) {
  const auto frame = encode_response(Response{});
  const std::span<const std::uint8_t> prefix(frame.data(), 3);
  EXPECT_EQ(decode_response(prefix).status, Status::bad_request);
}

TEST_F(WireTest, TransactionCommandsOverTheWire) {
  const auto program =
      controller_.compile("tag", "fun(p, m, g) -> p.priority <- 3", {});

  ASSERT_EQ(remote_.begin_txn().status, Status::ok);
  // A second begin while one is open is rejected, not fatal.
  EXPECT_EQ(remote_.begin_txn().status, Status::rejected);

  ASSERT_EQ(remote_.install_action("tag", program, {}).status, Status::ok);
  ASSERT_EQ(remote_.add_rule_named("t", "*", "tag").status,
            Status::unknown_table);
  ASSERT_EQ(remote_.create_table("t").status, Status::ok);
  ASSERT_EQ(remote_.add_rule_named("t", "*", "tag").status, Status::ok);

  // Staged, not visible: the data path still runs the empty rule set.
  netsim::Packet staged;
  enclave_.process(staged);
  EXPECT_EQ(staged.priority, 0);
  const std::uint64_t before = remote_.get_ruleset_version().value;

  const Response commit = remote_.commit_txn();
  ASSERT_EQ(commit.status, Status::ok);
  EXPECT_GT(commit.value, before);
  EXPECT_EQ(remote_.get_ruleset_version().value, commit.value);

  netsim::Packet committed;
  enclave_.process(committed);
  EXPECT_EQ(committed.priority, 3);

  // Commit without an open transaction is rejected; abort is idempotent.
  EXPECT_EQ(remote_.commit_txn().status, Status::rejected);
  EXPECT_EQ(remote_.abort_txn().status, Status::ok);

  // reset_state wipes everything in one atomic swap.
  ASSERT_EQ(remote_.reset_state().status, Status::ok);
  netsim::Packet after_reset;
  enclave_.process(after_reset);
  EXPECT_EQ(after_reset.priority, 0);
}

TEST_F(WireTest, AbortDropsStagedMutations) {
  const auto program =
      controller_.compile("tag", "fun(p, m, g) -> p.priority <- 3", {});
  ASSERT_EQ(remote_.install_action("tag", program, {}).status, Status::ok);
  const Response table = remote_.create_table("t");
  ASSERT_EQ(table.status, Status::ok);
  ASSERT_EQ(remote_.add_rule(static_cast<TableId>(table.value), "*", "tag")
                .status,
            Status::ok);

  ASSERT_EQ(remote_.begin_txn().status, Status::ok);
  ASSERT_EQ(remote_.reset_state().status, Status::ok);
  ASSERT_EQ(remote_.abort_txn().status, Status::ok);

  // The staged wipe never published.
  netsim::Packet p;
  enclave_.process(p);
  EXPECT_EQ(p.priority, 3);
}

TEST_F(WireTest, RemoveRuleNamedOverTheWire) {
  const auto program =
      controller_.compile("tag", "fun(p, m, g) -> p.priority <- 3", {});
  ASSERT_EQ(remote_.install_action("tag", program, {}).status, Status::ok);
  ASSERT_EQ(remote_.create_table("t").status, Status::ok);
  const Response added = remote_.add_rule_named("t", "*", "tag");
  ASSERT_EQ(added.status, Status::ok);

  EXPECT_EQ(remote_
                .remove_rule_named("t",
                                   static_cast<MatchRuleId>(added.value))
                .status,
            Status::ok);
  EXPECT_EQ(remote_.remove_rule_named("nope", 1).status,
            Status::unknown_table);

  netsim::Packet p;
  enclave_.process(p);
  EXPECT_EQ(p.priority, 0);
}

// Satellite hardening check: a frame for *every* command value survives
// truncation to any prefix and a flip of any single byte without
// throwing or reading past the buffer — errors come back as statuses.
TEST_F(WireTest, EveryCommandSurvivesTruncationAndByteFlips) {
  const auto program = controller_.compile("f", "fun(p, m, g) -> 1", {});
  lang::FieldDef g;
  g.name = "g";
  const std::int64_t arr[] = {1, 2, 3};
  FlowClassifierRule flow;
  flow.dst_port = 80;

  const std::vector<std::vector<std::uint8_t>> frames = {
      encode_install_action("f", program, {{g}}),
      encode_remove_action("f"),
      encode_create_table("t"),
      encode_delete_table(0),
      encode_add_rule(0, "*", "f"),
      encode_remove_rule(0, 1),
      encode_set_global_scalar("f", "g", 7),
      encode_set_global_array("f", "g", arr),
      encode_add_flow_rule(flow, "c.x"),
      encode_clear_flow_rules(),
      encode_read_global_scalar("f", "g"),
      encode_get_telemetry(),
      encode_get_spans(),
      encode_begin_txn(),
      encode_commit_txn(),
      encode_abort_txn(),
      encode_reset_state(),
      encode_add_rule_named("t", "*", "f"),
      encode_remove_rule_named("t", 1),
      encode_get_ruleset_version(),
      encode_get_stage_info(),
      encode_create_stage_rule("rs", {FieldPattern::exact("GET")}, "c",
                               kMetaIdAndSize),
      encode_remove_stage_rule("rs", 1),
  };
  Stage stage("s", {"f"}, {}, registry_);

  for (std::size_t fi = 0; fi < frames.size(); ++fi) {
    const auto& frame = frames[fi];
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const std::span<const std::uint8_t> prefix(frame.data(), len);
      EXPECT_NO_THROW({
        const Response r = wire::apply(enclave_, prefix);
        EXPECT_NE(r.status, Status::ok)
            << "frame " << fi << " prefix " << len;
      });
      EXPECT_NO_THROW(apply_stage(stage, prefix));
    }
    for (std::size_t pos = 0; pos < frame.size(); ++pos) {
      auto mutated = frame;
      mutated[pos] ^= 0xff;
      // A flipped byte may still decode to a valid command; the only
      // requirement is no throw and no out-of-bounds read.
      EXPECT_NO_THROW(wire::apply(enclave_, mutated)) << "frame " << fi
                                                << " flip " << pos;
      EXPECT_NO_THROW(apply_stage(stage, mutated));
    }
  }
}

// Length fields are adversarial inputs: a count implying more elements
// than the frame has bytes must be rejected before any allocation.
TEST_F(WireTest, OversizedCountsRejectedWithoutAllocation) {
  // set_global_array with a huge element count.
  {
    auto frame = encode_set_global_array("f", "g", {});
    // Layout: magic(4) cmd(1) name"f"(4+1) field"g"(4+1) count(4).
    frame[15] = 0xff;
    frame[16] = 0xff;
    frame[17] = 0xff;
    frame[18] = 0x7f;
    const Response r = wire::apply(enclave_, frame);
    EXPECT_EQ(r.status, Status::bad_request);
  }
  // install_action with a huge global-field count.
  {
    const auto program = controller_.compile("f", "fun(p, m, g) -> 1", {});
    auto frame = encode_install_action("f", program, {});
    // Field count is the last u32 of the frame when no fields follow.
    frame[frame.size() - 1] = 0x7f;
    frame[frame.size() - 2] = 0xff;
    frame[frame.size() - 3] = 0xff;
    frame[frame.size() - 4] = 0xff;
    const Response r = wire::apply(enclave_, frame);
    EXPECT_EQ(r.status, Status::bad_request);
  }
}

// --- Streaming delta telemetry (get_telemetry_delta) -------------------

class WireDeltaTest : public ::testing::Test {
 protected:
  void install_and_drive(std::uint64_t packets) {
    const auto program =
        controller_.compile("mark", "fun(p, m, g) -> p.path <- 1", {});
    ASSERT_EQ(remote_.install_action("mark", program, {}).status, Status::ok);
    const Response t = remote_.create_table("main");
    ASSERT_EQ(t.status, Status::ok);
    ASSERT_EQ(remote_.add_rule(static_cast<TableId>(t.value), "*", "mark")
                  .status,
              Status::ok);
    drive(packets);
  }

  void drive(std::uint64_t packets) {
    for (std::uint64_t i = 0; i < packets; ++i) {
      netsim::Packet p;
      p.size_bytes = 100;
      enclave_.process(p);
    }
  }

  telemetry::DeltaPayload fetch(std::uint64_t epoch, std::uint64_t seq) {
    const std::string json = remote_.get_telemetry_delta_json(epoch, seq);
    return telemetry::parse_delta_payload(json);
  }

  ClassRegistry registry_;
  Enclave enclave_{"remote", registry_};
  Controller controller_{registry_};
  TelemetryCursor cursor_;
  RemoteEnclave remote_{loopback_transport(enclave_, cursor_)};
};

TEST_F(WireDeltaTest, SteadyStatePollsShipOnlyChanges) {
  install_and_drive(10);

  // First poll: the cursor has never seen this controller, so the
  // reply is a full snapshot under a fresh epoch.
  const telemetry::DeltaPayload full = fetch(0, 0);
  EXPECT_TRUE(full.full);
  EXPECT_GT(full.epoch, 0u);
  EXPECT_EQ(full.seq, 1u);
  ASSERT_EQ(full.enclaves.size(), 1u);
  EXPECT_EQ(full.enclaves[0].packets, 10u);

  // Echoing (epoch, seq) gets a delta carrying only the new traffic.
  drive(7);
  const telemetry::DeltaPayload d = fetch(full.epoch, full.seq);
  EXPECT_FALSE(d.full);
  EXPECT_EQ(d.epoch, full.epoch);
  EXPECT_EQ(d.seq, full.seq + 1);
  ASSERT_EQ(d.enclaves.size(), 1u);
  EXPECT_EQ(d.enclaves[0].packets, 7u);

  // Quiet interval: the delta is header-only.
  const telemetry::DeltaPayload quiet = fetch(d.epoch, d.seq);
  EXPECT_FALSE(quiet.full);
  EXPECT_TRUE(quiet.enclaves.empty());

  // A DeltaDecoder folding the stream reconstructs the live counters.
  telemetry::DeltaDecoder dec;
  EXPECT_TRUE(dec.apply(full));
  EXPECT_TRUE(dec.apply(d));
  EXPECT_TRUE(dec.apply(quiet));
  ASSERT_EQ(dec.snapshots().size(), 1u);
  EXPECT_EQ(dec.snapshots()[0].packets, 17u);
  EXPECT_EQ(dec.snapshots()[0].packets, enclave_.telemetry_snapshot().packets);
}

TEST_F(WireDeltaTest, StaleEchoForcesFullResync) {
  install_and_drive(5);
  const telemetry::DeltaPayload full = fetch(0, 0);
  ASSERT_TRUE(full.full);

  // The controller echoes a seq the agent never issued (its response
  // was dropped): the cursor cannot prove continuity, so it resyncs
  // under a brand-new epoch.
  const telemetry::DeltaPayload resync = fetch(full.epoch, full.seq + 5);
  EXPECT_TRUE(resync.full);
  EXPECT_NE(resync.epoch, full.epoch);
  EXPECT_EQ(resync.seq, 1u);
  ASSERT_EQ(resync.enclaves.size(), 1u);
  EXPECT_EQ(resync.enclaves[0].packets, 5u);
}

TEST_F(WireDeltaTest, CounterRegressionForcesFullResync) {
  install_and_drive(5);
  const telemetry::DeltaPayload full = fetch(0, 0);
  ASSERT_TRUE(full.full);

  // clear_all wipes action/class counters; a blind diff would go
  // negative, so the cursor detects the regression and falls back to a
  // full snapshot under a new epoch.
  enclave_.clear_all();
  install_and_drive(3);
  const telemetry::DeltaPayload after = fetch(full.epoch, full.seq);
  EXPECT_TRUE(after.full);
  EXPECT_NE(after.epoch, full.epoch);
}

TEST_F(WireDeltaTest, HostSeriesRideTheDeltaStream) {
  double depth = 48;
  cursor_.set_host_series([&]() {
    return std::vector<std::pair<std::string, double>>{
        {"dataplane_ring_depth", depth}};
  });
  install_and_drive(2);

  const telemetry::DeltaPayload full = fetch(0, 0);
  ASSERT_EQ(full.enclaves.size(), 1u);
  ASSERT_EQ(full.enclaves[0].host_series.size(), 1u);
  EXPECT_EQ(full.enclaves[0].host_series[0].second, 48.0);

  // Unchanged gauge: omitted from the delta. Changed: shipped absolute.
  const telemetry::DeltaPayload quiet = fetch(full.epoch, full.seq);
  EXPECT_TRUE(quiet.enclaves.empty());
  depth = 12;
  const telemetry::DeltaPayload moved = fetch(quiet.epoch, quiet.seq);
  ASSERT_EQ(moved.enclaves.size(), 1u);
  ASSERT_EQ(moved.enclaves[0].host_series.size(), 1u);
  EXPECT_EQ(moved.enclaves[0].host_series[0].second, 12.0);
}

TEST_F(WireDeltaTest, CursorlessAgentAnswersWithStatelessFulls) {
  // The 2-arg apply() (no cursor) still answers the command — every
  // poll is a full snapshot under epoch 0, so a decoder never tries to
  // fold deltas against it.
  Enclave bare{"bare", registry_};
  RemoteEnclave remote{loopback_transport(bare)};
  const telemetry::DeltaPayload p =
      telemetry::parse_delta_payload(remote.get_telemetry_delta_json(5, 9));
  EXPECT_TRUE(p.full);
  EXPECT_EQ(p.epoch, 0u);
}

}  // namespace
}  // namespace eden::core::wire
