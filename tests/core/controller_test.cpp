// Controller-side logic: compilation against the enclave schema,
// program distribution, and the control-plane computations (path
// weights, priority thresholds).
#include "core/controller.h"

#include <gtest/gtest.h>

#include "lang/source_loc.h"

namespace eden::core {
namespace {

constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;

TEST(Controller, CompileUsesEnclaveSchema) {
  ClassRegistry registry;
  Controller controller(registry);
  const auto program = controller.compile(
      "t", "fun(p, m, g) -> p.priority <- (if p.size > 1000 then 1 else 7)",
      {});
  EXPECT_EQ(program.concurrency, lang::ConcurrencyMode::parallel);
  EXPECT_EQ(program.source_name, "t");
}

TEST(Controller, CompileRejectsUnknownGlobals) {
  ClassRegistry registry;
  Controller controller(registry);
  EXPECT_THROW(controller.compile("t", "fun(p, m, g) -> g.mystery", {}),
               lang::LangError);
}

TEST(Controller, InstallEverywhereShipsSerializedBytecode) {
  ClassRegistry registry;
  Controller controller(registry);
  Enclave os_enclave("os", registry);     // the OS enclave...
  Enclave nic_enclave("nic", registry);   // ...and the NIC enclave
  controller.register_enclave(os_enclave);
  controller.register_enclave(nic_enclave);

  const auto program =
      controller.compile("p5", "fun(p, m, g) -> p.priority <- 5", {});
  const auto ids = controller.install_everywhere(program, {});
  ASSERT_EQ(ids.size(), 2u);

  // The same bytecode behaves identically on both "platforms".
  for (Enclave* enclave : {&os_enclave, &nic_enclave}) {
    const TableId table = enclave->create_table("t");
    enclave->add_rule(table, ClassPattern("*"),
                      enclave == &os_enclave ? ids[0] : ids[1]);
    netsim::Packet packet;
    packet.size_bytes = 100;
    enclave->process(packet);
    EXPECT_EQ(packet.priority, 5) << enclave->name();
  }
}

TEST(Controller, StageLookupByName) {
  ClassRegistry registry;
  Controller controller(registry);
  Stage stage("s1", {"f"}, {}, registry);
  controller.register_stage(stage);
  EXPECT_EQ(controller.stage("s1"), &stage);
  EXPECT_EQ(controller.stage("nope"), nullptr);
}

TEST(Controller, WeightedPathsProportionalToBottleneck) {
  netsim::Network net;
  auto& h1 = net.add_host("h1");
  auto& h2 = net.add_host("h2");
  auto& a = net.add_switch("a");
  auto& b = net.add_switch("b");
  auto& c = net.add_switch("c");
  auto& d = net.add_switch("d");
  net.connect(h1, a, 20 * kGbps, 0);
  net.connect(a, b, 10 * kGbps, 0);
  net.connect(b, d, 10 * kGbps, 0);
  net.connect(a, c, 1 * kGbps, 0);
  net.connect(c, d, 1 * kGbps, 0);
  net.connect(d, h2, 20 * kGbps, 0);
  netsim::Routing routing(net);
  routing.install_all_paths();

  const auto paths = Controller::weighted_paths(routing, h1.id(), h2.id());
  ASSERT_EQ(paths.size(), 2u);
  std::int64_t total = 0;
  for (const auto& p : paths) total += p.weight;
  EXPECT_EQ(total, kWeightScale);  // exact, including rounding residue
  // 10:1 capacity ratio -> ~909 / ~91.
  EXPECT_NEAR(static_cast<double>(paths[0].weight), 909, 2);
  EXPECT_NEAR(static_cast<double>(paths[1].weight), 91, 2);
}

TEST(Controller, WeightedPathsEmptyWhenDisconnected) {
  netsim::Network net;
  net.add_host("h1");
  net.add_host("h2");
  netsim::Routing routing(net);
  routing.install_all_paths();
  EXPECT_TRUE(Controller::weighted_paths(routing, 0, 1).empty());
}

TEST(Controller, PriorityThresholdsAtQuantiles) {
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t i = 1; i <= 900; ++i) sizes.push_back(i * 100);
  const auto thresholds = Controller::priority_thresholds(sizes, 3);
  ASSERT_EQ(thresholds.size(), 2u);
  // Thresholds near the 1/3 and 2/3 quantiles.
  EXPECT_NEAR(static_cast<double>(thresholds[0]), 30000, 300);
  EXPECT_NEAR(static_cast<double>(thresholds[1]), 60000, 600);
}

TEST(Controller, PriorityThresholdsStrictlyIncreasing) {
  // Heavy duplication would collapse quantiles without the fix-up.
  std::vector<std::uint64_t> sizes(1000, 5000);
  const auto thresholds = Controller::priority_thresholds(sizes, 4);
  ASSERT_EQ(thresholds.size(), 3u);
  EXPECT_LT(thresholds[0], thresholds[1]);
  EXPECT_LT(thresholds[1], thresholds[2]);
}

TEST(Controller, PriorityThresholdsDegenerateInputs) {
  EXPECT_TRUE(Controller::priority_thresholds({}, 3).empty());
  const std::vector<std::uint64_t> one{42};
  EXPECT_TRUE(Controller::priority_thresholds(one, 1).empty());
}

TEST(Controller, CollectTelemetrySkipsAndReportsUnreachableRemotes) {
  ClassRegistry registry;
  Controller controller(registry);
  Enclave local("local", registry);
  controller.register_enclave(local);
  netsim::Packet p;
  p.size_bytes = 100;
  local.process(p);

  // A healthy remote hands back a full dump for another enclave; a dead
  // session replies empty, a confused one replies garbage. The dead ones
  // must be reported, not take down the deployment-wide view.
  Enclave far("far", registry);
  far.process(p);
  far.process(p);
  controller.register_remote({"far",
                              [&far]() {
                                return telemetry::to_json(telemetry::aggregate(
                                    {far.telemetry_snapshot()}));
                              },
                              {}});
  controller.register_remote({"dead", []() { return std::string{}; }, {}});
  controller.register_remote(
      {"garbled", []() { return std::string{"{]not json"}; }, {}});

  std::vector<std::string> unreachable;
  const telemetry::AggregateTelemetry agg =
      controller.collect_telemetry(&unreachable);
  ASSERT_EQ(unreachable.size(), 2u);
  EXPECT_EQ(unreachable[0], "dead");
  EXPECT_EQ(unreachable[1], "garbled");
  ASSERT_EQ(agg.enclaves.size(), 2u);
  EXPECT_EQ(agg.enclaves[0].enclave, "local");
  EXPECT_EQ(agg.enclaves[1].enclave, "far");
  EXPECT_EQ(agg.packets, 3u);  // 1 local + 2 merged from the remote
}

TEST(Controller, CollectSpansReportsUnreachableRemotes) {
  ClassRegistry registry;
  Controller controller(registry);
  controller.register_remote({"mute", {}, []() { return std::string{}; }});

  std::vector<std::string> unreachable;
  const std::string trace = controller.collect_spans_json(&unreachable);
  EXPECT_NE(trace.find("traceEvents"), std::string::npos);
  ASSERT_EQ(unreachable.size(), 1u);
  EXPECT_EQ(unreachable[0], "mute");
}

TEST(Controller, CollectSpansCapsPerAgentAndMarksTruncation) {
  ClassRegistry registry;
  Controller controller(registry);
  // A remote whose trace dump holds five events, one with braces and a
  // bracket inside a string to try to confuse the scanner.
  const std::string remote_dump =
      R"({"traceEvents":[{"name":"a","args":{"x":1}},)"
      R"({"name":"b{}]tricky"},{"name":"c"},{"name":"d"},{"name":"e"}]})";
  controller.register_remote(
      {"busy", {}, [remote_dump]() { return remote_dump; }});

  std::vector<std::string> unreachable;
  const std::string capped =
      controller.collect_spans_json(&unreachable, /*max_spans_per_agent=*/2);
  EXPECT_TRUE(unreachable.empty());
  EXPECT_NE(capped.find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(capped.find("b{}]tricky"), std::string::npos);
  EXPECT_EQ(capped.find("\"name\":\"c\""), std::string::npos);
  EXPECT_EQ(capped.find("\"name\":\"e\""), std::string::npos);
  EXPECT_NE(capped.find("\"truncated\":true"), std::string::npos);

  // A cap wider than the dump keeps everything and adds no marker.
  const std::string uncapped =
      controller.collect_spans_json(&unreachable, /*max_spans_per_agent=*/50);
  EXPECT_NE(uncapped.find("\"name\":\"e\""), std::string::npos);
  EXPECT_EQ(uncapped.find("\"truncated\""), std::string::npos);
}

}  // namespace
}  // namespace eden::core
