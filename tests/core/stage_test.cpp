// The stage API (Table 3) and classification semantics (Figure 6).
#include "core/stage.h"

#include <gtest/gtest.h>

#include "apps/memcached_stage.h"

namespace eden::core {
namespace {

class StageTest : public ::testing::Test {
 protected:
  ClassRegistry registry_;
  apps::MemcachedStage stage_{registry_};
};

TEST_F(StageTest, GetStageInfoDescribesCapabilities) {
  const StageInfo info = stage_.get_stage_info();
  EXPECT_EQ(info.name, "memcached");
  EXPECT_EQ(info.classifier_fields,
            (std::vector<std::string>{"msg_type", "key"}));
  EXPECT_EQ(info.meta_fields.size(), 4u);
}

TEST_F(StageTest, CreateRuleInternsQualifiedClass) {
  stage_.create_rule("r1",
                     {FieldPattern::exact("GET"), FieldPattern::any()},
                     "GET");
  EXPECT_NE(registry_.find("memcached.r1.GET"), kInvalidClass);
  EXPECT_EQ(stage_.rule_count(), 1u);
}

TEST_F(StageTest, ClassifierArityChecked) {
  EXPECT_THROW(stage_.create_rule("r1", {FieldPattern::any()}, "X"),
               std::invalid_argument);
}

TEST_F(StageTest, RemoveRule) {
  const RuleId id = stage_.create_rule(
      "r1", {FieldPattern::exact("GET"), FieldPattern::any()}, "GET");
  EXPECT_TRUE(stage_.remove_rule("r1", id));
  EXPECT_FALSE(stage_.remove_rule("r1", id));  // already gone
  EXPECT_FALSE(stage_.remove_rule("nope", 1));
  EXPECT_EQ(stage_.rule_count(), 0u);
}

// Figure 6's rule-sets: r1 (GET/PUT), r2 (DEFAULT catch-all), r3
// (key-specific).
class Figure6Rules : public StageTest {
 protected:
  void SetUp() override {
    stage_.create_rule("r1", {FieldPattern::exact("GET"), FieldPattern::any()},
                       "GET");
    stage_.create_rule("r1", {FieldPattern::exact("PUT"), FieldPattern::any()},
                       "PUT");
    stage_.create_rule("r2", {FieldPattern::any(), FieldPattern::any()},
                       "DEFAULT");
    stage_.create_rule("r3", {FieldPattern::exact("GET"),
                              FieldPattern::exact("a")},
                       "GETA");
    stage_.create_rule("r3", {FieldPattern::any(), FieldPattern::exact("a")},
                       "A");
    stage_.create_rule("r3", {FieldPattern::any(), FieldPattern::any()},
                       "OTHER");
  }

  bool has_class(const Classification& c, const std::string& full) const {
    const ClassId id = registry_.find(full);
    return id != kInvalidClass && c.classes.contains(id);
  }
};

TEST_F(Figure6Rules, PutForKeyAGetsThreeClasses) {
  // The paper: a PUT for key "a" belongs to memcached.r1.PUT,
  // memcached.r2.DEFAULT and memcached.r3.A.
  const Classification c = stage_.classify({"PUT", "a"}, {});
  EXPECT_EQ(c.classes.size(), 3u);
  EXPECT_TRUE(has_class(c, "memcached.r1.PUT"));
  EXPECT_TRUE(has_class(c, "memcached.r2.DEFAULT"));
  EXPECT_TRUE(has_class(c, "memcached.r3.A"));
}

TEST_F(Figure6Rules, GetForKeyAMatchesMostSpecificInR3) {
  const Classification c = stage_.classify({"GET", "a"}, {});
  EXPECT_TRUE(has_class(c, "memcached.r1.GET"));
  EXPECT_TRUE(has_class(c, "memcached.r3.GETA"));
  // At most one class per rule-set: GETA matched first, so not A/OTHER.
  EXPECT_FALSE(has_class(c, "memcached.r3.A"));
  EXPECT_FALSE(has_class(c, "memcached.r3.OTHER"));
}

TEST_F(Figure6Rules, UnknownTypeStillGetsDefaults) {
  const Classification c = stage_.classify({"FLUSH", "zz"}, {});
  EXPECT_FALSE(has_class(c, "memcached.r1.GET"));
  EXPECT_FALSE(has_class(c, "memcached.r1.PUT"));
  EXPECT_TRUE(has_class(c, "memcached.r2.DEFAULT"));
  EXPECT_TRUE(has_class(c, "memcached.r3.OTHER"));
}

TEST_F(Figure6Rules, AssignsFreshMessageIds) {
  const Classification c1 = stage_.classify({"GET", "a"}, {});
  const Classification c2 = stage_.classify({"GET", "a"}, {});
  EXPECT_NE(c1.meta.msg_id, 0);
  EXPECT_NE(c1.meta.msg_id, c2.meta.msg_id);
}

TEST_F(Figure6Rules, KeepsCallerProvidedMessageId) {
  netsim::PacketMeta available;
  available.msg_id = 4242;
  const Classification c = stage_.classify({"GET", "a"}, available);
  EXPECT_EQ(c.meta.msg_id, 4242);
}

TEST_F(StageTest, MetaMaskFiltersFields) {
  stage_.create_rule("r1", {FieldPattern::any(), FieldPattern::any()}, "ALL",
                     meta_bit(MetaField::msg_id));
  netsim::PacketMeta available;
  available.msg_type = 7;
  available.msg_size = 999;
  available.tenant = 3;
  const Classification c = stage_.classify({"GET", "k"}, available);
  EXPECT_NE(c.meta.msg_id, 0);     // requested
  EXPECT_EQ(c.meta.msg_type, 0);   // masked out
  EXPECT_EQ(c.meta.msg_size, 0);
  EXPECT_EQ(c.meta.tenant, 0);
}

TEST_F(StageTest, FullMaskCopiesEverything) {
  stage_.create_rule("r1", {FieldPattern::any(), FieldPattern::any()}, "ALL",
                     kMetaAll);
  netsim::PacketMeta available;
  available.msg_type = 7;
  available.msg_size = 999;
  available.tenant = 3;
  available.key_hash = 11;
  available.flow_size = 1234;
  available.app_priority = 6;
  const Classification c = stage_.classify({"GET", "k"}, available);
  EXPECT_EQ(c.meta.msg_type, 7);
  EXPECT_EQ(c.meta.msg_size, 999);
  EXPECT_EQ(c.meta.tenant, 3);
  EXPECT_EQ(c.meta.key_hash, 11);
  EXPECT_EQ(c.meta.flow_size, 1234);
  EXPECT_EQ(c.meta.app_priority, 6);
}

TEST_F(StageTest, NoRulesMeansNoClasses) {
  const Classification c = stage_.classify({"GET", "a"}, {});
  EXPECT_EQ(c.classes.size(), 0u);
  EXPECT_EQ(c.meta.msg_id, 0);
}

TEST(MemcachedStageHelpers, KeyHashIsStableAndNonNegative) {
  const std::int64_t h1 = apps::MemcachedStage::key_hash("user:17");
  EXPECT_EQ(h1, apps::MemcachedStage::key_hash("user:17"));
  EXPECT_NE(h1, apps::MemcachedStage::key_hash("user:18"));
  EXPECT_GE(h1, 0);
  EXPECT_GE(apps::MemcachedStage::key_hash(""), 0);
}

}  // namespace
}  // namespace eden::core
