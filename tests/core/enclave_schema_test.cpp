// Packet <-> state-block marshalling and the canonical schema layout.
#include "core/enclave_schema.h"

#include <gtest/gtest.h>

namespace eden::core {
namespace {

TEST(EnclaveSchema, SlotConstantsMatchSchemaOrder) {
  const lang::StateSchema schema = make_enclave_schema();
  EXPECT_EQ(schema.find(lang::Scope::packet, "size")->slot, PacketSlot::size);
  EXPECT_EQ(schema.find(lang::Scope::packet, "priority")->slot,
            PacketSlot::priority);
  EXPECT_EQ(schema.find(lang::Scope::packet, "app_priority")->slot,
            PacketSlot::app_priority);
  EXPECT_EQ(schema.scalar_count(lang::Scope::packet), PacketSlot::count_);
  EXPECT_EQ(schema.find(lang::Scope::message, "size")->slot,
            MessageSlot::size);
  EXPECT_EQ(schema.find(lang::Scope::message, "state3")->slot,
            MessageSlot::state3);
  EXPECT_EQ(schema.scalar_count(lang::Scope::message), MessageSlot::count_);
}

TEST(EnclaveSchema, HeaderMappingsPresent) {
  const lang::StateSchema schema = make_enclave_schema();
  EXPECT_EQ(schema.field_def(lang::Scope::packet, "priority")->header_map,
            "802.1q.pcp");
  EXPECT_EQ(schema.field_def(lang::Scope::packet, "path")->header_map,
            "802.1q.vid");
  EXPECT_EQ(schema.field_def(lang::Scope::packet, "size")->header_map,
            "ipv4.total_length");
}

TEST(EnclaveSchema, ReadOnlyFieldsCannotBeWrittenByPrograms) {
  const lang::StateSchema schema = make_enclave_schema();
  for (const char* field : {"size", "src", "dst", "msg_id", "tenant"}) {
    EXPECT_EQ(schema.find(lang::Scope::packet, field)->access,
              lang::Access::read_only)
        << field;
  }
  for (const char* field : {"priority", "path", "queue", "drop", "charge"}) {
    EXPECT_EQ(schema.find(lang::Scope::packet, field)->access,
              lang::Access::read_write)
        << field;
  }
}

TEST(EnclaveSchema, GlobalFieldsAppended) {
  lang::FieldDef f;
  f.name = "custom";
  f.access = lang::Access::read_write;
  const lang::StateSchema schema = make_enclave_schema({f});
  EXPECT_TRUE(schema.find(lang::Scope::global, "custom").has_value());
  EXPECT_EQ(schema.scalar_count(lang::Scope::global), 1u);
}

TEST(Marshalling, LoadCopiesEveryField) {
  const lang::StateSchema schema = make_enclave_schema();
  lang::StateBlock block =
      lang::StateBlock::from_schema(schema, lang::Scope::packet);
  netsim::Packet p;
  p.size_bytes = 1514;
  p.payload_bytes = 1460;
  p.priority = 3;
  p.path_label = 9;
  p.rl_queue = 2;
  p.drop_mark = true;
  p.charge_bytes = 777;
  p.src = 10;
  p.dst = 20;
  p.src_port = 30;
  p.dst_port = 40;
  p.protocol = netsim::Protocol::storage;
  p.seq = 123456;
  p.meta.msg_id = 1;
  p.meta.msg_type = 2;
  p.meta.msg_size = 3;
  p.meta.tenant = 4;
  p.meta.key_hash = 5;
  p.meta.flow_size = 6;
  p.meta.app_priority = 7;

  load_packet_state(p, block);
  EXPECT_EQ(block.scalars[PacketSlot::size], 1514);
  EXPECT_EQ(block.scalars[PacketSlot::payload], 1460);
  EXPECT_EQ(block.scalars[PacketSlot::priority], 3);
  EXPECT_EQ(block.scalars[PacketSlot::path], 9);
  EXPECT_EQ(block.scalars[PacketSlot::queue], 2);
  EXPECT_EQ(block.scalars[PacketSlot::drop], 1);
  EXPECT_EQ(block.scalars[PacketSlot::charge], 777);
  EXPECT_EQ(block.scalars[PacketSlot::src], 10);
  EXPECT_EQ(block.scalars[PacketSlot::dst], 20);
  EXPECT_EQ(block.scalars[PacketSlot::src_port], 30);
  EXPECT_EQ(block.scalars[PacketSlot::dst_port], 40);
  EXPECT_EQ(block.scalars[PacketSlot::proto], 2);
  EXPECT_EQ(block.scalars[PacketSlot::seq], 123456);
  EXPECT_EQ(block.scalars[PacketSlot::msg_id], 1);
  EXPECT_EQ(block.scalars[PacketSlot::app_priority], 7);
}

TEST(Marshalling, StoreWritesBackOnlyWritableFields) {
  const lang::StateSchema schema = make_enclave_schema();
  lang::StateBlock block =
      lang::StateBlock::from_schema(schema, lang::Scope::packet);
  netsim::Packet p;
  p.size_bytes = 1514;
  load_packet_state(p, block);

  block.scalars[PacketSlot::priority] = 6;
  block.scalars[PacketSlot::path] = 44;
  block.scalars[PacketSlot::queue] = 1;
  block.scalars[PacketSlot::drop] = 1;
  block.scalars[PacketSlot::charge] = 999;
  block.scalars[PacketSlot::size] = 7;  // RO fields never write back

  store_packet_state(block, p);
  EXPECT_EQ(p.priority, 6);
  EXPECT_EQ(p.path_label, 44);
  EXPECT_EQ(p.rl_queue, 1);
  EXPECT_TRUE(p.drop_mark);
  EXPECT_EQ(p.charge_bytes, 999u);
  EXPECT_EQ(p.size_bytes, 1514u);  // untouched
}

TEST(Marshalling, StoreClampsPriorityAndNegativeCharge) {
  const lang::StateSchema schema = make_enclave_schema();
  lang::StateBlock block =
      lang::StateBlock::from_schema(schema, lang::Scope::packet);
  netsim::Packet p;
  load_packet_state(p, block);
  block.scalars[PacketSlot::priority] = -5;
  block.scalars[PacketSlot::charge] = -100;
  store_packet_state(block, p);
  EXPECT_EQ(p.priority, 0);
  EXPECT_EQ(p.charge_bytes, 0u);

  block.scalars[PacketSlot::priority] = 200;
  store_packet_state(block, p);
  EXPECT_EQ(p.priority, netsim::kMaxPriorities - 1);
}

TEST(Marshalling, MessageInitSeedsFromFirstPacket) {
  const lang::StateSchema schema = make_enclave_schema();
  lang::StateBlock block =
      lang::StateBlock::from_schema(schema, lang::Scope::message);
  netsim::Packet p;
  p.meta.app_priority = 0;  // background pin
  init_message_state(p, block);
  EXPECT_EQ(block.scalars[MessageSlot::size], 0);
  EXPECT_EQ(block.scalars[MessageSlot::priority], 0);
  EXPECT_EQ(block.scalars[MessageSlot::path], -1);
}

}  // namespace
}  // namespace eden::core
