#include "core/class_name.h"

#include <gtest/gtest.h>

#include "netsim/packet.h"

namespace eden::core {
namespace {

TEST(ParseClassName, AcceptsFullyQualifiedNames) {
  const auto name = parse_class_name("memcached.r1.GET");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->stage, "memcached");
  EXPECT_EQ(name->rule_set, "r1");
  EXPECT_EQ(name->class_name, "GET");
  EXPECT_EQ(name->full(), "memcached.r1.GET");
}

TEST(ParseClassName, RejectsMalformedNames) {
  EXPECT_FALSE(parse_class_name("").has_value());
  EXPECT_FALSE(parse_class_name("a").has_value());
  EXPECT_FALSE(parse_class_name("a.b").has_value());
  EXPECT_FALSE(parse_class_name("a.b.c.d").has_value());
  EXPECT_FALSE(parse_class_name("a..c").has_value());
  EXPECT_FALSE(parse_class_name(".b.c").has_value());
  EXPECT_FALSE(parse_class_name("a.b.").has_value());
}

TEST(ClassRegistry, InternsToStableIds) {
  ClassRegistry reg;
  const ClassId get = reg.intern("memcached.r1.GET");
  const ClassId put = reg.intern("memcached.r1.PUT");
  EXPECT_NE(get, put);
  EXPECT_EQ(reg.intern("memcached.r1.GET"), get);  // idempotent
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.name(get).class_name, "GET");
}

TEST(ClassRegistry, FindDoesNotIntern) {
  ClassRegistry reg;
  EXPECT_EQ(reg.find("a.b.c"), kInvalidClass);
  EXPECT_EQ(reg.size(), 0u);
  const ClassId id = reg.intern("a.b.c");
  EXPECT_EQ(reg.find("a.b.c"), id);
}

TEST(ClassRegistry, InternRejectsMalformed) {
  ClassRegistry reg;
  EXPECT_THROW(reg.intern("oops"), std::invalid_argument);
}

TEST(ClassPattern, ExactMatch) {
  ClassRegistry reg;
  const ClassId get = reg.intern("memcached.r1.GET");
  const ClassId put = reg.intern("memcached.r1.PUT");
  const ClassPattern pattern("memcached.r1.GET");
  EXPECT_TRUE(pattern.matches(get, reg));
  EXPECT_FALSE(pattern.matches(put, reg));
  EXPECT_FALSE(pattern.match_any());
}

TEST(ClassPattern, WildcardComponents) {
  ClassRegistry reg;
  const ClassId mc_get = reg.intern("memcached.r1.GET");
  const ClassId mc_put = reg.intern("memcached.r1.PUT");
  const ClassId mc_r3 = reg.intern("memcached.r3.GETA");
  const ClassId http = reg.intern("http.r1.REQ");

  const ClassPattern stage_wild("*.r1.GET");
  EXPECT_TRUE(stage_wild.matches(mc_get, reg));
  EXPECT_FALSE(stage_wild.matches(http, reg));

  const ClassPattern class_wild("memcached.r1.*");
  EXPECT_TRUE(class_wild.matches(mc_get, reg));
  EXPECT_TRUE(class_wild.matches(mc_put, reg));
  EXPECT_FALSE(class_wild.matches(mc_r3, reg));

  const ClassPattern ruleset_wild("memcached.*.*");
  EXPECT_TRUE(ruleset_wild.matches(mc_r3, reg));
  EXPECT_FALSE(ruleset_wild.matches(http, reg));
}

TEST(ClassPattern, MatchAnyMatchesEverything) {
  ClassRegistry reg;
  const ClassId id = reg.intern("a.b.c");
  const ClassPattern any("*");
  EXPECT_TRUE(any.match_any());
  EXPECT_TRUE(any.matches(id, reg));
}

TEST(ClassPattern, UnknownIdNeverMatches) {
  ClassRegistry reg;
  const ClassPattern pattern("a.b.c");
  EXPECT_FALSE(pattern.matches(12345, reg));
}

TEST(ClassPattern, MalformedPatternThrows) {
  EXPECT_THROW(ClassPattern("two.parts"), std::invalid_argument);
  EXPECT_THROW(ClassPattern(""), std::invalid_argument);
}

TEST(ClassList, BoundedCapacity) {
  netsim::ClassList list;
  for (std::uint32_t i = 0; i < netsim::ClassList::kCapacity; ++i) {
    EXPECT_TRUE(list.add(i));
  }
  EXPECT_FALSE(list.add(99));  // full
  EXPECT_EQ(list.size(), netsim::ClassList::kCapacity);
  EXPECT_TRUE(list.contains(0));
  EXPECT_FALSE(list.contains(99));
  list.clear();
  EXPECT_EQ(list.size(), 0u);
}

}  // namespace
}  // namespace eden::core
