// The storage substrate: server admission/service, client windows,
// reject/retry, and the IO asymmetry that drives Figure 11.
#include "storage/storage.h"

#include <gtest/gtest.h>

#include "experiments/testbed.h"

namespace eden::storage {
namespace {

constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    client_node_ = &bed_.add_host("client");
    server_node_ = &bed_.add_host("server");
    auto& sw = bed_.add_switch("sw");
    bed_.connect(*client_node_, sw, 10 * kGbps, 1000);
    bed_.connect(*server_node_, sw, 1 * kGbps, 1000);
    bed_.routing().install_dest_routes();
    bed_.finalize();
    client_host_ = bed_.host_by_name("client");
    server_host_ = bed_.host_by_name("server");
  }

  experiments::Testbed bed_;
  netsim::HostNode* client_node_ = nullptr;
  netsim::HostNode* server_node_ = nullptr;
  experiments::TestHost* client_host_ = nullptr;
  experiments::TestHost* server_host_ = nullptr;
};

TEST_F(StorageTest, ReadsCompleteEndToEnd) {
  StorageServer server(bed_.network(), *server_host_->stack);
  StorageClientConfig cfg;
  cfg.tenant = 1;
  cfg.kind = kIoRead;
  cfg.io_bytes = 64 * 1024;
  cfg.window = 4;
  cfg.server = server_node_->id();
  StorageClient client(bed_.network(), *client_host_->stack, cfg);
  client.start();
  bed_.run_for(200 * netsim::kMillisecond);
  EXPECT_GT(client.completed_ios(), 10u);
  // Responses of the last few served IOs may still be in flight.
  EXPECT_GE(server.served_reads(), client.completed_ios());
  EXPECT_LE(server.served_reads(), client.completed_ios() + 16);
  EXPECT_EQ(server.served_writes(), 0u);
}

TEST_F(StorageTest, WritesCompleteEndToEnd) {
  StorageServer server(bed_.network(), *server_host_->stack);
  StorageClientConfig cfg;
  cfg.tenant = 2;
  cfg.kind = kIoWrite;
  cfg.io_bytes = 64 * 1024;
  cfg.window = 4;
  cfg.server = server_node_->id();
  StorageClient client(bed_.network(), *client_host_->stack, cfg);
  client.start();
  bed_.run_for(200 * netsim::kMillisecond);
  EXPECT_GT(client.completed_ios(), 10u);
  EXPECT_GE(server.served_writes(), client.completed_ios());
}

TEST_F(StorageTest, ReadThroughputBoundedByServerLink) {
  StorageServer server(bed_.network(), *server_host_->stack);
  StorageClientConfig cfg;
  cfg.kind = kIoRead;
  cfg.io_bytes = 64 * 1024;
  cfg.window = 32;
  cfg.server = server_node_->id();
  StorageClient client(bed_.network(), *client_host_->stack, cfg);
  client.start();
  bed_.run_for(netsim::kSecond);
  const double mbps =
      client.throughput_mbps(200 * netsim::kMillisecond, netsim::kSecond);
  // 1 Gbps link = 125 MB/s ceiling; expect to get most of it but never
  // exceed it.
  EXPECT_GT(mbps, 80.0);
  EXPECT_LE(mbps, 126.0);
}

TEST_F(StorageTest, BoundedQueueRejectsFloods) {
  StorageServerConfig server_cfg;
  server_cfg.queue_limit = 4;
  server_cfg.disk_rate_bps = 100 * 1000 * 1000;  // slow disk
  StorageServer server(bed_.network(), *server_host_->stack, server_cfg);
  StorageClientConfig cfg;
  cfg.kind = kIoRead;
  cfg.io_bytes = 64 * 1024;
  cfg.window = 64;  // way beyond the queue
  cfg.server = server_node_->id();
  StorageClient client(bed_.network(), *client_host_->stack, cfg);
  client.start();
  bed_.run_for(300 * netsim::kMillisecond);
  EXPECT_GT(server.rejected(), 0u);
  EXPECT_GT(client.rejections_seen(), 0u);
  EXPECT_GT(client.completed_ios(), 0u);  // retries eventually succeed
}

TEST_F(StorageTest, WindowLimitsOutstanding) {
  StorageServerConfig server_cfg;
  server_cfg.queue_limit = 1000;
  StorageServer server(bed_.network(), *server_host_->stack, server_cfg);
  StorageClientConfig cfg;
  cfg.kind = kIoRead;
  cfg.io_bytes = 64 * 1024;
  cfg.window = 2;
  cfg.server = server_node_->id();
  StorageClient client(bed_.network(), *client_host_->stack, cfg);
  client.start();
  bed_.run_for(50 * netsim::kMillisecond);
  // With a window of 2 the queue can never hold more than 2 of this
  // client's IOs.
  EXPECT_LE(server.queue_depth(), 2u);
}

TEST_F(StorageTest, ThroughputWindowingIsAccurate) {
  StorageServer server(bed_.network(), *server_host_->stack);
  StorageClientConfig cfg;
  cfg.kind = kIoRead;
  cfg.io_bytes = 64 * 1024;
  cfg.window = 8;
  cfg.server = server_node_->id();
  StorageClient client(bed_.network(), *client_host_->stack, cfg);
  client.start();
  bed_.run_for(400 * netsim::kMillisecond);
  // Empty window -> zero; before-start window -> zero.
  EXPECT_EQ(client.throughput_mbps(100, 100), 0.0);
  EXPECT_GT(client.throughput_mbps(0, 400 * netsim::kMillisecond), 0.0);
}

TEST_F(StorageTest, StageClassifiesOps) {
  StorageClientConfig cfg;
  cfg.kind = kIoRead;
  cfg.server = server_node_->id();
  StorageClient client(bed_.network(), *client_host_->stack, cfg);
  core::ClassRegistry& registry = client_host_->enclave->registry();
  EXPECT_NE(registry.find("storage.ops.READ"), core::kInvalidClass);
  EXPECT_NE(registry.find("storage.ops.WRITE"), core::kInvalidClass);
}

}  // namespace
}  // namespace eden::storage
