// Differential testing: the compiler + bytecode interpreter must agree
// with the reference AST evaluator on every program and input. This is
// the strongest correctness check on the toolchain — any divergence is
// a compiler or interpreter bug.
#include "lang/ast_eval.h"

#include <gtest/gtest.h>

#include "core/enclave_schema.h"
#include "functions/registry.h"
#include "lang/compiler.h"
#include "lang/parser.h"
#include "tests/lang/test_schemas.h"

namespace eden::lang {
namespace {

// Runs a source program through both engines against identical state
// and verifies status, result value and all post-state agree.
struct DiffResult {
  ExecStatus status;
  std::int64_t value;
};

DiffResult run_both(std::string_view source, const StateSchema& schema,
                    StateBlock pkt, StateBlock msg, StateBlock glb,
                    std::uint64_t seed = 7,
                    const CompileOptions& copts = {}) {
  const Program ast = parse(source);
  const CompiledProgram program = compile(ast, schema, copts);

  StateBlock bc_pkt = pkt, bc_msg = msg, bc_glb = glb;
  Interpreter interp(ExecLimits{}, seed);
  const ExecResult bc = interp.execute(program, &bc_pkt, &bc_msg, &bc_glb);

  StateBlock ref_pkt = std::move(pkt), ref_msg = std::move(msg),
             ref_glb = std::move(glb);
  util::Rng rng(seed);
  const ExecResult ref =
      ast_eval(ast, schema, &ref_pkt, &ref_msg, &ref_glb, rng);

  EXPECT_EQ(bc.status, ref.status) << source;
  if (bc.status == ExecStatus::ok && ref.status == ExecStatus::ok) {
    EXPECT_EQ(bc.value, ref.value) << source;
    EXPECT_EQ(bc_pkt.scalars, ref_pkt.scalars) << source;
    EXPECT_EQ(bc_msg.scalars, ref_msg.scalars) << source;
    EXPECT_EQ(bc_glb.scalars, ref_glb.scalars) << source;
    for (std::size_t i = 0; i < bc_glb.arrays.size(); ++i) {
      EXPECT_EQ(bc_glb.arrays[i].data, ref_glb.arrays[i].data) << source;
    }
  }
  return DiffResult{bc.status, bc.value};
}

DiffResult run_both_empty(std::string_view source) {
  StateSchema schema;
  return run_both(source, schema, StateBlock{}, StateBlock{}, StateBlock{});
}

TEST(AstEvalDiff, PureExpressionCorpus) {
  const char* corpus[] = {
      "fun(p) -> 0",
      "fun(p) -> 1 + 2 * 3 - 4 / 2 % 3",
      "fun(p) -> (1 + 2) * (3 - 4)",
      "fun(p) -> -9223372036854775807 - 1",
      "fun(p) -> 9223372036854775807 + 1",  // wraps identically
      "fun(p) -> 1 < 2 && 3 >= 3 || not true",
      "fun(p) -> if 2 > 1 then 10 elif 1 > 2 then 20 else 30",
      "fun(p) -> let x = 5 in let y = x * x in y - x",
      "fun(p) -> let x = 1 in (x <- x + 1; x <- x * 10; x)",
      "fun(p) -> let i = 0 in let s = 0 in "
      "(while i < 25 do s <- s + i * i; i <- i + 1 done; s)",
      "fun(p) -> let f(a, b) = a * 10 + b in f(f(1, 2), 3)",
      "fun(p) -> let rec fib(n) = if n < 2 then n else fib(n-1) + fib(n-2) "
      "in fib(12)",
      "fun(p) -> let rec gcd(a, b) = if b = 0 then a else gcd(b, a % b) in "
      "gcd(252, 105)",
      "fun(p) -> let k = 3 in let addk(x) = x + k in addk(addk(addk(0)))",
      "fun(p) -> let a = 2 in let f(x) = x * a in let a = 100 in f(1) + a",
      "fun(p) -> min(3, max(1, 2)) + abs(0 - 7)",
      "fun(p) -> (1; 2; 3; 4)",
      "fun(p) -> let u = (if false then 1) in u",
      "fun(p) -> true && 7",
  };
  for (const char* source : corpus) {
    SCOPED_TRACE(source);
    run_both_empty(source);
  }
}

TEST(AstEvalDiff, TrapCorpusAgreesOnStatus) {
  struct Case {
    const char* source;
    ExecStatus expected;
  };
  const Case corpus[] = {
      {"fun(p) -> 1 / 0", ExecStatus::div_by_zero},
      {"fun(p) -> 5 % (3 - 3)", ExecStatus::div_by_zero},
      {"fun(p) -> rand(0)", ExecStatus::bad_rand_bound},
      {"fun(p) -> let rec f(n) = 1 + f(n + 1) in f(0)",
       ExecStatus::call_depth_exceeded},
  };
  for (const Case& c : corpus) {
    SCOPED_TRACE(c.source);
    const DiffResult r = run_both_empty(c.source);
    EXPECT_EQ(r.status, c.expected);
  }
}

TEST(AstEvalDiff, StatefulCorpus) {
  const StateSchema schema = testing::pias_schema();
  auto pkt = StateBlock::from_schema(schema, Scope::packet);
  auto msg = StateBlock::from_schema(schema, Scope::message);
  auto glb = StateBlock::from_schema(schema, Scope::global);
  pkt.scalars[0] = 1460;  // size
  msg.scalars[0] = 9000;  // msg.size
  msg.scalars[1] = 1;     // msg.priority
  glb.arrays[0].stride = 2;
  glb.arrays[0].data = {10240, 7, 1048576, 5};

  const char* corpus[] = {
      testing::kPiasSource,
      "fun(p, m, g) -> m.size <- m.size + p.size; m.size",
      "fun(p, m, g) -> p.priority <- g.priorities[1].priority",
      "fun(p, m, g) -> len(g.priorities) + g.priorities.length",
      "fun(p, m, g) -> let t = g.priorities in t[0].limit + t[1].priority",
      "fun(p, m, g) -> if m.size > 8000 then (p.priority <- 5; 1) else 0",
  };
  for (const char* source : corpus) {
    SCOPED_TRACE(source);
    run_both(source, schema, pkt, msg, glb);
  }
}

TEST(AstEvalDiff, StatefulTraps) {
  const StateSchema schema = testing::pias_schema();
  auto pkt = StateBlock::from_schema(schema, Scope::packet);
  auto msg = StateBlock::from_schema(schema, Scope::message);
  auto glb = StateBlock::from_schema(schema, Scope::global);
  glb.arrays[0].stride = 2;
  glb.arrays[0].data = {10240, 7};

  const DiffResult oob = run_both("fun(p, m, g) -> g.priorities[5].limit",
                                  schema, pkt, msg, glb);
  EXPECT_EQ(oob.status, ExecStatus::out_of_bounds);
  const DiffResult neg =
      run_both("fun(p, m, g) -> g.priorities[0 - 1].limit", schema, pkt,
               msg, glb);
  EXPECT_EQ(neg.status, ExecStatus::out_of_bounds);
}

// Every library function, interpreted vs reference-evaluated, across a
// parameter sweep of packet/message inputs. Randomized functions agree
// exactly because both engines draw from the same seeded generator.
class LibraryDiff : public ::testing::TestWithParam<int> {};

TEST_P(LibraryDiff, FunctionsAgreeWithReference) {
  const int variant = GetParam();
  for (const auto& fn : functions::all_functions()) {
    SCOPED_TRACE(fn->name());
    const StateSchema schema = core::make_enclave_schema(fn->global_fields());
    auto pkt = StateBlock::from_schema(schema, Scope::packet);
    auto msg = StateBlock::from_schema(schema, Scope::message);
    auto glb = StateBlock::from_schema(schema, Scope::global);

    // Vary the inputs per parameter.
    util::Rng vary(static_cast<std::uint64_t>(variant) * 977 + 13);
    pkt.scalars[core::PacketSlot::size] = vary.range(54, 1514);
    pkt.scalars[core::PacketSlot::dst] = vary.range(0, 3);
    pkt.scalars[core::PacketSlot::dst_port] = vary.range(1000, 1005);
    pkt.scalars[core::PacketSlot::tenant] = vary.range(0, 2);
    pkt.scalars[core::PacketSlot::msg_type] = vary.range(1, 2);
    pkt.scalars[core::PacketSlot::msg_size] = vary.range(0, 100000);
    pkt.scalars[core::PacketSlot::flow_size] = vary.range(0, 3000000);
    pkt.scalars[core::PacketSlot::app_priority] = vary.range(0, 2);
    pkt.scalars[core::PacketSlot::key_hash] = vary.range(0, 1 << 20);
    msg.scalars[core::MessageSlot::size] = vary.range(0, 2000000);
    msg.scalars[core::MessageSlot::priority] = vary.range(0, 2);
    msg.scalars[core::MessageSlot::path] = vary.range(-1, 3);

    // Populate the function's global tables with plausible content.
    for (auto& arr : glb.arrays) {
      // Strides were set by from_schema.
      const int records = 3;
      for (int r = 0; r < records * arr.stride; ++r) {
        arr.data.push_back(vary.range(0, 1000));
      }
    }
    for (auto& scalar : glb.scalars) scalar = vary.range(0, 2);

    run_both(fn->source(), schema, pkt, msg, glb,
             /*seed=*/static_cast<std::uint64_t>(variant) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(InputSweep, LibraryDiff, ::testing::Range(0, 25));

// TCO must not change semantics: the same program with and without the
// optimization agrees with the reference on deep recursions.
TEST(AstEvalDiff, TcoOnOffAgree) {
  const char* source =
      "fun(p) -> let rec sum(n, acc) = if n = 0 then acc "
      "else sum(n - 1, acc + n) in sum(100, 0)";
  StateSchema schema;
  CompileOptions no_tco;
  no_tco.tail_call_optimization = false;
  const DiffResult with_tco =
      run_both(source, schema, {}, {}, {}, 7, CompileOptions{});
  const DiffResult without_tco =
      run_both(source, schema, {}, {}, {}, 7, no_tco);
  EXPECT_EQ(with_tco.status, ExecStatus::ok);
  EXPECT_EQ(with_tco.value, 5050);
  EXPECT_EQ(without_tco.value, 5050);
}

TEST(AstEval, NodeBudgetTrapsRunaways) {
  StateSchema schema;
  const Program ast = parse("fun(p) -> while true do 0 done");
  util::Rng rng(1);
  AstEvalOptions options;
  options.max_nodes = 5000;
  const ExecResult r =
      ast_eval(ast, schema, nullptr, nullptr, nullptr, rng, 0, options);
  EXPECT_EQ(r.status, ExecStatus::fuel_exhausted);
}

TEST(AstEval, ClockInjection) {
  StateSchema schema;
  const Program ast = parse("fun(p) -> clock()");
  util::Rng rng(1);
  const ExecResult r =
      ast_eval(ast, schema, nullptr, nullptr, nullptr, rng, 123456);
  EXPECT_EQ(r.value, 123456);
}

}  // namespace
}  // namespace eden::lang
