// Shared schemas for the lang tests: a miniature version of the enclave
// packet/message/global schema, plus the PIAS program from Figure 7 of
// the paper.
#pragma once

#include "lang/state_schema.h"

namespace eden::lang::testing {

// Schema mirroring the paper's priority-selection example (Figures 7/8):
//   packet.size      RO  (maps to IPv4 TotalLength)
//   packet.priority  RW  (maps to 802.1q PCP)
//   msg.size         RW
//   msg.priority     RO
//   global.priorities : records {limit, priority}, RO
inline StateSchema pias_schema() {
  StateSchema schema;
  schema.scalar(Scope::packet, "size", Access::read_only,
                "ipv4.total_length");
  schema.scalar(Scope::packet, "priority", Access::read_write, "802.1q.pcp");
  schema.scalar(Scope::message, "size", Access::read_write);
  schema.scalar(Scope::message, "priority", Access::read_only);
  schema.record_array(Scope::global, "priorities", Access::read_only,
                      {"limit", "priority"});
  return schema;
}

// The PIAS action function of Figure 7, in EAL. Message priority < 1
// means the application pinned a (background) priority; otherwise the
// priority follows the message's bytes sent so far.
inline constexpr const char* kPiasSource = R"(
fun(packet : Packet, msg : Message, global : Global) ->
  let msg_size = msg.size + packet.size in
  msg.size <- msg_size;
  let priorities = global.priorities in
  let rec search(index) =
    if index >= priorities.length then 0
    elif msg_size <= priorities.[index].limit then priorities.[index].priority
    else search(index + 1)
  in
  packet.priority <-
    (let desired = msg.priority in
     if desired < 1 then desired else search(0))
)";

}  // namespace eden::lang::testing
