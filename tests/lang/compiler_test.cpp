#include "lang/compiler.h"

#include <gtest/gtest.h>

#include "lang/disasm.h"
#include "tests/lang/test_schemas.h"

namespace eden::lang {
namespace {

using testing::pias_schema;

TEST(Compiler, ConcurrencyParallelWhenOnlyPacketWritten) {
  const auto p = compile_source("fun(p, m, g) -> p.priority <- 3",
                                pias_schema());
  EXPECT_EQ(p.concurrency, ConcurrencyMode::parallel);
}

TEST(Compiler, ConcurrencyPerMessageWhenMessageWritten) {
  const auto p = compile_source(
      "fun(p, m, g) -> m.size <- m.size + p.size", pias_schema());
  EXPECT_EQ(p.concurrency, ConcurrencyMode::per_message);
}

TEST(Compiler, ConcurrencySerializedWhenGlobalWritten) {
  StateSchema schema = pias_schema();
  schema.scalar(Scope::global, "counter", Access::read_write);
  const auto p = compile_source(
      "fun(p, m, g) -> g.counter <- g.counter + 1", schema);
  EXPECT_EQ(p.concurrency, ConcurrencyMode::serialized);
}

TEST(Compiler, RejectsWriteToReadOnlyField) {
  EXPECT_THROW(
      compile_source("fun(p, m, g) -> p.size <- 0", pias_schema()),
      LangError);
}

TEST(Compiler, RejectsUnknownField) {
  EXPECT_THROW(
      compile_source("fun(p, m, g) -> p.nonexistent", pias_schema()),
      LangError);
}

TEST(Compiler, RejectsUnboundVariable) {
  EXPECT_THROW(compile_source("fun(p, m, g) -> mystery", pias_schema()),
               LangError);
}

TEST(Compiler, RejectsScalarIndexing) {
  EXPECT_THROW(
      compile_source("fun(p, m, g) -> p.size[0]", pias_schema()),
      LangError);
}

TEST(Compiler, RejectsWholeArrayRead) {
  EXPECT_THROW(
      compile_source("fun(p, m, g) -> g.priorities", pias_schema()),
      LangError);
}

TEST(Compiler, RejectsRecordArrayWithoutField) {
  EXPECT_THROW(
      compile_source("fun(p, m, g) -> g.priorities[0]", pias_schema()),
      LangError);
}

TEST(Compiler, RejectsUnknownRecordField) {
  EXPECT_THROW(
      compile_source("fun(p, m, g) -> g.priorities[0].bogus", pias_schema()),
      LangError);
}

TEST(Compiler, RejectsAssignToLength) {
  StateSchema schema = pias_schema();
  schema.array(Scope::global, "xs", Access::read_write);
  EXPECT_THROW(compile_source("fun(p, m, g) -> g.xs.length <- 1", schema),
               LangError);
}

TEST(Compiler, RejectsTooManyParams) {
  EXPECT_THROW(compile_source("fun(a, b, c, d) -> 0", pias_schema()),
               LangError);
}

TEST(Compiler, RejectsUnknownParamType) {
  EXPECT_THROW(compile_source("fun(p : Widget) -> 0", pias_schema()),
               LangError);
}

TEST(Compiler, ParamTypeAnnotationsOverridePosition) {
  // Single parameter annotated as Global still resolves global fields.
  const auto p = compile_source(
      "fun(g : Global) -> g.priorities[0].limit", pias_schema());
  EXPECT_NE(p.usage.array_read[static_cast<int>(Scope::global)], 0u);
}

TEST(Compiler, UsageMasksTrackReadsAndWrites) {
  const auto p = compile_source(testing::kPiasSource, pias_schema());
  const int pkt = static_cast<int>(Scope::packet);
  const int msg = static_cast<int>(Scope::message);
  const int glb = static_cast<int>(Scope::global);
  EXPECT_EQ(p.usage.scalar_read[pkt], 0b01u);   // size read
  EXPECT_EQ(p.usage.scalar_write[pkt], 0b10u);  // priority written
  EXPECT_EQ(p.usage.scalar_read[msg], 0b11u);   // size + priority read
  EXPECT_EQ(p.usage.scalar_write[msg], 0b01u);  // size written
  EXPECT_EQ(p.usage.array_read[glb], 0b1u);
  EXPECT_EQ(p.usage.array_write[glb], 0u);
  EXPECT_EQ(p.concurrency, ConcurrencyMode::per_message);
}

TEST(Compiler, TailRecursionCompilesToJump) {
  const auto with_tco = compile_source(testing::kPiasSource, pias_schema());
  CompileOptions no_tco;
  no_tco.tail_call_optimization = false;
  const auto without_tco =
      compile_source(testing::kPiasSource, pias_schema(), no_tco);

  auto count_calls = [](const CompiledProgram& p) {
    int calls = 0;
    for (const auto& instr : p.code) {
      if (instr.op == Op::call) ++calls;
    }
    return calls;
  };
  // With TCO only the initial search(0) remains a real call; the
  // recursive call becomes a jump.
  EXPECT_EQ(count_calls(with_tco), 1);
  EXPECT_EQ(count_calls(without_tco), 2);
}

TEST(Compiler, SerializeRoundTrips) {
  const auto p = compile_source(testing::kPiasSource, pias_schema(), {},
                                "pias");
  const auto bytes = p.serialize();
  const auto q = CompiledProgram::deserialize(bytes);
  EXPECT_EQ(q.source_name, "pias");
  EXPECT_EQ(q.concurrency, p.concurrency);
  ASSERT_EQ(q.code.size(), p.code.size());
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    EXPECT_EQ(q.code[i].op, p.code[i].op) << "instr " << i;
    EXPECT_EQ(q.code[i].a, p.code[i].a) << "instr " << i;
    EXPECT_EQ(q.code[i].imm, p.code[i].imm) << "instr " << i;
  }
  ASSERT_EQ(q.functions.size(), p.functions.size());
  EXPECT_EQ(q.functions[1].name, p.functions[1].name);
  EXPECT_EQ(q.usage.scalar_write[0], p.usage.scalar_write[0]);
}

TEST(Compiler, DeserializeRejectsCorruptStreams) {
  const auto p = compile_source("fun(p, m, g) -> 1", pias_schema());
  auto bytes = p.serialize();
  // Truncated stream.
  std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + 8);
  EXPECT_THROW(CompiledProgram::deserialize(cut), LangError);
  // Bad magic.
  auto bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_THROW(CompiledProgram::deserialize(bad), LangError);
  // Trailing garbage.
  auto longer = bytes;
  longer.push_back(0);
  EXPECT_THROW(CompiledProgram::deserialize(longer), LangError);
}

TEST(Compiler, DisassemblyMentionsFunctionsAndState) {
  const auto p = compile_source(testing::kPiasSource, pias_schema());
  const std::string text = disassemble(p);
  EXPECT_NE(text.find("main"), std::string::npos);
  EXPECT_NE(text.find("search"), std::string::npos);
  EXPECT_NE(text.find("store_state"), std::string::npos);
  EXPECT_NE(text.find("per_message"), std::string::npos);
}

TEST(Compiler, CallArityMismatchIsError) {
  EXPECT_THROW(compile_source(
                   "fun(p, m, g) -> let f(a, b) = a + b in f(1)",
                   pias_schema()),
               LangError);
}

TEST(Compiler, UnknownFunctionCallIsError) {
  EXPECT_THROW(compile_source("fun(p, m, g) -> ghost(1)", pias_schema()),
               LangError);
}

TEST(Compiler, BuiltinArityChecked) {
  EXPECT_THROW(compile_source("fun(p, m, g) -> min(1)", pias_schema()),
               LangError);
  EXPECT_THROW(compile_source("fun(p, m, g) -> clock(1)", pias_schema()),
               LangError);
  EXPECT_THROW(compile_source("fun(p, m, g) -> len(1)", pias_schema()),
               LangError);
}

TEST(Compiler, ArrayAliasRebindingForbidden) {
  EXPECT_THROW(compile_source(
                   "fun(p, m, g) -> let a = g.priorities in a <- 1",
                   pias_schema()),
               LangError);
}

}  // namespace
}  // namespace eden::lang
