#include "lang/lexer.h"

#include <gtest/gtest.h>

namespace eden::lang {
namespace {

std::vector<TokenKind> kinds(std::string_view src) {
  std::vector<TokenKind> out;
  for (const auto& tok : lex(src)) out.push_back(tok.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::end_of_input);
}

TEST(Lexer, IntegersWithSeparatorsAndSuffix) {
  const auto tokens = lex("1_000_000 42L 0");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].int_value, 1000000);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 0);
}

TEST(Lexer, IntegerOverflowIsRejected) {
  EXPECT_THROW(lex("99999999999999999999"), LangError);
}

TEST(Lexer, MaxInt64Accepted) {
  const auto tokens = lex("9223372036854775807");
  EXPECT_EQ(tokens[0].int_value, 9223372036854775807LL);
}

TEST(Lexer, KeywordsAndIdentifiers) {
  const auto k = kinds("fun let rec in if then elif else while do done foo");
  const std::vector<TokenKind> expected = {
      TokenKind::kw_fun,  TokenKind::kw_let,  TokenKind::kw_rec,
      TokenKind::kw_in,   TokenKind::kw_if,   TokenKind::kw_then,
      TokenKind::kw_elif, TokenKind::kw_else, TokenKind::kw_while,
      TokenKind::kw_do,   TokenKind::kw_done, TokenKind::identifier,
      TokenKind::end_of_input};
  EXPECT_EQ(k, expected);
}

TEST(Lexer, OperatorsTwoCharacter) {
  const auto k = kinds("-> <- <= >= <> != == && ||");
  const std::vector<TokenKind> expected = {
      TokenKind::arrow, TokenKind::left_arrow, TokenKind::le,
      TokenKind::ge,    TokenKind::ne,         TokenKind::ne,
      TokenKind::eq,    TokenKind::kw_and,     TokenKind::kw_or,
      TokenKind::end_of_input};
  EXPECT_EQ(k, expected);
}

TEST(Lexer, DotBracketIsArrayIndexSugar) {
  // F# spells indexing "xs.[i]"; the lexer folds ".[" into "[".
  const auto k = kinds("xs.[i]");
  const std::vector<TokenKind> expected = {
      TokenKind::identifier, TokenKind::lbracket, TokenKind::identifier,
      TokenKind::rbracket, TokenKind::end_of_input};
  EXPECT_EQ(k, expected);
}

TEST(Lexer, LineComments) {
  const auto k = kinds("a // comment until newline\nb");
  ASSERT_EQ(k.size(), 3u);
  EXPECT_EQ(k[0], TokenKind::identifier);
  EXPECT_EQ(k[1], TokenKind::identifier);
}

TEST(Lexer, NestedBlockComments) {
  const auto k = kinds("a (* outer (* inner *) still outer *) b");
  ASSERT_EQ(k.size(), 3u);
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(lex("(* never closed"), LangError);
}

TEST(Lexer, UnknownCharacterThrows) {
  EXPECT_THROW(lex("a $ b"), LangError);
  EXPECT_THROW(lex("a & b"), LangError);   // bare & is invalid
  EXPECT_THROW(lex("a | b"), LangError);   // bare | is invalid
  EXPECT_THROW(lex("a ! b"), LangError);   // bare ! is invalid
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].loc.line, 1u);
  EXPECT_EQ(tokens[0].loc.column, 1u);
  EXPECT_EQ(tokens[1].loc.line, 2u);
  EXPECT_EQ(tokens[1].loc.column, 3u);
}

TEST(Lexer, ParenStarRequiresCommentClose) {
  // "(*" always opens a comment; "( *" does not.
  EXPECT_THROW(lex("(* open"), LangError);
  EXPECT_NO_THROW(lex("( * )"));
}

}  // namespace
}  // namespace eden::lang
