// Robustness: the enclave runtime must survive arbitrary garbage.
//  * random byte streams fed to the bytecode deserializer either decode
//    or throw LangError — never crash;
//  * structurally valid but semantically random instruction sequences
//    executed under a fuel cap always terminate with a status — the
//    interpreter's bounds checks are the safety boundary the paper's
//    isolation argument rests on (Section 3.4.3).
#include <gtest/gtest.h>

#include "lang/compiler.h"
#include "lang/interpreter.h"
#include "tests/lang/test_schemas.h"
#include "util/rng.h"

namespace eden::lang {
namespace {

class FuzzDeserialize : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDeserialize, RandomBytesNeverCrash) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const std::size_t len = rng.below(256);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    try {
      const CompiledProgram p = CompiledProgram::deserialize(bytes);
      (void)p;  // decoding garbage successfully is acceptable (rare)
    } catch (const LangError&) {
      // expected for almost all inputs
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDeserialize,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class FuzzMutatedBytecode : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzMutatedBytecode, MutatedProgramsAlwaysTerminate) {
  // Start from a real program and corrupt instructions: operands,
  // opcodes, jump targets. Execution must end with *some* status within
  // the fuel budget, and never touch memory outside the state blocks.
  const StateSchema schema = testing::pias_schema();
  const CompiledProgram original =
      compile_source(testing::kPiasSource, schema);

  util::Rng rng(GetParam());
  ExecLimits limits;
  limits.max_steps = 20000;
  Interpreter interp(limits, GetParam());

  for (int round = 0; round < 300; ++round) {
    CompiledProgram mutated = original;
    const int mutations = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < mutations; ++m) {
      Instr& instr = mutated.code[rng.below(mutated.code.size())];
      switch (rng.below(3)) {
        case 0:
          instr.op = static_cast<Op>(
              rng.below(static_cast<std::uint64_t>(Op::halt) + 1));
          break;
        case 1:
          instr.a = static_cast<std::int32_t>(rng.next_u64());
          break;
        default:
          instr.imm = static_cast<std::int64_t>(rng.next_u64());
          break;
      }
    }

    StateBlock pkt = StateBlock::from_schema(schema, Scope::packet);
    StateBlock msg = StateBlock::from_schema(schema, Scope::message);
    StateBlock glb = StateBlock::from_schema(schema, Scope::global);
    glb.arrays[0].stride = 2;
    glb.arrays[0].data = {10240, 7, 1048576, 5};

    const ExecResult r = interp.execute(mutated, &pkt, &msg, &glb);
    // Any status is fine; the property is "terminates and reports".
    EXPECT_LE(r.steps, limits.max_steps + 1);
    (void)r.status;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMutatedBytecode,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(Robustness, HugeJumpTargetsAreInvalidProgram) {
  StateSchema schema;
  CompiledProgram p = compile_source("fun(x) -> 1 + 2", schema);
  p.code[0] = Instr{Op::jmp, 1 << 30, 0};
  Interpreter interp;
  EXPECT_EQ(interp.execute(p, nullptr, nullptr, nullptr).status,
            ExecStatus::invalid_program);
}

TEST(Robustness, CallToMissingFunctionIsInvalidProgram) {
  StateSchema schema;
  CompiledProgram p = compile_source("fun(x) -> 1", schema);
  p.code.insert(p.code.begin(), Instr{Op::call, 99, 0});
  Interpreter interp;
  EXPECT_EQ(interp.execute(p, nullptr, nullptr, nullptr).status,
            ExecStatus::invalid_program);
}

TEST(Robustness, EmptyProgramIsInvalid) {
  CompiledProgram p;
  Interpreter interp;
  EXPECT_EQ(interp.execute(p, nullptr, nullptr, nullptr).status,
            ExecStatus::invalid_program);
}

TEST(Robustness, StackUnderflowDetected) {
  StateSchema schema;
  CompiledProgram p = compile_source("fun(x) -> 1", schema);
  p.code[0] = Instr{Op::add, 0, 0};  // add with empty stack
  Interpreter interp;
  EXPECT_EQ(interp.execute(p, nullptr, nullptr, nullptr).status,
            ExecStatus::stack_underflow);
}

TEST(Robustness, OperandStackOverflowDetected) {
  // An unterminated push loop overflows the operand stack before fuel.
  StateSchema schema;
  CompiledProgram p;
  p.functions.push_back(FunctionInfo{"main", 0, 0, 0});
  p.code.push_back(Instr{Op::push, 0, 1});
  p.code.push_back(Instr{Op::jmp, 0, 0});
  ExecLimits limits;
  limits.max_operand_stack = 32;
  limits.max_steps = 100000;
  Interpreter interp(limits);
  EXPECT_EQ(interp.execute(p, nullptr, nullptr, nullptr).status,
            ExecStatus::stack_overflow);
}

}  // namespace
}  // namespace eden::lang
