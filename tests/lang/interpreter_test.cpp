#include "lang/interpreter.h"

#include <gtest/gtest.h>

#include "lang/compiler.h"
#include "tests/lang/test_schemas.h"

namespace eden::lang {
namespace {

using testing::pias_schema;

// Runs a source program with fresh default state blocks and returns the
// result; the blocks can be inspected afterwards through the fixture.
class InterpreterTest : public ::testing::Test {
 protected:
  void SetUp() override { set_schema(pias_schema()); }

  void set_schema(StateSchema schema) {
    schema_ = std::move(schema);
    packet_ = StateBlock::from_schema(schema_, Scope::packet);
    message_ = StateBlock::from_schema(schema_, Scope::message);
    global_ = StateBlock::from_schema(schema_, Scope::global);
  }

  ExecResult run(std::string_view source, CompileOptions options = {}) {
    program_ = compile_source(source, schema_, options);
    return interp_.execute(program_, &packet_, &message_, &global_);
  }

  std::int64_t eval(std::string_view source) {
    const ExecResult r = run(source);
    EXPECT_EQ(r.status, ExecStatus::ok);
    return r.value;
  }

  StateSchema schema_;
  StateBlock packet_, message_, global_;
  CompiledProgram program_;
  Interpreter interp_;
};

TEST_F(InterpreterTest, Arithmetic) {
  EXPECT_EQ(eval("fun(p) -> 2 + 3 * 4"), 14);
  EXPECT_EQ(eval("fun(p) -> (2 + 3) * 4"), 20);
  EXPECT_EQ(eval("fun(p) -> 10 - 3 - 2"), 5);  // left associative
  EXPECT_EQ(eval("fun(p) -> 17 / 5"), 3);
  EXPECT_EQ(eval("fun(p) -> 17 % 5"), 2);
  EXPECT_EQ(eval("fun(p) -> -7"), -7);
  EXPECT_EQ(eval("fun(p) -> - (3 - 10)"), 7);
}

TEST_F(InterpreterTest, Comparisons) {
  EXPECT_EQ(eval("fun(p) -> 1 < 2"), 1);
  EXPECT_EQ(eval("fun(p) -> 2 <= 2"), 1);
  EXPECT_EQ(eval("fun(p) -> 3 = 3"), 1);
  EXPECT_EQ(eval("fun(p) -> 3 <> 3"), 0);
  EXPECT_EQ(eval("fun(p) -> 5 > 6"), 0);
  EXPECT_EQ(eval("fun(p) -> 6 >= 6"), 1);
}

TEST_F(InterpreterTest, ShortCircuitLogic) {
  EXPECT_EQ(eval("fun(p) -> true && false"), 0);
  EXPECT_EQ(eval("fun(p) -> true || false"), 1);
  EXPECT_EQ(eval("fun(p) -> not true"), 0);
  // Right side is not evaluated when the left decides: a division by
  // zero in the unevaluated branch must not trap.
  EXPECT_EQ(eval("fun(p) -> false && (1 / 0 = 1)"), 0);
  EXPECT_EQ(eval("fun(p) -> true || (1 / 0 = 1)"), 1);
  // Nonzero values normalize to 1.
  EXPECT_EQ(eval("fun(p) -> 7 && 9"), 1);
}

TEST_F(InterpreterTest, DivisionByZeroTraps) {
  EXPECT_EQ(run("fun(p) -> 1 / 0").status, ExecStatus::div_by_zero);
  EXPECT_EQ(run("fun(p) -> 1 % 0").status, ExecStatus::div_by_zero);
}

TEST_F(InterpreterTest, Int64MinDivMinusOneWrapsInsteadOfTrapping) {
  EXPECT_EQ(eval("fun(p) -> (0 - 9223372036854775807 - 1) / (0 - 1)"),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(eval("fun(p) -> (0 - 9223372036854775807 - 1) % (0 - 1)"), 0);
}

TEST_F(InterpreterTest, IfElifElse) {
  EXPECT_EQ(eval("fun(p) -> if 0 then 1 else 2"), 2);
  EXPECT_EQ(eval("fun(p) -> if 1 then 1 else 2"), 1);
  EXPECT_EQ(eval("fun(p) -> if 0 then 1 elif 1 then 5 else 2"), 5);
  EXPECT_EQ(eval("fun(p) -> if 0 then 1"), 0);  // missing else = 0
}

TEST_F(InterpreterTest, LetBindingAndShadowing) {
  EXPECT_EQ(eval("fun(p) -> let x = 3 in let y = 4 in x * y"), 12);
  EXPECT_EQ(eval("fun(p) -> let x = 3 in let x = x + 1 in x"), 4);
}

TEST_F(InterpreterTest, LocalMutation) {
  EXPECT_EQ(eval("fun(p) -> let x = 1 in (x <- x + 10; x)"), 11);
}

TEST_F(InterpreterTest, WhileLoop) {
  EXPECT_EQ(eval(R"(fun(p) ->
    let i = 0 in
    let sum = 0 in
    (while i < 10 do sum <- sum + i; i <- i + 1 done; sum))"),
            45);
}

TEST_F(InterpreterTest, SequenceYieldsLastValue) {
  EXPECT_EQ(eval("fun(p) -> (1; 2; 3)"), 3);
}

TEST_F(InterpreterTest, AssignEvaluatesToUnit) {
  EXPECT_EQ(eval("fun(p) -> let x = 5 in let u = (x <- 9) in u"), 0);
}

TEST_F(InterpreterTest, NonRecursiveFunction) {
  EXPECT_EQ(eval("fun(p) -> let add(a, b) = a + b in add(3, 4)"), 7);
}

TEST_F(InterpreterTest, RecursiveFunctionNonTail) {
  // Factorial has a non-tail recursive call (the multiply happens after
  // the call), so this exercises real frames.
  EXPECT_EQ(eval(R"(fun(p) ->
    let rec fact(n) = if n <= 1 then 1 else n * fact(n - 1) in
    fact(10))"),
            3628800);
}

TEST_F(InterpreterTest, TailRecursionRunsDeep) {
  // 100000 iterations would blow max_call_depth without TCO.
  EXPECT_EQ(eval(R"(fun(p) ->
    let rec count(n, acc) = if n = 0 then acc else count(n - 1, acc + 1) in
    count(100000, 0))"),
            100000);
}

TEST_F(InterpreterTest, DeepNonTailRecursionHitsCallDepthLimit) {
  const ExecResult r = run(R"(fun(p) ->
    let rec f(n) = if n = 0 then 0 else 1 + f(n - 1) in
    f(100000))");
  EXPECT_EQ(r.status, ExecStatus::call_depth_exceeded);
}

TEST_F(InterpreterTest, CapturedVariables) {
  // `base` is captured by value from the enclosing scope.
  EXPECT_EQ(eval(R"(fun(p) ->
    let base = 100 in
    let addbase(x) = x + base in
    addbase(7))"),
            107);
}

TEST_F(InterpreterTest, CapturedVariableInRecursion) {
  EXPECT_EQ(eval(R"(fun(p) ->
    let step = 3 in
    let rec sum(n, acc) = if n = 0 then acc else sum(n - 1, acc + step) in
    sum(5, 0))"),
            15);
}

TEST_F(InterpreterTest, StateReadsAndWrites) {
  packet_.scalars[0] = 1500;  // packet.size
  message_.scalars[0] = 4000; // msg.size
  const ExecResult r =
      run("fun(p, m, g) -> m.size <- m.size + p.size; m.size");
  EXPECT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(message_.scalars[0], 5500);
}

TEST_F(InterpreterTest, RecordArrayAccess) {
  global_.arrays[0].stride = 2;
  global_.arrays[0].data = {10000, 7, 1000000, 5};  // {limit, prio} x2
  EXPECT_EQ(eval("fun(p, m, g) -> g.priorities[1].limit"), 1000000);
  EXPECT_EQ(eval("fun(p, m, g) -> g.priorities[1].priority"), 5);
  EXPECT_EQ(eval("fun(p, m, g) -> len(g.priorities)"), 2);
  EXPECT_EQ(eval("fun(p, m, g) -> g.priorities.length"), 2);
}

TEST_F(InterpreterTest, ArrayOutOfBoundsTraps) {
  global_.arrays[0].stride = 2;
  global_.arrays[0].data = {10000, 7};
  EXPECT_EQ(run("fun(p, m, g) -> g.priorities[1].limit").status,
            ExecStatus::out_of_bounds);
  EXPECT_EQ(run("fun(p, m, g) -> g.priorities[0 - 1].limit").status,
            ExecStatus::out_of_bounds);
}

TEST_F(InterpreterTest, FaultyProgramLeavesOtherStateUntouched) {
  // A trap must not corrupt anything the program did not already write.
  global_.arrays[0].stride = 2;
  global_.arrays[0].data = {10000, 7};
  packet_.scalars[1] = 42;
  const ExecResult r =
      run("fun(p, m, g) -> g.priorities[99].limit");
  EXPECT_EQ(r.status, ExecStatus::out_of_bounds);
  EXPECT_EQ(packet_.scalars[1], 42);
}

TEST_F(InterpreterTest, MissingStateBlockReportsBadSlot) {
  program_ = compile_source("fun(p, m, g) -> m.size", schema_);
  const ExecResult r = interp_.execute(program_, &packet_, nullptr, &global_);
  EXPECT_EQ(r.status, ExecStatus::bad_state_slot);
}

TEST_F(InterpreterTest, FuelLimitStopsRunawayLoop) {
  ExecLimits limits;
  limits.max_steps = 10000;
  Interpreter bounded(limits);
  program_ = compile_source("fun(p) -> while true do 0 done", schema_);
  const ExecResult r =
      bounded.execute(program_, &packet_, &message_, &global_);
  EXPECT_EQ(r.status, ExecStatus::fuel_exhausted);
  EXPECT_EQ(r.steps, 10000u);
}

TEST_F(InterpreterTest, RandRespectsBound) {
  for (int i = 0; i < 50; ++i) {
    const std::int64_t v = eval("fun(p) -> rand(10)");
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
  EXPECT_EQ(run("fun(p) -> rand(0)").status, ExecStatus::bad_rand_bound);
  EXPECT_EQ(run("fun(p) -> rand(0 - 5)").status, ExecStatus::bad_rand_bound);
}

TEST_F(InterpreterTest, ClockUsesInjectedSource) {
  static std::int64_t fake_now = 123456789;
  interp_.set_clock([](void*) { return fake_now; }, nullptr);
  EXPECT_EQ(eval("fun(p) -> clock()"), 123456789);
}

TEST_F(InterpreterTest, MinMaxAbs) {
  EXPECT_EQ(eval("fun(p) -> min(3, 9)"), 3);
  EXPECT_EQ(eval("fun(p) -> max(3, 9)"), 9);
  EXPECT_EQ(eval("fun(p) -> abs(0 - 5)"), 5);
  EXPECT_EQ(eval("fun(p) -> abs(5)"), 5);
}

TEST_F(InterpreterTest, ResultReportsResourceHighWaterMarks) {
  const ExecResult r = run(testing::kPiasSource);
  EXPECT_EQ(r.status, ExecStatus::ok);
  EXPECT_GT(r.steps, 0u);
  EXPECT_GT(r.max_stack, 0u);
  // The paper reports ~64 bytes of operand stack for these programs
  // (Section 5.4); that is 8 entries.
  EXPECT_LE(r.max_stack, 8u);
}

// --- The Figure 7 PIAS program, end to end ------------------------------

class PiasProgramTest : public InterpreterTest {
 protected:
  void SetUp() override {
    InterpreterTest::SetUp();
    // Thresholds: <=10KB -> priority 7, <=1MB -> priority 5, else 0.
    global_.arrays[0].stride = 2;
    global_.arrays[0].data = {10240, 7, 1048576, 5};
    message_.scalars[1] = 1;  // msg.priority: 1 = unset, use PIAS
  }

  // Sends one packet of `size` bytes through the program and returns the
  // priority the program assigned to it.
  std::int64_t send_packet(std::int64_t size) {
    packet_.scalars[0] = size;
    const ExecResult r = run(testing::kPiasSource);
    EXPECT_EQ(r.status, ExecStatus::ok);
    return packet_.scalars[1];
  }
};

TEST_F(PiasProgramTest, SmallMessageGetsHighPriority) {
  EXPECT_EQ(send_packet(1460), 7);
  EXPECT_EQ(message_.scalars[0], 1460);  // msg.size updated
}

TEST_F(PiasProgramTest, PriorityDemotesAsMessageGrows) {
  // 7 packets of 1460B stay under 10KB29; after that the message crosses
  // into the intermediate band, and eventually to background.
  std::int64_t last = 7;
  std::int64_t total = 0;
  while (total + 1460 <= 10240) {
    last = send_packet(1460);
    total += 1460;
    EXPECT_EQ(last, 7);
  }
  last = send_packet(1460);  // crosses 10KB
  EXPECT_EQ(last, 5);
  // Push beyond 1MB.
  message_.scalars[0] = 1048576 - 100;
  EXPECT_EQ(send_packet(1460), 0);
}

TEST_F(PiasProgramTest, ApplicationPinnedPriorityIsRespected) {
  message_.scalars[1] = 0;  // background-pinned
  EXPECT_EQ(send_packet(1460), 0);
  EXPECT_EQ(message_.scalars[0], 1460);  // size still tracked
}

TEST_F(PiasProgramTest, WorksIdenticallyWithoutTCO) {
  CompileOptions no_tco;
  no_tco.tail_call_optimization = false;
  message_.scalars[0] = 20000;
  packet_.scalars[0] = 1460;
  const ExecResult r = run(testing::kPiasSource, no_tco);
  EXPECT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(packet_.scalars[1], 5);
}

TEST_F(PiasProgramTest, SurvivesSerializationRoundTrip) {
  // Compile, serialize, deserialize (as if shipped to a NIC enclave),
  // then execute the deserialized program.
  const auto compiled = compile_source(testing::kPiasSource, schema_);
  const auto shipped = CompiledProgram::deserialize(compiled.serialize());
  packet_.scalars[0] = 1460;
  message_.scalars[0] = 50000;
  const ExecResult r =
      interp_.execute(shipped, &packet_, &message_, &global_);
  EXPECT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(packet_.scalars[1], 5);
}

}  // namespace
}  // namespace eden::lang
