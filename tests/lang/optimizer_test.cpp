// Differential testing of the bytecode optimizer: an optimized program
// must produce the same ExecStatus, result value and state writes as
// the O0 translation and as the reference AST evaluator, on every
// program and input — including trap cases. The only allowed divergence
// is resource consumption: O1 may use fewer steps and less stack, never
// more (see lang/optimizer.h).
#include "lang/optimizer.h"

#include <gtest/gtest.h>

#include "core/enclave_schema.h"
#include "functions/registry.h"
#include "lang/ast_eval.h"
#include "lang/compiler.h"
#include "lang/disasm.h"
#include "lang/parser.h"
#include "tests/lang/test_schemas.h"

namespace eden::lang {
namespace {

struct LevelResult {
  ExecResult result;
  StateBlock pkt, msg, glb;
};

LevelResult run_level(const CompiledProgram& program, const StateSchema&,
                      StateBlock pkt, StateBlock msg, StateBlock glb,
                      const ExecLimits& limits, std::uint64_t seed) {
  Interpreter interp(limits, seed);
  LevelResult out{ExecResult{}, std::move(pkt), std::move(msg),
                  std::move(glb)};
  out.result = interp.execute(program, &out.pkt, &out.msg, &out.glb);
  return out;
}

// Compiles at O0, optimizes to O1, runs both against identical state and
// checks full agreement on status, value and post-state. Returns the two
// ExecResults so callers can assert on resource accounting.
struct DiffPair {
  ExecResult o0, o1;
  OptStats stats;
};

DiffPair run_diff(std::string_view source, const StateSchema& schema,
                  const StateBlock& pkt, const StateBlock& msg,
                  const StateBlock& glb, const ExecLimits& limits = {},
                  std::uint64_t seed = 7) {
  const Program ast = parse(source);
  const CompiledProgram o0 = compile(ast, schema);
  OptStats stats;
  const CompiledProgram o1 = optimize(o0, OptLevel::O1, &stats);

  const LevelResult r0 = run_level(o0, schema, pkt, msg, glb, limits, seed);
  const LevelResult r1 = run_level(o1, schema, pkt, msg, glb, limits, seed);

  EXPECT_EQ(r0.result.status, r1.result.status) << source;
  if (r0.result.status == r1.result.status) {
    EXPECT_EQ(r0.result.value, r1.result.value) << source;
    EXPECT_EQ(r0.pkt.scalars, r1.pkt.scalars) << source;
    EXPECT_EQ(r0.msg.scalars, r1.msg.scalars) << source;
    EXPECT_EQ(r0.glb.scalars, r1.glb.scalars) << source;
    for (std::size_t i = 0; i < r0.glb.arrays.size(); ++i) {
      EXPECT_EQ(r0.glb.arrays[i].data, r1.glb.arrays[i].data) << source;
    }
  }
  // Resource relaxation is one-way: O1 never costs more than O0.
  EXPECT_LE(r1.result.steps, r0.result.steps) << source;
  EXPECT_LE(r1.result.max_stack, r0.result.max_stack) << source;
  return DiffPair{r0.result, r1.result, stats};
}

DiffPair run_diff_empty(std::string_view source, const ExecLimits& limits = {},
                        std::uint64_t seed = 7) {
  StateSchema schema;
  return run_diff(source, schema, StateBlock{}, StateBlock{}, StateBlock{},
                  limits, seed);
}

TEST(OptimizerDiff, PureExpressionCorpus) {
  const char* corpus[] = {
      "fun(p) -> 0",
      "fun(p) -> 1 + 2 * 3 - 4 / 2 % 3",
      "fun(p) -> (1 + 2) * (3 - 4)",
      "fun(p) -> -9223372036854775807 - 1",
      "fun(p) -> 9223372036854775807 + 1",  // wraps identically
      "fun(p) -> (0 - 9223372036854775807 - 1) / (0 - 1)",  // INT64_MIN / -1
      "fun(p) -> (0 - 9223372036854775807 - 1) % (0 - 1)",
      "fun(p) -> 1 < 2 && 3 >= 3 || not true",
      "fun(p) -> if 2 > 1 then 10 elif 1 > 2 then 20 else 30",
      "fun(p) -> let x = 5 in let y = x * x in y - x",
      "fun(p) -> let x = 1 in (x <- x + 1; x <- x * 10; x)",
      "fun(p) -> let i = 0 in let s = 0 in "
      "(while i < 25 do s <- s + i * i; i <- i + 1 done; s)",
      "fun(p) -> let f(a, b) = a * 10 + b in f(f(1, 2), 3)",
      "fun(p) -> let rec fib(n) = if n < 2 then n else fib(n-1) + fib(n-2) "
      "in fib(12)",
      "fun(p) -> let rec gcd(a, b) = if b = 0 then a else gcd(b, a % b) in "
      "gcd(252, 105)",
      "fun(p) -> let k = 3 in let addk(x) = x + k in addk(addk(addk(0)))",
      "fun(p) -> min(3, max(1, 2)) + abs(0 - 7)",
      "fun(p) -> (1; 2; 3; 4)",
      "fun(p) -> let u = (if false then 1) in u",
      "fun(p) -> true && 7",
      "fun(p) -> rand(10) + rand(10)",  // same seed -> same draws
  };
  for (const char* source : corpus) {
    SCOPED_TRACE(source);
    run_diff_empty(source);
  }
}

TEST(OptimizerDiff, StatefulCorpus) {
  const StateSchema schema = testing::pias_schema();
  auto pkt = StateBlock::from_schema(schema, Scope::packet);
  auto msg = StateBlock::from_schema(schema, Scope::message);
  auto glb = StateBlock::from_schema(schema, Scope::global);
  pkt.scalars[0] = 1460;  // size
  msg.scalars[0] = 9000;  // msg.size
  msg.scalars[1] = 1;     // msg.priority
  glb.arrays[0].stride = 2;
  glb.arrays[0].data = {10240, 7, 1048576, 5};

  const char* corpus[] = {
      testing::kPiasSource,
      "fun(p, m, g) -> m.size <- m.size + p.size; m.size",
      "fun(p, m, g) -> p.priority <- g.priorities[1].priority",
      "fun(p, m, g) -> len(g.priorities) + g.priorities.length",
      "fun(p, m, g) -> let t = g.priorities in t[0].limit + t[1].priority",
      "fun(p, m, g) -> if m.size > 8000 then (p.priority <- 5; 1) else 0",
      "fun(p, m, g) -> let i = 0 in (while i < len(g.priorities) do "
      "p.priority <- p.priority + g.priorities[i].limit; i <- i + 1 done; "
      "p.priority)",
  };
  for (const char* source : corpus) {
    SCOPED_TRACE(source);
    run_diff(source, schema, pkt, msg, glb);
  }
}

// Traps must survive optimization: same status at both levels.
TEST(OptimizerDiff, TrapCorpus) {
  struct Case {
    const char* source;
    ExecStatus expected;
  };
  const Case corpus[] = {
      {"fun(p) -> 1 / 0", ExecStatus::div_by_zero},
      {"fun(p) -> 5 % (3 - 3)", ExecStatus::div_by_zero},
      {"fun(p) -> let x = 0 in 7 / x", ExecStatus::div_by_zero},
      {"fun(p) -> rand(0)", ExecStatus::bad_rand_bound},
      {"fun(p) -> rand(0 - 5)", ExecStatus::bad_rand_bound},
      {"fun(p) -> let rec f(n) = 1 + f(n + 1) in f(0)",
       ExecStatus::call_depth_exceeded},
  };
  for (const Case& c : corpus) {
    SCOPED_TRACE(c.source);
    const DiffPair r = run_diff_empty(c.source);
    EXPECT_EQ(r.o0.status, c.expected);
    EXPECT_EQ(r.o1.status, c.expected);
  }
}

TEST(OptimizerDiff, ArrayBoundsTrapsSurvive) {
  const StateSchema schema = testing::pias_schema();
  auto pkt = StateBlock::from_schema(schema, Scope::packet);
  auto msg = StateBlock::from_schema(schema, Scope::message);
  auto glb = StateBlock::from_schema(schema, Scope::global);
  glb.arrays[0].stride = 2;
  glb.arrays[0].data = {10240, 7};

  const DiffPair over = run_diff("fun(p, m, g) -> g.priorities[5].limit",
                                 schema, pkt, msg, glb);
  EXPECT_EQ(over.o1.status, ExecStatus::out_of_bounds);
  const DiffPair neg = run_diff("fun(p, m, g) -> g.priorities[0 - 1].limit",
                                schema, pkt, msg, glb);
  EXPECT_EQ(neg.o1.status, ExecStatus::out_of_bounds);
}

TEST(OptimizerDiff, FuelExhaustionTrapsAtBothLevels) {
  ExecLimits limits;
  limits.max_steps = 10000;
  const DiffPair r = run_diff_empty("fun(p) -> while true do 0 done", limits);
  EXPECT_EQ(r.o0.status, ExecStatus::fuel_exhausted);
  EXPECT_EQ(r.o1.status, ExecStatus::fuel_exhausted);
  // Weighted step accounting: both levels bill the full budget.
  EXPECT_EQ(r.o0.steps, 10000u);
  EXPECT_EQ(r.o1.steps, 10000u);
}

// A program touching a scope whose block is null fails identically.
TEST(OptimizerDiff, NullBlockTrapsSurvive) {
  const StateSchema schema = testing::pias_schema();
  const CompiledProgram o0 =
      compile_source("fun(p, m, g) -> m.size <- m.size + 1", schema);
  const CompiledProgram o1 = optimize(o0, OptLevel::O1);
  auto pkt = StateBlock::from_schema(schema, Scope::packet);
  Interpreter interp;
  StateBlock p0 = pkt, p1 = pkt;
  const ExecResult r0 = interp.execute(o0, &p0, nullptr, nullptr);
  const ExecResult r1 = interp.execute(o1, &p1, nullptr, nullptr);
  EXPECT_EQ(r0.status, ExecStatus::bad_state_slot);
  EXPECT_EQ(r1.status, ExecStatus::bad_state_slot);
}

// O1 output must also agree with the reference AST evaluator — closing
// the loop parser -> compiler -> optimizer -> interpreter.
TEST(OptimizerDiff, OptimizedAgreesWithAstEval) {
  for (const auto& fn : functions::all_functions()) {
    SCOPED_TRACE(fn->name());
    const StateSchema schema = core::make_enclave_schema(fn->global_fields());
    auto pkt = StateBlock::from_schema(schema, Scope::packet);
    auto msg = StateBlock::from_schema(schema, Scope::message);
    auto glb = StateBlock::from_schema(schema, Scope::global);
    util::Rng vary(1234);
    pkt.scalars[core::PacketSlot::size] = vary.range(54, 1514);
    pkt.scalars[core::PacketSlot::dst] = vary.range(0, 3);
    pkt.scalars[core::PacketSlot::dst_port] = vary.range(1000, 1005);
    msg.scalars[core::MessageSlot::size] = vary.range(0, 2000000);
    msg.scalars[core::MessageSlot::priority] = vary.range(0, 2);
    for (auto& arr : glb.arrays) {
      for (int r = 0; r < 3 * arr.stride; ++r) {
        arr.data.push_back(vary.range(0, 1000));
      }
    }

    const Program ast = parse(fn->source());
    const CompiledProgram o1 =
        optimize(compile(ast, schema), OptLevel::O1);

    StateBlock bc_pkt = pkt, bc_msg = msg, bc_glb = glb;
    Interpreter interp(ExecLimits{}, /*seed=*/99);
    const ExecResult bc =
        interp.execute(o1, &bc_pkt, &bc_msg, &bc_glb);

    util::Rng rng(99);
    const ExecResult ref = ast_eval(ast, schema, &pkt, &msg, &glb, rng);

    EXPECT_EQ(bc.status, ref.status);
    if (bc.status == ExecStatus::ok) {
      EXPECT_EQ(bc.value, ref.value);
      EXPECT_EQ(bc_pkt.scalars, pkt.scalars);
      EXPECT_EQ(bc_msg.scalars, msg.scalars);
      EXPECT_EQ(bc_glb.scalars, glb.scalars);
    }
  }
}

// CompileOptions::opt_level runs the same pipeline inside compile().
TEST(Optimizer, CompileOptionsOptLevel) {
  StateSchema schema;
  CompileOptions o1;
  o1.opt_level = OptLevel::O1;
  const CompiledProgram direct =
      compile_source("fun(p) -> 1 + 2 * 3", schema);
  const CompiledProgram optimized =
      compile_source("fun(p) -> 1 + 2 * 3", schema, o1);
  EXPECT_LT(optimized.code.size(), direct.code.size());
  Interpreter interp;
  EXPECT_EQ(interp.execute(optimized, nullptr, nullptr, nullptr).value, 7);
}

// --- Structural checks on the individual passes -------------------------

TEST(Optimizer, FoldsConstantExpressions) {
  StateSchema schema;
  OptStats stats;
  const CompiledProgram o1 = optimize(
      compile_source("fun(p) -> 1 + 2 * 3 - 4", schema), OptLevel::O1,
      &stats);
  EXPECT_GT(stats.constants_folded, 0u);
  // The whole expression reduces to push 3; halt.
  ASSERT_EQ(o1.code.size(), 2u);
  EXPECT_EQ(o1.code[0].op, Op::push);
  EXPECT_EQ(o1.code[0].imm, 3);
  EXPECT_EQ(o1.code[1].op, Op::halt);
}

TEST(Optimizer, DivByZeroIsNeverFolded) {
  StateSchema schema;
  const CompiledProgram o1 =
      optimize(compile_source("fun(p) -> 1 / 0", schema), OptLevel::O1);
  Interpreter interp;
  EXPECT_EQ(interp.execute(o1, nullptr, nullptr, nullptr).status,
            ExecStatus::div_by_zero);
}

TEST(Optimizer, FusesComparisonBranches) {
  const StateSchema schema = testing::pias_schema();
  OptStats stats;
  const CompiledProgram o1 = optimize(
      compile_source("fun(p, m, g) -> if p.size < 100 then 1 else 2",
                     schema),
      OptLevel::O1, &stats);
  EXPECT_GT(stats.fused, 0u);
  bool has_fused = false;
  for (const Instr& i : o1.code) has_fused |= is_fused_op(i.op);
  EXPECT_TRUE(has_fused);
}

TEST(Optimizer, FusedStepCostMatchesReplacedInstructions) {
  // Hand-built so only fusion applies: load_state; push 5; add; halt
  // becomes load_state; add_imm 5; halt — and must bill identically.
  const StateSchema schema = testing::pias_schema();
  CompiledProgram p;
  p.code = {
      {Op::load_state, state_operand(Scope::packet, 0), 0},
      {Op::push, 0, 5},
      {Op::add, 0, 0},
      {Op::halt, 0, 0},
  };
  p.functions.push_back({"main", 0, 0, 0});
  p.usage.scalar_read[static_cast<int>(Scope::packet)] = 1;

  OptStats stats;
  const CompiledProgram o1 = optimize(p, OptLevel::O1, &stats);
  ASSERT_EQ(o1.code.size(), 3u);
  EXPECT_EQ(o1.code[1].op, Op::add_imm);
  EXPECT_EQ(stats.fused, 1u);

  auto pkt = StateBlock::from_schema(schema, Scope::packet);
  pkt.scalars[0] = 37;
  Interpreter interp;
  StateBlock pkt0 = pkt, pkt1 = pkt;
  const ExecResult r0 = interp.execute(p, &pkt0, nullptr, nullptr);
  const ExecResult r1 = interp.execute(o1, &pkt1, nullptr, nullptr);
  EXPECT_EQ(r0.value, 42);
  EXPECT_EQ(r1.value, 42);
  // add_imm costs 2: total steps identical though one dispatch fewer ran.
  EXPECT_EQ(r0.steps, 4u);
  EXPECT_EQ(r1.steps, 4u);
  EXPECT_EQ(op_step_cost(Op::add_imm), 2u);
}

TEST(Optimizer, ThreadsJumpChains) {
  CompiledProgram p;
  p.code = {
      {Op::jmp, 2, 0},   // 0: -> 2
      {Op::halt, 0, 0},  // 1: dead
      {Op::jmp, 4, 0},   // 2: -> 4
      {Op::halt, 0, 0},  // 3: dead
      {Op::push, 0, 7},  // 4:
      {Op::halt, 0, 0},  // 5:
  };
  p.functions.push_back({"main", 0, 0, 0});
  OptStats stats;
  const CompiledProgram o1 = optimize(p, OptLevel::O1, &stats);
  EXPECT_GT(stats.jumps_threaded, 0u);
  Interpreter interp;
  const ExecResult r = interp.execute(o1, nullptr, nullptr, nullptr);
  EXPECT_EQ(r.value, 7);
}

TEST(Optimizer, EliminatesDeadPushPop) {
  CompiledProgram p;
  p.code = {
      {Op::push, 0, 42},
      {Op::pop, 0, 0},
      {Op::push, 0, 9},
      {Op::halt, 0, 0},
  };
  p.functions.push_back({"main", 0, 0, 0});
  OptStats stats;
  const CompiledProgram o1 = optimize(p, OptLevel::O1, &stats);
  EXPECT_GT(stats.dead_eliminated, 0u);
  ASSERT_EQ(o1.code.size(), 2u);
  Interpreter interp;
  EXPECT_EQ(interp.execute(o1, nullptr, nullptr, nullptr).value, 9);
}

TEST(Optimizer, O0IsIdentity) {
  StateSchema schema;
  const CompiledProgram o0 =
      compile_source("fun(p) -> 1 + 2 * 3", schema);
  const CompiledProgram same = optimize(o0, OptLevel::O0);
  ASSERT_EQ(same.code.size(), o0.code.size());
  for (std::size_t i = 0; i < o0.code.size(); ++i) {
    EXPECT_EQ(same.code[i].op, o0.code[i].op);
    EXPECT_EQ(same.code[i].a, o0.code[i].a);
    EXPECT_EQ(same.code[i].imm, o0.code[i].imm);
  }
}

// A malformed program must come out of the optimizer no more malformed:
// the out-of-range jump still traps.
TEST(Optimizer, MalformedProgramStillTraps) {
  CompiledProgram p;
  p.code = {
      {Op::jmp, 99, 0},
      {Op::halt, 0, 0},
  };
  p.functions.push_back({"main", 0, 0, 0});
  const CompiledProgram o1 = optimize(p, OptLevel::O1);
  Interpreter interp;
  EXPECT_EQ(interp.execute(o1, nullptr, nullptr, nullptr).status,
            ExecStatus::invalid_program);
}

// --- Install-time verification ------------------------------------------

TEST(Verifier, AcceptsAndTrustsLibraryFunctions) {
  const ExecLimits limits;
  for (const auto& fn : functions::all_functions()) {
    SCOPED_TRACE(fn->name());
    const StateSchema schema = core::make_enclave_schema(fn->global_fields());
    CompiledProgram o1 =
        optimize(compile_source(fn->source(), schema), OptLevel::O1);
    ASSERT_NO_THROW(verify_program(o1, schema, limits));

    // Trusted dispatch must behave exactly like the untrusted path.
    auto pkt = StateBlock::from_schema(schema, Scope::packet);
    auto msg = StateBlock::from_schema(schema, Scope::message);
    auto glb = StateBlock::from_schema(schema, Scope::global);
    pkt.scalars[core::PacketSlot::size] = 1000;
    for (auto& arr : glb.arrays) {
      arr.data.assign(static_cast<std::size_t>(2) * arr.stride, 3);
    }

    StateBlock up = pkt, um = msg, ug = glb;
    Interpreter untrusted_interp(limits, 5);
    const ExecResult untrusted =
        untrusted_interp.execute(o1, &up, &um, &ug);

    o1.preverified = true;
    StateBlock tp = pkt, tm = msg, tg = glb;
    Interpreter trusted_interp(limits, 5);
    const ExecResult trusted = trusted_interp.execute(o1, &tp, &tm, &tg);

    EXPECT_EQ(trusted.status, untrusted.status);
    EXPECT_EQ(trusted.value, untrusted.value);
    EXPECT_EQ(trusted.steps, untrusted.steps);
    EXPECT_EQ(tp.scalars, up.scalars);
    EXPECT_EQ(tm.scalars, um.scalars);
    EXPECT_EQ(tg.scalars, ug.scalars);
  }
}

TEST(Verifier, RejectsStructurallyInvalidPrograms) {
  const StateSchema schema = testing::pias_schema();
  const ExecLimits limits;

  const auto rejects = [&](CompiledProgram p) {
    EXPECT_THROW(verify_program(p, schema, limits), LangError);
  };

  CompiledProgram base;
  base.code = {{Op::halt, 0, 0}};
  base.functions.push_back({"main", 0, 0, 0});
  ASSERT_NO_THROW(verify_program(base, schema, limits));

  {
    CompiledProgram p = base;  // branch target out of range
    p.code = {{Op::jmp, 5, 0}, {Op::halt, 0, 0}};
    rejects(std::move(p));
  }
  {
    CompiledProgram p = base;  // opcode byte beyond the table
    p.code = {{static_cast<Op>(kMaxOpByte + 1), 0, 0}, {Op::halt, 0, 0}};
    rejects(std::move(p));
  }
  {
    CompiledProgram p = base;  // state slot outside the schema
    p.code = {{Op::load_state, state_operand(Scope::packet, 99), 0},
              {Op::halt, 0, 0}};
    rejects(std::move(p));
  }
  {
    CompiledProgram p = base;  // call to missing function
    p.code = {{Op::call, 3, 0}, {Op::halt, 0, 0}};
    rejects(std::move(p));
  }
  {
    CompiledProgram p = base;  // nargs > nlocals would overrun the frame
    p.functions.push_back({"f", 0, 4, 2});
    rejects(std::move(p));
  }
  {
    CompiledProgram p = base;  // local slot beyond max_locals
    p.code = {{Op::load_local,
               static_cast<std::int32_t>(limits.max_locals), 0},
              {Op::halt, 0, 0}};
    rejects(std::move(p));
  }
  {
    CompiledProgram p = base;  // control can run off the end
    p.code = {{Op::push, 0, 1}};
    rejects(std::move(p));
  }
  {
    CompiledProgram p = base;  // empty program
    p.code.clear();
    rejects(std::move(p));
  }
  {
    CompiledProgram p = base;  // no functions
    p.functions.clear();
    rejects(std::move(p));
  }
}

// --- Wire round-trip with fused opcodes ---------------------------------

TEST(OptimizerWire, FusedProgramRoundTrips) {
  const StateSchema schema = testing::pias_schema();
  const CompiledProgram o1 = optimize(
      compile_source(testing::kPiasSource, schema), OptLevel::O1);
  bool has_fused = false;
  for (const Instr& i : o1.code) has_fused |= is_fused_op(i.op);
  ASSERT_TRUE(has_fused);

  const std::vector<std::uint8_t> bytes = o1.serialize();
  // "EDBC" magic, then a little-endian u32 version: 2 for fused tier.
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes[4], 2);
  const CompiledProgram back = CompiledProgram::deserialize(bytes);

  // Disassembly (which covers every operand) must match exactly.
  EXPECT_EQ(disassemble(back), disassemble(o1));
  EXPECT_EQ(back.concurrency, o1.concurrency);

  // Trust is never serialized; the receiver must re-verify.
  CompiledProgram trusted = o1;
  verify_program(trusted, schema, ExecLimits{});
  trusted.preverified = true;
  const CompiledProgram retrip =
      CompiledProgram::deserialize(trusted.serialize());
  EXPECT_FALSE(retrip.preverified);

  // And the deserialized program still executes identically.
  auto pkt = StateBlock::from_schema(schema, Scope::packet);
  auto msg = StateBlock::from_schema(schema, Scope::message);
  auto glb = StateBlock::from_schema(schema, Scope::global);
  pkt.scalars[0] = 1460;
  glb.arrays[0].stride = 2;
  glb.arrays[0].data = {10240, 7, 1048576, 5};
  Interpreter interp;
  StateBlock ap = pkt, am = msg, ag = glb;
  StateBlock bp = pkt, bm = msg, bg = glb;
  const ExecResult ra = interp.execute(o1, &ap, &am, &ag);
  const ExecResult rb = interp.execute(back, &bp, &bm, &bg);
  EXPECT_EQ(ra.status, rb.status);
  EXPECT_EQ(ra.value, rb.value);
  EXPECT_EQ(ap.scalars, bp.scalars);
}

TEST(OptimizerWire, UnoptimizedProgramStaysVersion1) {
  StateSchema schema;
  const CompiledProgram o0 = compile_source("fun(p) -> 1 + 2", schema);
  const std::vector<std::uint8_t> bytes = o0.serialize();
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes[4], 1);
}

}  // namespace
}  // namespace eden::lang
