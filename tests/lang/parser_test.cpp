#include "lang/parser.h"

#include <gtest/gtest.h>

namespace eden::lang {
namespace {

TEST(Parser, MinimalFunction) {
  const Program p = parse("fun(packet) -> 42");
  ASSERT_EQ(p.params.size(), 1u);
  EXPECT_EQ(p.params[0].name, "packet");
  ASSERT_NE(p.body, nullptr);
  EXPECT_EQ(p.body->kind, ExprKind::int_literal);
  EXPECT_EQ(p.body->int_value, 42);
}

TEST(Parser, TypedParameters) {
  const Program p =
      parse("fun(packet : Packet, msg : Message, g : Global) -> 0");
  ASSERT_EQ(p.params.size(), 3u);
  EXPECT_EQ(p.params[1].type_name, "Message");
}

TEST(Parser, LetBindingAndBody) {
  const Program p = parse("fun(p) -> let x = 1 + 2 in x * 3");
  EXPECT_EQ(p.body->kind, ExprKind::let);
  EXPECT_EQ(p.body->name, "x");
  EXPECT_EQ(p.body->children[0]->kind, ExprKind::binary);
  EXPECT_EQ(p.body->children[1]->kind, ExprKind::binary);
}

TEST(Parser, LetRecRequiresFunction) {
  EXPECT_THROW(parse("fun(p) -> let rec x = 1 in x"), LangError);
}

TEST(Parser, LocalFunctionDefinition) {
  const Program p =
      parse("fun(p) -> let rec f(n) = if n <= 0 then 0 else f(n - 1) in f(3)");
  EXPECT_EQ(p.body->kind, ExprKind::let_fun);
  EXPECT_TRUE(p.body->is_recursive);
  ASSERT_EQ(p.body->fun_params.size(), 1u);
  EXPECT_EQ(p.body->fun_params[0].name, "n");
}

TEST(Parser, ElifChainsDesugarToNestedIf) {
  const Program p = parse(
      "fun(p) -> if 1 then 10 elif 2 then 20 elif 3 then 30 else 40");
  const Expr* e = p.body.get();
  ASSERT_EQ(e->kind, ExprKind::if_else);
  const Expr* first_else = e->children[2].get();
  ASSERT_NE(first_else, nullptr);
  ASSERT_EQ(first_else->kind, ExprKind::if_else);
  const Expr* second_else = first_else->children[2].get();
  ASSERT_NE(second_else, nullptr);
  ASSERT_EQ(second_else->kind, ExprKind::if_else);
  EXPECT_EQ(second_else->children[2]->int_value, 40);
}

TEST(Parser, IfWithoutElse) {
  const Program p = parse("fun(p) -> if 1 then 2");
  EXPECT_EQ(p.body->children[2], nullptr);
}

TEST(Parser, AssignmentRequiresPathOnLeft) {
  EXPECT_THROW(parse("fun(p) -> 1 <- 2"), LangError);
  EXPECT_THROW(parse("fun(p) -> (1 + 2) <- 3"), LangError);
}

TEST(Parser, AssignmentToPath) {
  const Program p = parse("fun(p) -> p.priority <- 3");
  EXPECT_EQ(p.body->kind, ExprKind::assign);
  EXPECT_EQ(p.body->path.root, "p");
  ASSERT_EQ(p.body->path.elems.size(), 1u);
  EXPECT_EQ(p.body->path.elems[0].field, "priority");
}

TEST(Parser, SequencesWithSemicolon) {
  const Program p = parse("fun(p) -> p.a <- 1; p.b <- 2; 99");
  ASSERT_EQ(p.body->kind, ExprKind::sequence);
  EXPECT_EQ(p.body->children.size(), 3u);
}

TEST(Parser, ParenthesizedSequence) {
  const Program p = parse("fun(p) -> if 1 then (p.a <- 1; 2) else 3");
  const Expr* then_branch = p.body->children[1].get();
  EXPECT_EQ(then_branch->kind, ExprKind::sequence);
}

TEST(Parser, PathWithIndexAndField) {
  const Program p = parse("fun(p, m, g) -> g.priorities[2].limit");
  ASSERT_EQ(p.body->kind, ExprKind::path_read);
  const Path& path = p.body->path;
  EXPECT_EQ(path.root, "g");
  ASSERT_EQ(path.elems.size(), 3u);
  EXPECT_EQ(path.elems[0].field, "priorities");
  ASSERT_NE(path.elems[1].index, nullptr);
  EXPECT_EQ(path.elems[2].field, "limit");
}

TEST(Parser, FSharpDotBracketIndexing) {
  const Program p = parse("fun(p, m, g) -> g.weights.[3]");
  ASSERT_EQ(p.body->path.elems.size(), 2u);
  ASSERT_NE(p.body->path.elems[1].index, nullptr);
}

TEST(Parser, CallWithArguments) {
  const Program p = parse("fun(p) -> min(p.size, 1500)");
  ASSERT_EQ(p.body->kind, ExprKind::call);
  EXPECT_EQ(p.body->name, "min");
  EXPECT_EQ(p.body->children.size(), 2u);
}

TEST(Parser, WhileLoop) {
  const Program p = parse("fun(p) -> let i = 0 in while i < 10 do i <- i + 1 done");
  const Expr* body = p.body->children[1].get();
  ASSERT_EQ(body->kind, ExprKind::while_loop);
}

TEST(Parser, OperatorPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3)
  const Program p = parse("fun(p) -> 1 + 2 * 3");
  const Expr* e = p.body.get();
  ASSERT_EQ(e->kind, ExprKind::binary);
  EXPECT_EQ(e->binary_op, BinaryOp::add);
  EXPECT_EQ(e->children[1]->binary_op, BinaryOp::mul);
}

TEST(Parser, ComparisonDoesNotChain) {
  EXPECT_THROW(parse("fun(p) -> 1 < 2 < 3"), LangError);
}

TEST(Parser, LogicalPrecedence) {
  // a || b && c parses as a || (b && c)
  const Program p = parse("fun(p) -> 1 || 0 && 0");
  EXPECT_EQ(p.body->binary_op, BinaryOp::logical_or);
  EXPECT_EQ(p.body->children[1]->binary_op, BinaryOp::logical_and);
}

TEST(Parser, UnaryMinusAndNot) {
  const Program p = parse("fun(p) -> not -1");
  EXPECT_EQ(p.body->kind, ExprKind::unary);
  EXPECT_EQ(p.body->unary_op, UnaryOp::logical_not);
  EXPECT_EQ(p.body->children[0]->unary_op, UnaryOp::neg);
}

TEST(Parser, MissingArrowIsError) {
  EXPECT_THROW(parse("fun(p) 42"), LangError);
}

TEST(Parser, TrailingTokensAreError) {
  EXPECT_THROW(parse("fun(p) -> 42 43"), LangError);
}

TEST(Parser, ErrorsCarryLocation) {
  try {
    parse("fun(p) ->\n  let x = in 3");
    FAIL() << "expected LangError";
  } catch (const LangError& e) {
    EXPECT_EQ(e.loc().line, 2u);
  }
}

}  // namespace
}  // namespace eden::lang
