#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace eden::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(3);
  int counts[10] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.15);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / kDraws, 250.0, 5.0);
}

TEST(Rng, WeightedChoiceFollowsWeights) {
  Rng rng(17);
  const double weights[] = {1.0, 9.0};
  int hits[2] = {};
  for (int i = 0; i < 100000; ++i) ++hits[rng.weighted_choice(weights)];
  EXPECT_NEAR(static_cast<double>(hits[1]) / (hits[0] + hits[1]), 0.9, 0.02);
}

TEST(Rng, WeightedChoiceHandlesZeroWeight) {
  Rng rng(19);
  const double weights[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.weighted_choice(weights), 1u);
  }
}

TEST(Summary, MeanAndVariance) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.ci95(), 0.0);
}

TEST(Summary, Ci95ShrinksWithSamples) {
  Rng rng(23);
  Summary small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95(), large.ci95());
}

TEST(Percentiles, QuantilesInterpolate) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 100.0);
  EXPECT_NEAR(p.quantile(0.5), 50.5, 0.01);
  EXPECT_NEAR(p.p95(), 95.05, 0.01);
}

TEST(Percentiles, UnsortedInputHandled) {
  Percentiles p;
  p.add(30);
  p.add(10);
  p.add(20);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(p.mean(), 20.0);
}

TEST(Percentiles, AddAfterQueryResorts) {
  Percentiles p;
  p.add(5);
  EXPECT_DOUBLE_EQ(p.p95(), 5.0);
  p.add(1);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.add_row({"name", "value"});
  t.add_row({"alpha", "1.0"});
  t.add_row({"b", "22.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha |   1.0"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(FmtFormatsDecimals, Basic) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(10.0, 0), "10");
}

}  // namespace
}  // namespace eden::util
