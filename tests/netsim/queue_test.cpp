#include "netsim/queue.h"

#include <gtest/gtest.h>

namespace eden::netsim {
namespace {

PacketPtr packet_of(std::uint32_t bytes, std::uint8_t priority = 0) {
  PacketPtr p = make_packet();
  p->size_bytes = bytes;
  p->priority = priority;
  return p;
}

TEST(PriorityQueueSet, FifoWithinOnePriority) {
  PriorityQueueSet q;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    auto p = packet_of(100);
    p->debug_id = i;
    q.enqueue(std::move(p));
  }
  for (std::uint64_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(q.dequeue()->debug_id, i);
  }
  EXPECT_EQ(q.dequeue(), nullptr);
}

TEST(PriorityQueueSet, HigherPriorityServedFirst) {
  PriorityQueueSet q;
  q.enqueue(packet_of(100, 0));
  q.enqueue(packet_of(100, 5));
  q.enqueue(packet_of(100, 7));
  q.enqueue(packet_of(100, 5));
  EXPECT_EQ(q.dequeue()->priority, 7);
  EXPECT_EQ(q.dequeue()->priority, 5);
  EXPECT_EQ(q.dequeue()->priority, 5);
  EXPECT_EQ(q.dequeue()->priority, 0);
}

TEST(PriorityQueueSet, TailDropsWhenQueueFull) {
  QueueConfig cfg;
  cfg.per_queue_bytes = 250;
  PriorityQueueSet q(cfg);
  EXPECT_TRUE(q.enqueue(packet_of(100)));
  EXPECT_TRUE(q.enqueue(packet_of(100)));
  EXPECT_FALSE(q.enqueue(packet_of(100)));  // would exceed 250
  EXPECT_EQ(q.stats().dropped_packets, 1u);
  EXPECT_EQ(q.stats().dropped_bytes, 100u);
  EXPECT_EQ(q.stats().drops_per_priority[0], 1u);
}

TEST(PriorityQueueSet, DropInOneBandDoesNotAffectOthers) {
  QueueConfig cfg;
  cfg.per_queue_bytes = 150;
  PriorityQueueSet q(cfg);
  EXPECT_TRUE(q.enqueue(packet_of(100, 0)));
  EXPECT_FALSE(q.enqueue(packet_of(100, 0)));  // band 0 full
  EXPECT_TRUE(q.enqueue(packet_of(100, 7)));   // band 7 independent
}

TEST(PriorityQueueSet, ByteAccountingTracksOccupancy) {
  PriorityQueueSet q;
  q.enqueue(packet_of(100, 2));
  q.enqueue(packet_of(50, 4));
  EXPECT_EQ(q.total_bytes(), 150u);
  EXPECT_EQ(q.queued_bytes(2), 100u);
  EXPECT_EQ(q.queued_bytes(4), 50u);
  q.dequeue();  // priority 4 first
  EXPECT_EQ(q.total_bytes(), 100u);
  EXPECT_EQ(q.queued_bytes(4), 0u);
  EXPECT_EQ(q.total_packets(), 1u);
}

TEST(PriorityQueueSet, OutOfRangePriorityClampsToTop) {
  PriorityQueueSet q;
  auto p = packet_of(10);
  p->priority = 200;  // bogus
  EXPECT_TRUE(q.enqueue(std::move(p)));
  EXPECT_EQ(q.queued_bytes(kMaxPriorities - 1), 10u);
}

TEST(PriorityQueueSet, EmptyAfterDrain) {
  PriorityQueueSet q;
  EXPECT_TRUE(q.empty());
  q.enqueue(packet_of(10));
  EXPECT_FALSE(q.empty());
  q.dequeue();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace eden::netsim
