// Links, switches, routing: the network substrate end to end.
#include <gtest/gtest.h>

#include <algorithm>

#include "netsim/network.h"
#include "netsim/routing.h"

namespace eden::netsim {
namespace {

constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;

PacketPtr packet_to(HostId src, HostId dst, std::uint32_t bytes,
                    std::uint8_t prio = 0) {
  PacketPtr p = make_packet();
  p->src = src;
  p->dst = dst;
  p->size_bytes = bytes;
  p->priority = prio;
  return p;
}

TEST(Network, DirectLinkDeliversWithSerializationAndPropagation) {
  Network net;
  auto& a = net.add_host("a");
  auto& b = net.add_host("b");
  net.connect(a, b, 1 * kGbps, 500);

  SimTime arrival = -1;
  b.set_deliver([&](PacketPtr) { arrival = net.now(); });
  a.transmit(packet_to(a.id(), b.id(), 1250));  // 10 us at 1 Gbps
  net.scheduler().run();
  EXPECT_EQ(arrival, 10000 + 500);
  EXPECT_EQ(b.rx_packets(), 1u);
  EXPECT_EQ(b.rx_bytes(), 1250u);
}

TEST(Network, BackToBackPacketsSerializeSequentially) {
  Network net;
  auto& a = net.add_host("a");
  auto& b = net.add_host("b");
  net.connect(a, b, 1 * kGbps, 0);

  std::vector<SimTime> arrivals;
  b.set_deliver([&](PacketPtr) { arrivals.push_back(net.now()); });
  a.transmit(packet_to(a.id(), b.id(), 1250));
  a.transmit(packet_to(a.id(), b.id(), 1250));
  net.scheduler().run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 10000);
  EXPECT_EQ(arrivals[1], 20000);  // second waits for the first
}

TEST(Network, DuplicateNamesRejected) {
  Network net;
  net.add_host("x");
  EXPECT_THROW(net.add_host("x"), std::invalid_argument);
  EXPECT_THROW(net.add_switch("x"), std::invalid_argument);
}

TEST(Network, FindByName) {
  Network net;
  auto& h = net.add_host("host1");
  EXPECT_EQ(net.find("host1"), &h);
  EXPECT_EQ(net.find("nope"), nullptr);
}

class StarTopology : public ::testing::Test {
 protected:
  void SetUp() override {
    h1_ = &net_.add_host("h1");
    h2_ = &net_.add_host("h2");
    h3_ = &net_.add_host("h3");
    sw_ = &net_.add_switch("sw");
    net_.connect(*h1_, *sw_, 10 * kGbps, 1000);
    net_.connect(*h2_, *sw_, 10 * kGbps, 1000);
    net_.connect(*h3_, *sw_, 10 * kGbps, 1000);
    routing_.install_dest_routes();
  }

  Network net_;
  Routing routing_{net_};
  HostNode* h1_ = nullptr;
  HostNode* h2_ = nullptr;
  HostNode* h3_ = nullptr;
  SwitchNode* sw_ = nullptr;
};

TEST_F(StarTopology, SwitchForwardsByDestination) {
  int got2 = 0, got3 = 0;
  h2_->set_deliver([&](PacketPtr) { ++got2; });
  h3_->set_deliver([&](PacketPtr) { ++got3; });
  h1_->transmit(packet_to(h1_->id(), h2_->id(), 100));
  h1_->transmit(packet_to(h1_->id(), h3_->id(), 100));
  h1_->transmit(packet_to(h1_->id(), h3_->id(), 100));
  net_.scheduler().run();
  EXPECT_EQ(got2, 1);
  EXPECT_EQ(got3, 2);
  EXPECT_EQ(sw_->stats().forwarded, 3u);
}

TEST_F(StarTopology, UnroutableDestinationIsDroppedAndCounted) {
  h1_->transmit(packet_to(h1_->id(), 999, 100));
  net_.scheduler().run();
  EXPECT_EQ(sw_->stats().no_route_drops, 1u);
}

TEST_F(StarTopology, PriorityPreemptsAtCongestedPort) {
  // Saturate sw->h2 with low-priority packets, then inject one
  // high-priority packet; it must overtake the queued ones.
  std::vector<std::uint8_t> order;
  h2_->set_deliver([&](PacketPtr p) { order.push_back(p->priority); });
  for (int i = 0; i < 10; ++i) {
    h1_->transmit(packet_to(h1_->id(), h2_->id(), 1500, 0));
  }
  h3_->transmit(packet_to(h3_->id(), h2_->id(), 1500, 7));
  net_.scheduler().run();
  ASSERT_EQ(order.size(), 11u);
  // The high-priority packet arrives well before the last bulk packet.
  const auto hipri_pos = static_cast<std::size_t>(
      std::find(order.begin(), order.end(), 7) - order.begin());
  EXPECT_LT(hipri_pos, 4u);
}

TEST(Routing, EnumeratesAllSimplePathsWithBottlenecks) {
  // Diamond: h1 - a - {b (10G), c (1G)} - d - h2.
  Network net;
  auto& h1 = net.add_host("h1");
  auto& h2 = net.add_host("h2");
  auto& a = net.add_switch("a");
  auto& b = net.add_switch("b");
  auto& c = net.add_switch("c");
  auto& d = net.add_switch("d");
  net.connect(h1, a, 20 * kGbps, 0);
  net.connect(a, b, 10 * kGbps, 0);
  net.connect(a, c, 1 * kGbps, 0);
  net.connect(b, d, 10 * kGbps, 0);
  net.connect(c, d, 1 * kGbps, 0);
  net.connect(d, h2, 20 * kGbps, 0);

  Routing routing(net);
  routing.install_all_paths();
  const auto& paths = routing.paths(h1.id(), h2.id());
  ASSERT_EQ(paths.size(), 2u);
  // Sorted: same length, wider bottleneck first.
  EXPECT_EQ(paths[0].bottleneck_bps, 10 * kGbps);
  EXPECT_EQ(paths[1].bottleneck_bps, 1 * kGbps);
  EXPECT_NE(paths[0].label, paths[1].label);
  EXPECT_EQ(paths[0].hop_count(), 4);

  // Labels actually steer packets: send one packet per label and verify
  // it arrives (label tables installed in every switch on the path).
  int arrived = 0;
  h2.set_deliver([&](PacketPtr) { ++arrived; });
  for (const auto& path : paths) {
    auto p = make_packet();
    p->src = h1.id();
    p->dst = h2.id();
    p->size_bytes = 100;
    p->path_label = path.label;
    h1.transmit(std::move(p));
  }
  net.scheduler().run();
  EXPECT_EQ(arrived, 2);
  // The slow path's switches saw exactly one label-forwarded packet.
  EXPECT_EQ(c.stats().label_forwarded, 1u);
  EXPECT_EQ(b.stats().label_forwarded, 1u);
}

TEST(Routing, PathsBetweenUnknownHostsIsEmpty) {
  Network net;
  net.add_host("h1");
  Routing routing(net);
  routing.install_all_paths();
  EXPECT_TRUE(routing.paths(0, 42).empty());
}

TEST(Routing, EcmpHashKeepsFlowOnOnePath) {
  // Two parallel switches between h1 and h2; flow-hash ECMP must pin a
  // five-tuple to one of them.
  Network net;
  auto& h1 = net.add_host("h1");
  auto& h2 = net.add_host("h2");
  auto& s1 = net.add_switch("s1");
  auto& left = net.add_switch("left");
  auto& right = net.add_switch("right");
  auto& s2 = net.add_switch("s2");
  net.connect(h1, s1, 10 * kGbps, 0);
  net.connect(s1, left, 10 * kGbps, 0);
  net.connect(s1, right, 10 * kGbps, 0);
  net.connect(left, s2, 10 * kGbps, 0);
  net.connect(right, s2, 10 * kGbps, 0);
  net.connect(s2, h2, 10 * kGbps, 0);
  Routing routing(net);
  routing.install_dest_routes();

  h2.set_deliver([](PacketPtr) {});
  for (int i = 0; i < 50; ++i) {
    auto p = packet_to(h1.id(), h2.id(), 100);
    p->src_port = 1234;
    p->dst_port = 80;
    p->protocol = Protocol::tcp;
    h1.transmit(std::move(p));
  }
  net.scheduler().run();
  // All 50 packets of the flow went one way.
  const auto left_fwd = left.stats().forwarded;
  const auto right_fwd = right.stats().forwarded;
  EXPECT_EQ(left_fwd + right_fwd, 50u);
  EXPECT_TRUE(left_fwd == 0 || right_fwd == 0);
}

TEST(Routing, PerPacketSprayAlternates) {
  Network net;
  auto& h1 = net.add_host("h1");
  auto& h2 = net.add_host("h2");
  auto& s1 = net.add_switch("s1");
  s1.set_ecmp_mode(EcmpMode::per_packet_random);
  auto& left = net.add_switch("left");
  auto& right = net.add_switch("right");
  auto& s2 = net.add_switch("s2");
  net.connect(h1, s1, 10 * kGbps, 0);
  net.connect(s1, left, 10 * kGbps, 0);
  net.connect(s1, right, 10 * kGbps, 0);
  net.connect(left, s2, 10 * kGbps, 0);
  net.connect(right, s2, 10 * kGbps, 0);
  net.connect(s2, h2, 10 * kGbps, 0);
  Routing routing(net);
  routing.install_dest_routes();

  h2.set_deliver([](PacketPtr) {});
  for (int i = 0; i < 50; ++i) {
    h1.transmit(packet_to(h1.id(), h2.id(), 100));
  }
  net.scheduler().run();
  EXPECT_EQ(left.stats().forwarded, 25u);
  EXPECT_EQ(right.stats().forwarded, 25u);
}

}  // namespace
}  // namespace eden::netsim
