#include "netsim/event_queue.h"

#include <gtest/gtest.h>

namespace eden::netsim {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(30, [&] { order.push_back(3); });
  sched.at(10, [&] { order.push_back(1); });
  sched.at(20, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30);
}

TEST(Scheduler, SimultaneousEventsFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.at(100, [&order, i] { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, AfterSchedulesRelativeToNow) {
  Scheduler sched;
  SimTime fired_at = -1;
  sched.at(50, [&] {
    sched.after(25, [&] { fired_at = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(fired_at, 75);
}

TEST(Scheduler, PastEventsClampToNow) {
  Scheduler sched;
  SimTime fired_at = -1;
  sched.at(100, [&] {
    sched.at(10, [&] { fired_at = sched.now(); });  // in the past
  });
  sched.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Scheduler, CancelPreventsDispatch) {
  Scheduler sched;
  bool fired = false;
  const EventId id = sched.at(10, [&] { fired = true; });
  sched.cancel(id);
  sched.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, CancelIsIdempotentAndSafeAfterFire) {
  Scheduler sched;
  int fires = 0;
  const EventId id = sched.at(10, [&] { ++fires; });
  sched.run();
  sched.cancel(id);  // already fired: no-op
  sched.cancel(id);
  sched.cancel(kInvalidEvent);
  EXPECT_EQ(fires, 1);
}

TEST(Scheduler, RunUntilStopsAtHorizon) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(10, [&] { order.push_back(1); });
  sched.at(20, [&] { order.push_back(2); });
  sched.at(30, [&] { order.push_back(3); });
  EXPECT_EQ(sched.run_until(20), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.now(), 20);
  sched.run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(Scheduler, RunUntilAdvancesClockWhenIdle) {
  Scheduler sched;
  sched.run_until(500);
  EXPECT_EQ(sched.now(), 500);
}

TEST(Scheduler, RunUntilSkipsCancelledHeadWithoutOvershooting) {
  Scheduler sched;
  bool late_fired = false;
  const EventId head = sched.at(10, [] {});
  sched.at(100, [&] { late_fired = true; });
  sched.cancel(head);
  sched.run_until(50);
  // The cancelled event at t=10 must not cause the t=100 event to run.
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sched.now(), 50);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sched.after(1, chain);
  };
  sched.after(1, chain);
  sched.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sched.now(), 10);
}

TEST(TransmitTime, ComputesSerializationDelay) {
  // 1500 bytes at 10 Gbps = 1200 ns exactly.
  EXPECT_EQ(transmit_time(1500, 10ULL * 1000 * 1000 * 1000), 1200);
  // 1 byte on a fast link still takes nonzero time.
  EXPECT_GT(transmit_time(1, 100ULL * 1000 * 1000 * 1000), 0);
  EXPECT_EQ(transmit_time(100, 0), 0);  // infinite-rate convention
}

}  // namespace
}  // namespace eden::netsim
