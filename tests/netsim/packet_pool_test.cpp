// Packet pool arena: slot lifecycle, magazine exchange, exhaustion
// semantics and cross-thread recycling.
#include "netsim/packet_pool.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace eden::netsim {
namespace {

PacketPoolConfig small_pool(std::size_t capacity, std::size_t magazine = 4) {
  PacketPoolConfig c;
  c.capacity_slots = capacity;
  c.slab_slots = capacity;
  c.magazine_slots = magazine;
  return c;
}

TEST(PacketPool, MakeProducesFreshPackets) {
  PacketPool pool(small_pool(16));
  auto p = pool.make();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->src, 0u);
  EXPECT_EQ(p->meta.msg_id, 0);
  EXPECT_EQ(p->classes.size(), 0u);
  p->src = 7;
  p->meta.msg_id = 42;
  p->classes.add(3);
  auto q = pool.clone(*p);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->src, 7u);
  EXPECT_EQ(q->meta.msg_id, 42);
  EXPECT_TRUE(q->classes.contains(3));
}

TEST(PacketPool, RecycledSlotsComeBackZeroed) {
  PacketPool pool(small_pool(4, 2));
  Packet* first_addr = nullptr;
  {
    auto p = pool.make();
    p->src = 99;
    p->seq = 123456;
    p->classes.add(1);
    first_addr = p.get();
  }
  // The tiny pool guarantees the recycled slot is reused quickly.
  for (int i = 0; i < 8; ++i) {
    auto p = pool.make();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->src, 0u) << "stale field survived slot recycling";
    EXPECT_EQ(p->seq, 0u);
    EXPECT_EQ(p->classes.size(), 0u);
    if (p.get() == first_addr) return;  // proved reuse + re-init
  }
  // Reuse not observed is fine too (magazine order is unspecified); the
  // zero checks above are the invariant.
}

TEST(PacketPool, TryMakeReturnsNullWhenDry) {
  PacketPool pool(small_pool(8));
  std::vector<PacketPtr> held;
  for (std::size_t i = 0; i < 8; ++i) {
    auto p = pool.try_make();
    ASSERT_NE(p, nullptr) << "arena dry before capacity at slot " << i;
    held.push_back(std::move(p));
  }
  EXPECT_EQ(pool.try_make(), nullptr);
  EXPECT_EQ(pool.try_make(), nullptr);
  const auto dry = pool.stats();
  EXPECT_EQ(dry.exhausted_total, 2u);
  EXPECT_EQ(dry.heap_fallback_total, 0u);

  // Releasing one slot makes try_make succeed again.
  held.pop_back();
  EXPECT_NE(pool.try_make(), nullptr);
}

TEST(PacketPool, MakeFallsBackToHeapWhenDry) {
  PacketPool pool(small_pool(4));
  std::vector<PacketPtr> held;
  for (std::size_t i = 0; i < 4; ++i) held.push_back(pool.make());
  auto extra = pool.make();  // arena dry: heap fallback, never null
  ASSERT_NE(extra, nullptr);
  const auto s = pool.stats();
  EXPECT_EQ(s.heap_fallback_total, 1u);
  EXPECT_GE(s.exhausted_total, 1u);
}

TEST(PacketPool, StatsTrackInUseAcrossMagazines) {
  PacketPool pool(small_pool(64, 4));
  std::vector<PacketPtr> held;
  for (int i = 0; i < 32; ++i) held.push_back(pool.make());
  auto s = pool.stats();
  EXPECT_EQ(s.capacity_slots, 64u);
  EXPECT_LE(s.in_use, 32u + 4u);  // folding lags by at most one magazine
  EXPECT_GT(s.magazine_refills, 0u);
  held.clear();
  // Quiesce: one more round-trip folds the release counters.
  pool.make();
  s = pool.stats();
  EXPECT_LE(s.in_use, 4u);
}

TEST(PacketPool, CrossThreadReleaseRecyclesSlots) {
  // Producer allocates, consumer thread drops the last reference — the
  // DataPlane's actual topology. The slots must flow back and keep the
  // arena serviceable well past its capacity in total packets.
  PacketPool pool(small_pool(32, 4));
  for (int round = 0; round < 50; ++round) {
    std::vector<PacketPtr> batch;
    for (int i = 0; i < 16; ++i) {
      auto p = pool.make();
      ASSERT_NE(p, nullptr);
      batch.push_back(std::move(p));
    }
    std::thread consumer([moved = std::move(batch)]() mutable {
      moved.clear();  // release on a foreign thread
    });
    consumer.join();
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.heap_fallback_total, 0u);
  EXPECT_EQ(s.slots_materialized, 32u);
}

TEST(PacketPool, PacketsMayOutliveTheirPool) {
  // Destroying a pool with slots still out must not free the slabs:
  // the impl lingers (marked dying) until the last slot comes home, so
  // surviving PacketPtrs stay dereferenceable and their releases credit
  // the outstanding count instead of recycling. Exercised both from the
  // owning thread (slot returns to its existing magazine) and from a
  // foreign thread with no magazine (direct outstanding credit).
  PacketPtr survivor;
  PacketPtr foreign;
  {
    PacketPool pool(small_pool(8));
    survivor = pool.make();
    foreign = pool.make();
    ASSERT_NE(survivor, nullptr);
    ASSERT_NE(foreign, nullptr);
    survivor->src = 5;
    foreign->dst = 6;
  }
  EXPECT_EQ(survivor->src, 5u);
  EXPECT_EQ(foreign->dst, 6u);
  survivor.reset();
  std::thread releaser([moved = std::move(foreign)]() mutable {
    moved.reset();
  });
  releaser.join();
}

TEST(PacketPool, DefaultPoolBacksMakePacket) {
  const auto before = default_packet_pool().stats();
  auto p = make_packet();
  ASSERT_NE(p, nullptr);
  auto q = try_make_packet();
  ASSERT_NE(q, nullptr);
  auto r = clone_packet(*p);
  ASSERT_NE(r, nullptr);
  p.reset();
  q.reset();
  r.reset();
  const auto after = default_packet_pool().stats();
  EXPECT_GT(after.slots_materialized, 0u);
  EXPECT_GE(after.acquired_total + 3, before.acquired_total);
}

}  // namespace
}  // namespace eden::netsim
