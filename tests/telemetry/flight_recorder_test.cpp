// FlightRecorder: the always-on postmortem journal.
//
// The recorder is process-global (like the SpanCollector it mirrors),
// so every test snapshots through a fixture that resets state and
// filters by a per-test detail prefix where counting matters.
#include "telemetry/flight_recorder.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "telemetry/json.h"

namespace eden::telemetry {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::instance().set_clock(nullptr, nullptr);
    FlightRecorder::instance().reset();
  }
  void TearDown() override {
    FlightRecorder::instance().set_clock(nullptr, nullptr);
    FlightRecorder::instance().reset();
  }
};

std::int64_t fake_clock(void* ctx) {
  return *static_cast<std::int64_t*>(ctx);
}

TEST_F(FlightRecorderTest, RecordsAndSnapshotsInTimeOrder) {
  FlightRecorder& rec = FlightRecorder::instance();
  std::int64_t now = 100;
  rec.set_clock(&fake_clock, &now);

  rec.record(FlightEventType::txn_begin, "agent7", 1, 2);
  now = 250;
  rec.record(FlightEventType::txn_commit, "agent7", 3);
  now = 175;  // out-of-order stamp still sorts by time in the snapshot
  rec.record(FlightEventType::session_backoff, "agent7", 42);

  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, FlightEventType::txn_begin);
  EXPECT_EQ(events[0].t_ns, 100);
  EXPECT_EQ(events[0].a, 1);
  EXPECT_EQ(events[0].b, 2);
  EXPECT_STREQ(events[0].detail, "agent7");
  EXPECT_EQ(events[1].type, FlightEventType::session_backoff);
  EXPECT_EQ(events[2].type, FlightEventType::txn_commit);
  EXPECT_EQ(rec.total_recorded(), 3u);
  EXPECT_EQ(rec.overwritten(), 0u);
}

TEST_F(FlightRecorderTest, DetailIsTruncatedAndSanitized) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.record(FlightEventType::session_teardown,
             "quote\"back\\slash\nnewline");
  std::string long_detail(200, 'x');
  rec.record(FlightEventType::session_teardown, long_detail);

  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].detail, "quote_back_slash_newline");
  // Truncated to the fixed slot, always NUL-terminated.
  EXPECT_EQ(std::string(events[1].detail).size(),
            sizeof(FlightEvent::detail) - 1);
}

TEST_F(FlightRecorderTest, WraparoundKeepsMostRecentAndCountsOverwrites) {
  FlightRecorder& rec = FlightRecorder::instance();
  const std::size_t cap = FlightRecorder::kLaneCapacity;
  const std::size_t total = cap + 100;
  for (std::size_t i = 0; i < total; ++i) {
    rec.record(FlightEventType::resync, "wrap",
               static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(rec.total_recorded(), total);
  EXPECT_EQ(rec.overwritten(), 100u);
  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), cap);
  // Survivors are exactly the last `cap` events.
  std::vector<std::int64_t> seen;
  for (const FlightEvent& e : events) seen.push_back(e.a);
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < cap; ++i) {
    EXPECT_EQ(seen[i], static_cast<std::int64_t>(100 + i));
  }
}

TEST_F(FlightRecorderTest, ConcurrentWritersLoseNothingUntilWraparound) {
  FlightRecorder& rec = FlightRecorder::instance();
  constexpr int kThreads = 4;
  constexpr int kEvents = 300;  // < kLaneCapacity per single-writer lane
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, &go, t]() {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kEvents; ++i) {
        rec.record(FlightEventType::health_transition, "conc",
                   static_cast<std::int64_t>(t),
                   static_cast<std::int64_t>(i));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  const std::vector<FlightEvent> events = rec.snapshot();
  std::size_t mine = 0;
  for (const FlightEvent& e : events) {
    if (std::string(e.detail) == "conc") ++mine;
  }
  EXPECT_EQ(mine, static_cast<std::size_t>(kThreads * kEvents));
}

TEST_F(FlightRecorderTest, DumpJsonParsesAndCarriesCounters) {
  FlightRecorder& rec = FlightRecorder::instance();
  std::int64_t now = 7;
  rec.set_clock(&fake_clock, &now);
  rec.record(FlightEventType::agent_kill, "agent3", 3);
  rec.record(FlightEventType::agent_revive, "agent3", 3);

  const std::string json = rec.dump_json();
  const Json root = JsonParser(json).parse();
  EXPECT_EQ(root.i64("schema_version"), 1);
  EXPECT_EQ(root.u64("total"), 2u);
  EXPECT_EQ(root.u64("overwritten"), 0u);
  const Json* events = root.get("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 2u);
  EXPECT_EQ(events->items[0].str("type"), "agent_kill");
  EXPECT_EQ(events->items[0].str("detail"), "agent3");
  EXPECT_EQ(events->items[0].i64("t_ns"), 7);
  EXPECT_EQ(events->items[1].str("type"), "agent_revive");
}

TEST_F(FlightRecorderTest, DumpToFileMatchesJsonEventForEvent) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.record(FlightEventType::pool_exhausted, "dataplane", 17, 99);
  rec.record(FlightEventType::session_connect, "agent0", 1);

  char path[] = "/tmp/eden_flightrec_test_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  ::close(fd);
  ASSERT_TRUE(rec.dump_to_file(path));

  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const Json root = JsonParser(ss.str()).parse();
  const Json* events = root.get("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->items.size(), 2u);
  // The fd path dumps lanes in table order, not merged time order; both
  // events came from this thread so order holds here.
  EXPECT_EQ(events->items[0].str("type"), "pool_exhausted");
  EXPECT_EQ(events->items[0].i64("a"), 17);
  EXPECT_EQ(events->items[0].i64("b"), 99);
  std::remove(path);
}

TEST_F(FlightRecorderTest, PrometheusRowsExposeCounters) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.record(FlightEventType::crash, "sigsegv", 11);
  std::string out;
  rec.append_prometheus(out);
  EXPECT_NE(out.find("eden_flightrec_events_total 1"), std::string::npos);
  EXPECT_NE(out.find("eden_flightrec_overwritten_total 0"),
            std::string::npos);
  EXPECT_NE(out.find("eden_flightrec_dropped_total 0"), std::string::npos);
}

TEST_F(FlightRecorderTest, EventNamesCoverEveryType) {
  for (std::size_t i = 0; i < kNumFlightEventTypes; ++i) {
    const char* name = flight_event_name(static_cast<FlightEventType>(i));
    EXPECT_STRNE(name, "unknown") << "missing name for type " << i;
  }
}

}  // namespace
}  // namespace eden::telemetry
