// The fleet telemetry collector (telemetry/collector.h), the parallel
// aggregation tree (merge_aggregates / aggregate_tree) and the health
// watchdog (telemetry/health.h). Histogram-merge behaviour is pinned
// here too: merging snapshots must preserve count/sum and yield the
// same quantiles as one histogram fed the union stream.
#include "telemetry/collector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/delta.h"
#include "telemetry/health.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"

namespace eden::telemetry {
namespace {

// --- Histogram merge pins ----------------------------------------------

std::vector<std::uint64_t> sample_stream(std::uint64_t seed, std::size_t n) {
  std::vector<std::uint64_t> out;
  out.reserve(n);
  std::uint64_t x = seed * 2654435761u + 1;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out.push_back(x % 1'000'000);
  }
  return out;
}

TEST(HistogramMergeTest, MergePreservesCountSumAndUnionQuantiles) {
  Histogram a, b, both;
  for (const std::uint64_t v : sample_stream(1, 4000)) {
    a.record(v);
    both.record(v);
  }
  for (const std::uint64_t v : sample_stream(2, 2500)) {
    b.record(v);
    both.record(v);
  }
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const HistogramSnapshot union_stream = both.snapshot();

  EXPECT_EQ(merged.count, 6500u);
  EXPECT_EQ(merged.count, union_stream.count);
  EXPECT_EQ(merged.sum, union_stream.sum);
  for (std::size_t k = 0; k < kHistogramBuckets; ++k) {
    EXPECT_EQ(merged.counts[k], union_stream.counts[k]) << "bucket " << k;
  }
  // Same bucket contents => identical quantile estimates, bit for bit.
  EXPECT_EQ(merged.p50(), union_stream.p50());
  EXPECT_EQ(merged.p95(), union_stream.p95());
  EXPECT_EQ(merged.p99(), union_stream.p99());
}

EnclaveTelemetry snapshot_for(const std::string& name, std::uint64_t seed,
                              std::size_t samples) {
  EnclaveTelemetry e;
  e.enclave = name;
  e.packets = seed * 10;
  e.matched = seed * 7;
  e.dropped_by_action = seed;

  ActionTelemetry a;
  a.name = "pias";
  a.executions = samples;
  a.has_histograms = true;
  Histogram h;
  for (const std::uint64_t v : sample_stream(seed, samples)) h.record(v);
  a.latency_ns = h.snapshot();
  a.steps_hist = h.snapshot();
  e.actions.push_back(a);

  // A second action present only on even seeds, so merges exercise the
  // name-union path.
  if (seed % 2 == 0) {
    ActionTelemetry d;
    d.name = "dropper";
    d.executions = seed;
    e.actions.push_back(d);
  }

  ClassTelemetry c;
  c.name = "enclave.flows.web";
  c.matched = seed * 3;
  e.classes.push_back(c);
  e.host_series.emplace_back("dataplane_ring_depth",
                             static_cast<double>(seed % 128));
  return e;
}

TEST(AggregateTreeTest, AggregatePreservesHistogramTotalsAcrossEnclaves) {
  const AggregateTelemetry agg = aggregate(
      {snapshot_for("h0", 3, 1000), snapshot_for("h1", 5, 2000)});
  Histogram both;
  for (const std::uint64_t v : sample_stream(3, 1000)) both.record(v);
  for (const std::uint64_t v : sample_stream(5, 2000)) both.record(v);
  const HistogramSnapshot expect = both.snapshot();
  ASSERT_GE(agg.actions.size(), 1u);
  const ActionTelemetry& pias = agg.actions[agg.actions[0].name == "pias"
                                                ? 0
                                                : 1];
  EXPECT_EQ(pias.latency_ns.count, expect.count);
  EXPECT_EQ(pias.latency_ns.sum, expect.sum);
  EXPECT_EQ(pias.latency_ns.p50(), expect.p50());
  EXPECT_EQ(pias.latency_ns.p95(), expect.p95());
  EXPECT_EQ(pias.latency_ns.p99(), expect.p99());
}

TEST(AggregateTreeTest, MergeAggregatesMatchesSerialAggregate) {
  std::vector<EnclaveTelemetry> all;
  for (std::uint64_t i = 1; i <= 9; ++i) {
    all.push_back(snapshot_for("h" + std::to_string(i), i, 100 * i));
  }
  const std::string serial = to_json(aggregate(all));

  std::vector<EnclaveTelemetry> lo(all.begin(), all.begin() + 4);
  std::vector<EnclaveTelemetry> hi(all.begin() + 4, all.end());
  const AggregateTelemetry merged =
      merge_aggregates(aggregate(std::move(lo)), aggregate(std::move(hi)));
  EXPECT_EQ(to_json(merged), serial);
}

TEST(AggregateTreeTest, TreeMatchesSerialForAnyThreadCount) {
  std::vector<EnclaveTelemetry> all;
  for (std::uint64_t i = 1; i <= 13; ++i) {
    all.push_back(snapshot_for("h" + std::to_string(i), i, 50 * i));
  }
  const std::string serial = to_json(aggregate(all));
  for (const std::size_t threads : {1u, 2u, 3u, 4u, 7u, 16u}) {
    EXPECT_EQ(to_json(aggregate_tree(all, threads)), serial)
        << "threads=" << threads;
  }
}

// --- Collector ---------------------------------------------------------

// Agent-side half of the delta protocol, same discipline as
// core::wire::TelemetryCursor, over a hand-held counter state.
struct FakeAgent {
  EnclaveTelemetry state;
  EnclaveTelemetry prev;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  bool primed = false;
  std::uint64_t next_epoch;
  std::uint64_t polls = 0;
  bool dead = false;

  explicit FakeAgent(std::string name, std::uint64_t first_epoch)
      : next_epoch(first_epoch) {
    state.enclave = std::move(name);
  }

  std::string poll(std::uint64_t epoch_in, std::uint64_t seq_in) {
    if (dead) return {};
    ++polls;
    DeltaPayload p;
    if (primed && epoch_in == epoch && seq_in == seq) {
      if (auto d = delta_between(prev, state)) {
        ++seq;
        p.full = false;
        p.epoch = epoch;
        p.seq = seq;
        if (!delta_is_empty(*d)) p.enclaves.push_back(*std::move(d));
        prev = state;
        return encode_delta_payload(p);
      }
    }
    epoch = next_epoch++;
    seq = 1;
    primed = true;
    p.full = true;
    p.epoch = epoch;
    p.seq = seq;
    p.enclaves.push_back(state);
    prev = state;
    return encode_delta_payload(p);
  }

  CollectorSource source() {
    CollectorSource s;
    s.name = state.enclave;
    s.fetch_delta = [this](std::uint64_t e, std::uint64_t q) {
      return poll(e, q);
    };
    return s;
  }
};

TEST(CollectorTest, DeltaPollingTracksGroundTruth) {
  FakeAgent a0("a0", 100), a1("a1", 200);
  a0.state = snapshot_for("a0", 2, 500);
  a1.state = snapshot_for("a1", 3, 700);

  std::uint64_t now = 0;
  CollectorConfig config;
  config.threads = 2;
  TelemetryCollector collector(config, [&]() { return now; });
  collector.add_source(a0.source());
  collector.add_source(a1.source());

  now = 1'000'000'000;
  const AggregateTelemetry& first = collector.poll();
  EXPECT_EQ(first.packets, a0.state.packets + a1.state.packets);
  EXPECT_EQ(collector.status(0).full_resyncs, 1u);
  EXPECT_EQ(collector.status(0).deltas_applied, 0u);
  const std::uint64_t full_bytes = collector.status(0).last_payload_bytes;

  a0.state.packets += 17;
  a1.state.packets += 5;
  now = 2'000'000'000;
  const AggregateTelemetry& second = collector.poll();
  EXPECT_EQ(second.packets, a0.state.packets + a1.state.packets);
  EXPECT_EQ(collector.status(0).full_resyncs, 1u);
  EXPECT_EQ(collector.status(0).deltas_applied, 1u);
  // Steady-state deltas are a fraction of the full snapshot.
  EXPECT_LT(collector.status(0).last_payload_bytes, full_bytes / 2);

  // Nothing changed: the delta is header-only and totals hold.
  now = 3'000'000'000;
  const AggregateTelemetry& third = collector.poll();
  EXPECT_EQ(third.packets, second.packets);
  EXPECT_EQ(collector.status(0).deltas_applied, 2u);

  // Series read-back and rates over the retention ring.
  const auto latest = collector.latest_value(0, "packets");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, static_cast<double>(a0.state.packets));
  const auto rate = collector.rate_per_sec(0, "packets");
  ASSERT_TRUE(rate.has_value());
  EXPECT_DOUBLE_EQ(*rate, 17.0 / 2.0);  // 17 packets over 2 s of ring
  const auto ring_depth =
      collector.latest_value(0, "dataplane_ring_depth");
  ASSERT_TRUE(ring_depth.has_value());
  EXPECT_EQ(*ring_depth, 2.0);
}

TEST(CollectorTest, AgentRestartForcesFullResync) {
  FakeAgent agent("a0", 100);
  agent.state = snapshot_for("a0", 2, 100);

  std::uint64_t now = 0;
  CollectorConfig config;
  config.threads = 1;
  TelemetryCollector collector(config, [&]() { return now; });
  collector.add_source(agent.source());

  collector.poll();
  agent.state.packets += 3;
  now += 1'000'000'000;
  collector.poll();
  EXPECT_EQ(collector.status(0).deltas_applied, 1u);

  // Restart: fresh cursor, counters reset under the collector.
  agent.primed = false;
  agent.state = snapshot_for("a0", 1, 50);
  agent.prev = {};
  now += 1'000'000'000;
  collector.poll();
  EXPECT_EQ(collector.status(0).full_resyncs, 2u);
  EXPECT_EQ(collector.latest().packets, agent.state.packets);
}

TEST(CollectorTest, UnreachableSourceGoesStaleButKeepsLastSnapshot) {
  FakeAgent agent("a0", 100);
  agent.state = snapshot_for("a0", 4, 100);

  std::uint64_t now = 1'000'000'000;
  CollectorConfig config;
  config.threads = 1;
  config.stale_after_ns = 3'000'000'000;
  TelemetryCollector collector(config, [&]() { return now; });
  collector.add_source(agent.source());

  const std::uint64_t before = collector.poll().packets;
  EXPECT_TRUE(collector.status(0).reachable);
  EXPECT_FALSE(collector.status(0).stale);

  agent.dead = true;
  now += 2'000'000'000;
  collector.poll();
  EXPECT_FALSE(collector.status(0).reachable);
  EXPECT_FALSE(collector.status(0).stale);  // within the window
  EXPECT_EQ(collector.latest().packets, before);

  now += 2'000'000'000;
  collector.poll();
  EXPECT_TRUE(collector.status(0).stale);
  EXPECT_EQ(collector.status(0).consecutive_failures, 2u);
  EXPECT_EQ(collector.latest().packets, before);  // last known view

  const auto stale_series = collector.latest_value(0, "collector.stale");
  ASSERT_TRUE(stale_series.has_value());
  EXPECT_EQ(*stale_series, 1.0);

  std::string prom;
  collector.append_prometheus(prom);
  EXPECT_NE(prom.find("eden_collector_agent_stale{agent=\"a0\"} 1"),
            std::string::npos);
}

// --- Health watchdog ---------------------------------------------------

TEST(HealthWatchdogTest, ThresholdTransitionsAndEventLog) {
  FakeAgent agent("a0", 100);
  agent.state = snapshot_for("a0", 2, 10);
  agent.state.host_series[0].second = 10.0;

  std::uint64_t now = 1'000'000'000;
  CollectorConfig config;
  config.threads = 1;
  TelemetryCollector collector(config, [&]() { return now; });
  collector.add_source(agent.source());

  std::vector<HealthRule> rules(2);
  rules[0].name = "ring-depth";
  rules[0].series = "dataplane_ring_depth";
  rules[0].op = HealthRule::Op::gt;
  rules[0].threshold = 100;
  rules[0].severity = HealthState::degraded;
  rules[1].name = "ring-depth-critical";
  rules[1].series = "dataplane_ring_depth";
  rules[1].op = HealthRule::Op::gt;
  rules[1].threshold = 500;
  rules[1].severity = HealthState::critical;
  HealthWatchdog watchdog(rules);

  collector.poll();
  watchdog.evaluate(now, collector);
  EXPECT_EQ(watchdog.fleet_state(), HealthState::ok);
  EXPECT_TRUE(watchdog.events().empty());

  agent.state.host_series[0].second = 600.0;
  now += 1'000'000'000;
  collector.poll();
  watchdog.evaluate(now, collector);
  EXPECT_EQ(watchdog.fleet_state(), HealthState::critical);
  ASSERT_EQ(watchdog.agents().size(), 1u);
  EXPECT_EQ(watchdog.agents()[0].state, HealthState::critical);
  // Both rules tripped, worst first.
  ASSERT_EQ(watchdog.agents()[0].tripped.size(), 2u);
  EXPECT_NE(watchdog.agents()[0].tripped[0].find("ring-depth-critical"),
            std::string::npos);
  // Agent transition + fleet transition.
  ASSERT_EQ(watchdog.events().size(), 2u);
  EXPECT_EQ(watchdog.events()[0].to, HealthState::critical);
  EXPECT_EQ(watchdog.events()[0].rule, "ring-depth-critical");

  agent.state.host_series[0].second = 5.0;
  now += 1'000'000'000;
  collector.poll();
  watchdog.evaluate(now, collector);
  EXPECT_EQ(watchdog.fleet_state(), HealthState::ok);
  EXPECT_EQ(watchdog.events().size(), 4u);

  const std::string events = watchdog.events_json();
  EXPECT_NE(events.find("\"rule\":\"ring-depth-critical\""),
            std::string::npos);
  EXPECT_NE(events.find("\"scope\":\"fleet\""), std::string::npos);

  std::string prom;
  watchdog.append_prometheus(prom);
  EXPECT_NE(prom.find("eden_health_fleet 0"), std::string::npos);
  EXPECT_NE(prom.find("eden_health_agent{agent=\"a0\"} 0"),
            std::string::npos);
}

// The JSON event log is capped: a flapping rule cannot grow it without
// bound, the drop counter owns the difference, and the Prometheus
// events_total row keeps counting transitions monotonically (it is NOT
// the retained-log size).
TEST(HealthWatchdogTest, EventLogIsCappedAndCountsDrops) {
  FakeAgent agent("a0", 100);
  agent.state = snapshot_for("a0", 2, 10);
  agent.state.host_series[0].second = 10.0;

  std::uint64_t now = 1'000'000'000;
  CollectorConfig config;
  config.threads = 1;
  TelemetryCollector collector(config, [&]() { return now; });
  collector.add_source(agent.source());

  std::vector<HealthRule> rules(1);
  rules[0].name = "ring-depth";
  rules[0].series = "dataplane_ring_depth";
  rules[0].op = HealthRule::Op::gt;
  rules[0].threshold = 100;
  rules[0].severity = HealthState::degraded;
  HealthWatchdog watchdog(rules);

  // Flap the rule: every flip is an agent + a fleet transition.
  for (int i = 0; i < 2500; ++i) {
    agent.state.host_series[0].second = (i % 2 == 0) ? 600.0 : 5.0;
    now += 1'000'000'000;
    collector.poll();
    watchdog.evaluate(now, collector);
  }

  EXPECT_EQ(watchdog.events_total(), 5000u);
  EXPECT_GT(watchdog.events_dropped(), 0u);
  EXPECT_EQ(watchdog.events().size() + watchdog.events_dropped(),
            watchdog.events_total());

  std::string prom;
  watchdog.append_prometheus(prom);
  EXPECT_NE(prom.find("eden_health_events_total 5000"), std::string::npos);
  EXPECT_NE(prom.find("eden_health_events_dropped_total " +
                      std::to_string(watchdog.events_dropped())),
            std::string::npos);
}

TEST(HealthWatchdogTest, RateRulesAndFleetScopeUseSummedSeries) {
  FakeAgent a0("a0", 100), a1("a1", 200);
  a0.state.enclave = "a0";
  a1.state.enclave = "a1";

  std::uint64_t now = 1'000'000'000;
  CollectorConfig config;
  config.threads = 1;
  TelemetryCollector collector(config, [&]() { return now; });
  collector.add_source(a0.source());
  collector.add_source(a1.source());

  std::vector<HealthRule> rules(1);
  rules[0].name = "fleet-drops";
  rules[0].series = "dropped_by_action:rate";
  rules[0].op = HealthRule::Op::gt;
  rules[0].threshold = 100;  // per second, fleet-wide
  rules[0].severity = HealthState::degraded;
  rules[0].fleet = true;
  HealthWatchdog watchdog(rules);

  collector.poll();
  watchdog.evaluate(now, collector);
  EXPECT_EQ(watchdog.fleet_state(), HealthState::ok);

  // 80/s per agent: no single agent crosses 100/s, the fleet sum does.
  a0.state.dropped_by_action += 80;
  a1.state.dropped_by_action += 80;
  now += 1'000'000'000;
  collector.poll();
  watchdog.evaluate(now, collector);
  EXPECT_EQ(watchdog.fleet_state(), HealthState::degraded);
  for (const auto& agent : watchdog.agents()) {
    EXPECT_EQ(agent.state, HealthState::ok);
  }
  ASSERT_FALSE(watchdog.events().empty());
  EXPECT_EQ(watchdog.events().back().agent, "");
  EXPECT_EQ(watchdog.events().back().rule, "fleet-drops");
}

TEST(HealthWatchdogTest, StalenessRuleFiresViaDefaultRules) {
  FakeAgent agent("a0", 100);
  agent.state = snapshot_for("a0", 1, 10);

  std::uint64_t now = 1'000'000'000;
  CollectorConfig config;
  config.threads = 1;
  config.stale_after_ns = 2'000'000'000;
  TelemetryCollector collector(config, [&]() { return now; });
  collector.add_source(agent.source());
  HealthWatchdog watchdog;  // default rule set

  collector.poll();
  watchdog.evaluate(now, collector);
  EXPECT_EQ(watchdog.fleet_state(), HealthState::ok);

  agent.dead = true;
  now += 3'000'000'000;
  collector.poll();
  watchdog.evaluate(now, collector);
  EXPECT_GE(watchdog.fleet_state(), HealthState::degraded);
  ASSERT_EQ(watchdog.agents().size(), 1u);
  EXPECT_GE(watchdog.agents()[0].state, HealthState::degraded);
}

}  // namespace
}  // namespace eden::telemetry
