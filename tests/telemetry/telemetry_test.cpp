// Telemetry primitives: sharded counters, log2 histograms, the
// sampling trace ring, the metrics registry's exposition format, and
// cross-enclave snapshot aggregation.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"
#include "telemetry/trace_ring.h"

namespace eden::telemetry {
namespace {

TEST(CounterTest, SingleThreadedIncrements) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, SumsAcrossThreads) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kIncs = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramTest, BucketOfEdges) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  // Values past the last bucket's range are clamped into it.
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), kHistogramBuckets - 1);
}

TEST(HistogramTest, RecordAndSnapshot) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(5);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 11u);
  EXPECT_EQ(snap.counts[0], 1u);  // the value 0
  EXPECT_EQ(snap.counts[1], 1u);  // the value 1
  EXPECT_EQ(snap.counts[3], 2u);  // 5 lands in [4, 7]
  EXPECT_DOUBLE_EQ(snap.mean(), 11.0 / 4.0);
}

TEST(HistogramTest, QuantilesWithinBucketBounds) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(100);  // bucket [64, 127]
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_GE(snap.p50(), 64.0);
  EXPECT_LE(snap.p99(), 127.0 + 1.0);
  EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0.0);  // empty histogram
}

TEST(HistogramTest, SnapshotMergeAddsBucketwise) {
  Histogram a, b;
  a.record(1);
  a.record(100);
  b.record(100);
  HistogramSnapshot sa = a.snapshot();
  sa.merge(b.snapshot());
  EXPECT_EQ(sa.count, 3u);
  EXPECT_EQ(sa.sum, 201u);
  EXPECT_EQ(sa.counts[1], 1u);
  EXPECT_EQ(sa.counts[Histogram::bucket_of(100)], 2u);
}

TEST(SamplingTest, OneInNOverAnyAlignedWindow) {
  // Period-4 pattern: any window whose length is a multiple of 4 holds
  // exactly length/4 true decisions, whatever the starting phase.
  int hits = 0;
  for (int i = 0; i < 400; ++i) {
    if (sample_1_in(4)) ++hits;
  }
  EXPECT_EQ(hits, 100);
}

TEST(SamplingTest, ZeroDisables) {
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(sample_1_in(0));
}

TEST(TraceRingTest, KeepsMostRecentOnWraparound) {
  TraceRing ring(4, 1);
  for (int i = 0; i < 10; ++i) {
    TraceRecord rec;
    rec.ts_ns = i;
    ring.push(rec);
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
  const std::vector<TraceRecord> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[i].ts_ns, 6 + i);  // oldest to newest
  }
}

TEST(TraceRingTest, ShouldSamplePacesOneInN) {
  TraceRing ring(8, 3);
  int hits = 0;
  for (int i = 0; i < 9; ++i) {
    if (ring.should_sample()) ++hits;
  }
  EXPECT_EQ(hits, 3);

  TraceRing off(8, 0);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(off.should_sample());
}

TEST(TraceRingTest, PartialFillSnapshotsInOrder) {
  TraceRing ring(8, 1);
  for (int i = 0; i < 3; ++i) {
    TraceRecord rec;
    rec.ts_ns = i;
    ring.push(rec);
  }
  const std::vector<TraceRecord> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].ts_ns, 0);
  EXPECT_EQ(snap[2].ts_ns, 2);
}

TEST(RegistryTest, InstrumentsAreStableAddressed) {
  MetricsRegistry reg;
  Counter& a = reg.counter("c", {{"k", "v"}});
  Counter& b = reg.counter("c", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  Counter& other = reg.counter("c", {{"k", "w"}});
  EXPECT_NE(&a, &other);
}

TEST(RegistryTest, TextExposition) {
  MetricsRegistry reg;
  reg.counter("eden_packets", {{"enclave", "host0"}}).inc(3);
  reg.gauge("eden_queue_depth").set(12);
  reg.histogram("eden_latency_ns").record(100);
  const std::string text = reg.text_exposition();
  EXPECT_NE(text.find("# TYPE eden_packets counter"), std::string::npos);
  EXPECT_NE(text.find("eden_packets{enclave=\"host0\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE eden_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("eden_queue_depth 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE eden_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("eden_latency_ns_bucket{le=\"127\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("eden_latency_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("eden_latency_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("eden_latency_ns_sum 100"), std::string::npos);
}

TEST(RegistryTest, LabelValuesAreEscaped) {
  EXPECT_EQ(render_labels({{"k", "a\"b\\c\nd"}}),
            "{k=\"a\\\"b\\\\c\\nd\"}");
  EXPECT_EQ(render_labels({}), "");
}

EnclaveTelemetry make_enclave_snapshot(const std::string& name,
                                       std::uint64_t executions) {
  EnclaveTelemetry t;
  t.enclave = name;
  t.telemetry_enabled = true;
  t.packets = executions;
  t.matched = executions;
  ActionTelemetry a;
  a.name = "pias";
  a.executions = executions;
  a.has_histograms = true;
  a.latency_ns.counts[5] = executions;
  a.latency_ns.count = executions;
  a.latency_ns.sum = 20 * executions;
  t.actions.push_back(a);
  ClassTelemetry c;
  c.name = "enclave.flows.web";
  c.matched = executions;
  c.dropped = 1;
  t.classes.push_back(c);
  return t;
}

TEST(AggregateTest, MergesByActionAndClassName) {
  const AggregateTelemetry agg = aggregate(
      {make_enclave_snapshot("host0", 10), make_enclave_snapshot("host1", 5)});
  EXPECT_EQ(agg.enclaves.size(), 2u);
  EXPECT_EQ(agg.packets, 15u);
  EXPECT_EQ(agg.matched, 15u);
  ASSERT_EQ(agg.actions.size(), 1u);
  EXPECT_EQ(agg.actions[0].name, "pias");
  EXPECT_EQ(agg.actions[0].executions, 15u);
  EXPECT_EQ(agg.actions[0].latency_ns.count, 15u);
  EXPECT_EQ(agg.actions[0].latency_ns.counts[5], 15u);
  ASSERT_EQ(agg.classes.size(), 1u);
  EXPECT_EQ(agg.classes[0].matched, 15u);
  EXPECT_EQ(agg.classes[0].dropped, 2u);
}

TEST(AggregateTest, RendersJsonAndPrometheus) {
  const AggregateTelemetry agg = aggregate({make_enclave_snapshot("h", 4)});
  const std::string json = to_json(agg);
  EXPECT_NE(json.find("\"name\":\"h\""), std::string::npos);
  EXPECT_NE(json.find("\"pias\""), std::string::npos);
  EXPECT_NE(json.find("enclave.flows.web"), std::string::npos);
  const std::string prom = to_prometheus(agg);
  EXPECT_NE(prom.find("eden_enclave_packets_total{enclave=\"h\"} 4"),
            std::string::npos);
  EXPECT_NE(prom.find("eden_action_executions_total"), std::string::npos);
  EXPECT_NE(prom.find("eden_class_matched_total"), std::string::npos);
}

}  // namespace
}  // namespace eden::telemetry
