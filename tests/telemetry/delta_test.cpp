// The streaming delta telemetry protocol (telemetry/delta.h): snapshot
// diffing, delta application, payload encode/parse and the decoder's
// (epoch, seq) resync discipline.
#include "telemetry/delta.h"

#include <gtest/gtest.h>

#include "telemetry/json.h"

namespace eden::telemetry {
namespace {

EnclaveTelemetry base_snapshot() {
  EnclaveTelemetry e;
  e.enclave = "host0";
  e.telemetry_enabled = true;
  e.packets = 100;
  e.matched = 80;
  e.dropped_by_action = 5;
  e.trace_sampled = 10;
  e.trace_sample_every = 16;

  ActionTelemetry a;
  a.name = "pias";
  a.executions = 80;
  a.errors = 2;
  a.steps = 800;
  a.errors_by_status[1] = 2;
  a.has_histograms = true;
  a.latency_ns.counts[4] = 80;
  a.latency_ns.count = 80;
  a.latency_ns.sum = 80 * 12;
  a.has_profile = true;
  a.profile_runs = 80;
  e.actions.push_back(a);

  ActionTelemetry idle;
  idle.name = "idle";
  e.actions.push_back(idle);

  ClassTelemetry c;
  c.name = "enclave.flows.web";
  c.matched = 80;
  c.dropped = 5;
  e.classes.push_back(c);

  e.host_series.emplace_back("dataplane_ring_depth", 40.0);
  e.host_series.emplace_back("pool_exhausted_total", 3.0);
  return e;
}

EnclaveTelemetry advanced_snapshot() {
  EnclaveTelemetry e = base_snapshot();
  e.packets += 20;
  e.matched += 15;
  e.trace_sampled += 2;
  e.actions[0].executions += 15;
  e.actions[0].steps += 150;
  e.actions[0].latency_ns.counts[4] += 15;
  e.actions[0].latency_ns.count += 15;
  e.actions[0].latency_ns.sum += 15 * 12;
  e.classes[0].matched += 15;
  e.host_series[0].second = 22.0;  // gauge moved down — still shipped
  return e;
}

TEST(DeltaTest, EmitsOnlyChangedSeries) {
  const EnclaveTelemetry prev = base_snapshot();
  const EnclaveTelemetry now = advanced_snapshot();
  const auto d = delta_between(prev, now);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->packets, 20u);
  EXPECT_EQ(d->matched, 15u);
  EXPECT_EQ(d->dropped_by_action, 0u);
  // The unchanged "idle" action and unchanged host key are omitted.
  ASSERT_EQ(d->actions.size(), 1u);
  EXPECT_EQ(d->actions[0].name, "pias");
  EXPECT_EQ(d->actions[0].executions, 15u);
  EXPECT_EQ(d->actions[0].errors, 0u);
  // Deltas never carry profile detail.
  EXPECT_FALSE(d->actions[0].has_profile);
  ASSERT_EQ(d->classes.size(), 1u);
  EXPECT_EQ(d->classes[0].matched, 15u);
  ASSERT_EQ(d->host_series.size(), 1u);
  EXPECT_EQ(d->host_series[0].first, "dataplane_ring_depth");
  EXPECT_EQ(d->host_series[0].second, 22.0);  // absolute, not a diff
}

TEST(DeltaTest, NoChangeIsEmptyDelta) {
  const EnclaveTelemetry prev = base_snapshot();
  const auto d = delta_between(prev, prev);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(delta_is_empty(*d));
}

TEST(DeltaTest, ApplyReconstructsTheNewSnapshot) {
  EnclaveTelemetry state = base_snapshot();
  const EnclaveTelemetry now = advanced_snapshot();
  const auto d = delta_between(state, now);
  ASSERT_TRUE(d.has_value());
  apply_delta(state, *d);
  EXPECT_EQ(state.packets, now.packets);
  EXPECT_EQ(state.matched, now.matched);
  EXPECT_EQ(state.trace_sampled, now.trace_sampled);
  ASSERT_EQ(state.actions.size(), 2u);
  EXPECT_EQ(state.actions[0].executions, now.actions[0].executions);
  EXPECT_EQ(state.actions[0].steps, now.actions[0].steps);
  EXPECT_EQ(state.actions[0].latency_ns.count, now.actions[0].latency_ns.count);
  EXPECT_EQ(state.actions[0].latency_ns.sum, now.actions[0].latency_ns.sum);
  EXPECT_EQ(state.actions[0].latency_ns.counts[4],
            now.actions[0].latency_ns.counts[4]);
  // Profile state from the last full snapshot survives delta folding.
  EXPECT_TRUE(state.actions[0].has_profile);
  EXPECT_EQ(state.classes[0].matched, now.classes[0].matched);
  EXPECT_EQ(state.host_series[0].second, 22.0);
  EXPECT_EQ(state.host_series[1].second, 3.0);
}

TEST(DeltaTest, CounterRegressionVoidsTheDelta) {
  const EnclaveTelemetry prev = base_snapshot();
  EnclaveTelemetry now = prev;
  now.packets = prev.packets - 1;  // cleared/reinstalled underneath us
  EXPECT_FALSE(delta_between(prev, now).has_value());

  now = prev;
  now.actions[0].executions -= 1;
  EXPECT_FALSE(delta_between(prev, now).has_value());

  now = prev;
  now.actions[0].latency_ns.counts[4] -= 1;
  now.actions[0].latency_ns.count -= 1;
  EXPECT_FALSE(delta_between(prev, now).has_value());

  now = prev;
  now.classes[0].dropped -= 1;
  EXPECT_FALSE(delta_between(prev, now).has_value());
}

TEST(DeltaTest, NewActionShipsWholeMinusProfile) {
  const EnclaveTelemetry prev = base_snapshot();
  EnclaveTelemetry now = prev;
  ActionTelemetry fresh;
  fresh.name = "fresh";
  fresh.executions = 7;
  fresh.has_profile = true;
  fresh.profile_runs = 7;
  now.actions.push_back(fresh);
  const auto d = delta_between(prev, now);
  ASSERT_TRUE(d.has_value());
  ASSERT_EQ(d->actions.size(), 1u);
  EXPECT_EQ(d->actions[0].name, "fresh");
  EXPECT_EQ(d->actions[0].executions, 7u);
  EXPECT_FALSE(d->actions[0].has_profile);
  EXPECT_EQ(d->actions[0].profile_runs, 0u);
}

TEST(DeltaTest, PayloadJsonRoundTrip) {
  DeltaPayload p;
  p.epoch = 42;
  p.seq = 7;
  p.full = false;
  const auto d = delta_between(base_snapshot(), advanced_snapshot());
  ASSERT_TRUE(d.has_value());
  p.enclaves.push_back(*d);

  const std::string json = encode_delta_payload(p);
  EXPECT_NE(json.find("\"schema_version\":3"), std::string::npos);
  const DeltaPayload back = parse_delta_payload(json);
  EXPECT_EQ(back.schema_version, kTelemetrySchemaVersion);
  EXPECT_EQ(back.epoch, 42u);
  EXPECT_EQ(back.seq, 7u);
  EXPECT_FALSE(back.full);
  ASSERT_EQ(back.enclaves.size(), 1u);
  EXPECT_EQ(back.enclaves[0].packets, 20u);
  ASSERT_EQ(back.enclaves[0].host_series.size(), 1u);
  EXPECT_EQ(back.enclaves[0].host_series[0].second, 22.0);
}

TEST(DeltaDecoderTest, FullThenDeltasThenReject) {
  DeltaDecoder dec;
  EXPECT_FALSE(dec.synced());

  DeltaPayload full;
  full.epoch = 9;
  full.seq = 1;
  full.full = true;
  full.enclaves.push_back(base_snapshot());
  EXPECT_TRUE(dec.apply(full));
  EXPECT_TRUE(dec.synced());
  EXPECT_EQ(dec.epoch(), 9u);
  EXPECT_EQ(dec.seq(), 1u);
  EXPECT_EQ(dec.stats().full_resyncs, 1u);

  DeltaPayload step;
  step.epoch = 9;
  step.seq = 2;
  step.full = false;
  step.enclaves.push_back(*delta_between(base_snapshot(),
                                         advanced_snapshot()));
  EXPECT_TRUE(dec.apply(step));
  EXPECT_EQ(dec.seq(), 2u);
  EXPECT_EQ(dec.stats().deltas_applied, 1u);
  ASSERT_EQ(dec.snapshots().size(), 1u);
  EXPECT_EQ(dec.snapshots()[0].packets, 120u);

  // A replayed (duplicate) delta and a wrong-epoch delta are both
  // rejected without touching the materialized view.
  EXPECT_FALSE(dec.apply(step));
  DeltaPayload alien = step;
  alien.epoch = 10;
  alien.seq = 3;
  EXPECT_FALSE(dec.apply(alien));
  EXPECT_EQ(dec.stats().rejected, 2u);
  EXPECT_EQ(dec.snapshots()[0].packets, 120u);

  // A fresh full payload under a new epoch resyncs unconditionally.
  DeltaPayload resync;
  resync.epoch = 10;
  resync.seq = 1;
  resync.full = true;
  resync.enclaves.push_back(advanced_snapshot());
  EXPECT_TRUE(dec.apply(resync));
  EXPECT_EQ(dec.epoch(), 10u);
  EXPECT_EQ(dec.stats().full_resyncs, 2u);
}

TEST(DeltaDecoderTest, GarbageJsonCountsAsRejected) {
  DeltaDecoder dec;
  EXPECT_FALSE(dec.apply_json("{]truncated"));
  EXPECT_EQ(dec.stats().rejected, 1u);
  EXPECT_FALSE(dec.synced());
}

TEST(DeltaDecoderTest, UnseenEnclaveInDeltaIsAdoptedAsBaseline) {
  DeltaDecoder dec;
  DeltaPayload full;
  full.epoch = 1;
  full.seq = 1;
  full.enclaves.push_back(base_snapshot());
  ASSERT_TRUE(dec.apply(full));

  DeltaPayload step;
  step.epoch = 1;
  step.seq = 2;
  step.full = false;
  EnclaveTelemetry other;
  other.enclave = "host1";
  other.packets = 3;
  step.enclaves.push_back(other);
  ASSERT_TRUE(dec.apply(step));
  ASSERT_EQ(dec.snapshots().size(), 2u);
  EXPECT_EQ(dec.snapshots()[1].enclave, "host1");
  EXPECT_EQ(dec.snapshots()[1].packets, 3u);
}

}  // namespace
}  // namespace eden::telemetry
