// Tests for the lifecycle span collector: id allocation under
// concurrency, lock-free lane wraparound, sampling pacing and the
// trace_event JSON rendering.
#include "telemetry/span.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <thread>
#include <vector>

namespace eden::telemetry {
namespace {

// The collector is process-global; every test starts from a clean slate
// with its own sampling/capacity configuration.
class SpanCollectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SpanCollector::instance().reset();
    SpanCollector::instance().set_clock(nullptr, nullptr);
  }
  void TearDown() override {
    SpanCollector::instance().disable();
    SpanCollector::instance().reset();
  }
};

TEST_F(SpanCollectorTest, StartTraceNeverReturnsZeroOrDuplicates) {
  auto& spans = SpanCollector::instance();
  std::set<std::int64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t id = spans.start_trace();
    EXPECT_NE(id, 0);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
  }
}

TEST_F(SpanCollectorTest, ConcurrentWritersLoseNothingUntilWraparound) {
  constexpr std::size_t kCapacity = 512;
  constexpr int kThreads = 4;
  // Fewer events than capacity: every record must survive.
  constexpr int kEvents = 300;
  auto& spans = SpanCollector::instance();
  spans.enable(1, kCapacity);

  std::vector<std::vector<std::int64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEvents; ++i) {
        const std::int64_t id = spans.maybe_start_trace();
        EXPECT_NE(id, 0);  // sample_every == 1: every message traced
        ids[static_cast<std::size_t>(t)].push_back(id);
        spans.record(id, Hop::stage_classify, /*ts_ns=*/i, /*dur_ns=*/0,
                     /*aux=*/i);
      }
    });
  }
  for (auto& th : threads) th.join();

  // No id allocated twice across threads.
  std::set<std::int64_t> all_ids;
  for (const auto& per_thread : ids) {
    for (const std::int64_t id : per_thread) {
      EXPECT_TRUE(all_ids.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(all_ids.size(),
            static_cast<std::size_t>(kThreads) * kEvents);

  // Below capacity nothing wraps: every recorded event is in the
  // snapshot, exactly once.
  EXPECT_EQ(spans.total_recorded(),
            static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(spans.overwritten(), 0u);
  const std::vector<SpanEvent> events = spans.snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kEvents);
  std::set<std::int64_t> seen;
  for (const SpanEvent& e : events) {
    EXPECT_TRUE(all_ids.count(e.trace_id) == 1);
    EXPECT_TRUE(seen.insert(e.trace_id).second)
        << "trace id " << e.trace_id << " recorded twice";
  }
}

TEST_F(SpanCollectorTest, WraparoundKeepsMostRecentPerLane) {
  constexpr std::size_t kCapacity = 256;
  constexpr int kThreads = 3;
  constexpr int kEvents = static_cast<int>(kCapacity) + 150;
  auto& spans = SpanCollector::instance();
  spans.enable(1, kCapacity);

  // Each thread records all its events under one trace id, with the
  // sequence number in aux, so survivors can be checked per writer.
  std::vector<std::int64_t> thread_ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::int64_t id = spans.start_trace();
      thread_ids[static_cast<std::size_t>(t)] = id;
      for (int i = 0; i < kEvents; ++i) {
        spans.record(id, Hop::host_enqueue, /*ts_ns=*/i, /*dur_ns=*/0,
                     /*aux=*/i);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(spans.total_recorded(),
            static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(spans.overwritten(),
            static_cast<std::uint64_t>(kThreads) * (kEvents - kCapacity));

  std::map<std::int64_t, std::vector<std::int64_t>> aux_by_id;
  for (const SpanEvent& e : spans.snapshot()) {
    aux_by_id[e.trace_id].push_back(e.aux);
  }
  for (const std::int64_t id : thread_ids) {
    auto it = aux_by_id.find(id);
    ASSERT_NE(it, aux_by_id.end());
    std::vector<std::int64_t>& aux = it->second;
    // Exactly the lane capacity survives, and it is the most recent
    // window [kEvents - kCapacity, kEvents), each exactly once.
    ASSERT_EQ(aux.size(), kCapacity);
    std::sort(aux.begin(), aux.end());
    for (std::size_t i = 0; i < aux.size(); ++i) {
      EXPECT_EQ(aux[i],
                static_cast<std::int64_t>(kEvents - kCapacity + i));
    }
  }
}

TEST_F(SpanCollectorTest, SamplingPacesOneInN) {
  auto& spans = SpanCollector::instance();
  spans.enable(4);
  // A fresh thread starts with a fresh countdown, so the pacing is
  // deterministic: calls 1, 5, 9, ... sample.
  std::vector<std::int64_t> returns;
  std::thread([&] {
    for (int i = 0; i < 16; ++i) returns.push_back(spans.maybe_start_trace());
  }).join();
  ASSERT_EQ(returns.size(), 16u);
  int sampled = 0;
  for (std::size_t i = 0; i < returns.size(); ++i) {
    if (i % 4 == 0) {
      EXPECT_NE(returns[i], 0) << "call " << i;
      ++sampled;
    } else {
      EXPECT_EQ(returns[i], 0) << "call " << i;
    }
  }
  EXPECT_EQ(sampled, 4);
}

TEST_F(SpanCollectorTest, DisabledSamplingReturnsZero) {
  auto& spans = SpanCollector::instance();
  spans.disable();
  std::thread([&] {
    for (int i = 0; i < 8; ++i) EXPECT_EQ(spans.maybe_start_trace(), 0);
  }).join();
  // record() with id 0 is a no-op.
  spans.record(0, Hop::nic_tx, 123);
  EXPECT_EQ(spans.total_recorded(), 0u);
}

TEST_F(SpanCollectorTest, InjectedClockDrivesTimestamps) {
  auto& spans = SpanCollector::instance();
  spans.enable(1);
  static std::int64_t fake_now = 41;
  spans.set_clock([](void*) { return fake_now; }, nullptr);
  fake_now = 42;
  EXPECT_EQ(spans.now_ns(), 42);
  const std::int64_t id = spans.start_trace();
  spans.record_now(id, Hop::nic_tx);
  const std::vector<SpanEvent> events = spans.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ts_ns, 42);
}

TEST_F(SpanCollectorTest, TraceEventJsonSlicesAndInstants) {
  std::vector<SpanEvent> events;
  SpanEvent slice;
  slice.trace_id = 7;
  slice.ts_ns = 5000;
  slice.dur_ns = 2000;  // ended at 5000 -> renderer rewinds start
  slice.hop = Hop::tb_wait;
  events.push_back(slice);
  SpanEvent instant;
  instant.trace_id = 7;
  instant.ts_ns = 6000;
  instant.hop = Hop::nic_tx;
  events.push_back(instant);

  const std::string json = to_trace_event_json(events);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"tb_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"nic_tx\""), std::string::npos);
  // tid groups by trace, and the slice's ts is rewound by its duration:
  // it ended at 5 us with dur 2 us, so it starts at 3 us.
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":3.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":6.000"), std::string::npos);
}

TEST_F(SpanCollectorTest, LinkedEventsCarrySpanAndParentInJson) {
  std::vector<SpanEvent> events;
  SpanEvent linked;
  linked.trace_id = 9;
  linked.ts_ns = 1000;
  linked.span_id = 41;
  linked.parent_id = 40;
  linked.hop = Hop::cp_send;
  events.push_back(linked);
  SpanEvent unlinked;
  unlinked.trace_id = 9;
  unlinked.ts_ns = 2000;
  unlinked.hop = Hop::nic_tx;
  events.push_back(unlinked);

  const std::string json = to_trace_event_json(events);
  EXPECT_NE(json.find("\"span\":41"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":40"), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
  // Unlinked (data-plane) events carry no span/parent args at all.
  EXPECT_EQ(json.find("\"span\":0"), std::string::npos);
}

// The fleet-merge invariant: trace ids and span ids share one atomic
// allocator, so ids handed out to any mix of threads — AgentFarm
// session threads allocating trace ids, agent threads allocating span
// ids — are process-wide unique and a merged controller+agent dump can
// never collide on either. TSan-clean by construction (one fetch_add).
TEST_F(SpanCollectorTest, ConcurrentTraceAndSpanIdsNeverCollide) {
  SpanCollector& c = SpanCollector::instance();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<std::vector<std::int64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &ids, t]() {
      ids[static_cast<std::size_t>(t)].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        // Alternate the two allocation paths like a controller thread
        // (start_trace) interleaved with send paths (next_span_id).
        const std::int64_t id =
            (i & 1) == 0 ? c.start_trace() : c.next_span_id();
        ids[static_cast<std::size_t>(t)].push_back(id);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::set<std::int64_t> unique;
  for (const auto& v : ids) {
    for (const std::int64_t id : v) {
      EXPECT_NE(id, 0);
      EXPECT_TRUE(unique.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(unique.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

// Lane wraparound under concurrent linked recording: each writer wraps
// its own ring several times; every surviving event still has a unique
// span id and an in-range trace id — wraparound sheds old events, it
// never tears or duplicates surviving ones.
TEST_F(SpanCollectorTest, ConcurrentLinkedRecordsStayUniqueAcrossWraparound) {
  SpanCollector& c = SpanCollector::instance();
  c.enable(1, 256);  // small lanes: every thread wraps
  constexpr int kThreads = 4;
  constexpr int kPerThread = 900;  // > 3x lane capacity
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c]() {
      for (int i = 0; i < kPerThread; ++i) {
        const std::int64_t trace = c.start_trace();
        const std::int64_t root = c.record_linked(
            trace, Hop::cp_txn_begin, 0, c.now_ns());
        c.record_linked(trace, Hop::cp_send, root, c.now_ns());
      }
    });
  }
  for (auto& th : threads) th.join();

  const std::vector<SpanEvent> events = c.snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * 256);
  std::set<std::int64_t> span_ids;
  for (const SpanEvent& e : events) {
    EXPECT_NE(e.trace_id, 0);
    EXPECT_NE(e.span_id, 0);
    EXPECT_TRUE(span_ids.insert(e.span_id).second)
        << "span id " << e.span_id << " recorded twice";
    if (e.hop == Hop::cp_send) EXPECT_NE(e.parent_id, 0);
  }
  c.enable(0, SpanCollector::kDefaultLaneCapacity);
}

}  // namespace
}  // namespace eden::telemetry
