// Concurrent churn tests for FlowStore, built to run under TSan and
// ASan/UBSan (ISSUE 9): readers race acquires, erases, resizes,
// capacity eviction and timer-wheel expiry.
#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/state/epoch.h"
#include "src/state/flow_store.h"

namespace eden::state {
namespace {

void stamp_key(void* ctx, lang::StateBlock& block) {
  block.scalars.assign(1, *static_cast<const std::int64_t*>(ctx));
}

// Writers churn a keyspace much larger than max_entries while an expiry
// thread advances the wheel and readers do guarded lookups. Under TSan
// this exercises: lock-free find vs. resize, slab recycling through the
// epoch domain, eviction racing acquire, and the ctrl-byte publication
// protocol. Invariant at the end: created - expired - evicted - erased
// == live.
TEST(StateChurn, ConcurrentChurnCountersReconcile) {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  constexpr int kOpsPerThread = 40'000;
#else
  constexpr int kOpsPerThread = 120'000;
#endif
  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  constexpr std::int64_t kKeySpace = 64 * 1024;

  FlowStoreConfig config;
  config.shards = 8;
  config.initial_capacity = 64;
  config.max_entries = 4096;       // force constant capacity eviction
  config.idle_timeout_ns = 5'000;  // and constant expiry
  config.wheel_tick_ns = 1'000;
  FlowStore store(config);

  std::atomic<std::int64_t> clock{1};
  std::atomic<std::uint64_t> erased{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      std::mt19937_64 rng(0xc0ffee + w);
      std::uint64_t my_erased = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::int64_t key = static_cast<std::int64_t>(rng() % kKeySpace);
        const std::int64_t now = clock.fetch_add(7);
        if (rng() % 8 == 0) {
          if (store.erase(key)) ++my_erased;
        } else {
          EpochDomain::Guard guard(store.domain());
          FlowStore::Entry* e =
              store.acquire(guard, key, now, &stamp_key, &key);
          ASSERT_NE(e, nullptr);
          // Entry payloads are externally synchronized, as in the
          // enclave: take the per-entry lock before touching the block.
          std::lock_guard<std::mutex> lock(e->lock);
          // The block is either freshly stamped with our key or a
          // value some writer stored — never another key's stamp and
          // never a torn/recycled stale block.
          const std::int64_t v = e->block.scalars.at(0);
          ASSERT_TRUE(v == key || v >= kKeySpace)
              << "key " << key << " saw foreign stamp " << v;
          e->block.scalars[0] = kKeySpace + key;  // marked as written
        }
      }
      erased.fetch_add(my_erased);
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      std::mt19937_64 rng(0xbeef + r);
      while (!stop.load(std::memory_order_acquire)) {
        EpochDomain::Guard guard(store.domain());
        for (int i = 0; i < 64; ++i) {
          const std::int64_t key =
              static_cast<std::int64_t>(rng() % kKeySpace);
          FlowStore::Entry* e = store.find(guard, key);
          if (e != nullptr) {
            // Key field is immutable for the entry's lifetime; under
            // the guard the entry cannot be recycled out from under us.
            ASSERT_EQ(e->key, key);
          }
        }
      }
    });
  }
  std::thread expirer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      store.advance(clock.load());
      std::this_thread::yield();
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (int r = 0; r < kReaders; ++r) threads[kWriters + r].join();
  expirer.join();

  const FlowStoreStats s = store.stats();
  EXPECT_EQ(s.created - s.expired - s.evicted - erased.load(), s.live);
  EXPECT_LE(s.live, config.max_entries);
  EXPECT_GT(s.created, 0u);

  // Drain: with the clock far ahead everything expires; counters still
  // reconcile to zero live entries.
  store.advance(clock.load() + 100 * config.idle_timeout_ns);
  const FlowStoreStats drained = store.stats();
  EXPECT_EQ(drained.live, 0u);
  EXPECT_EQ(drained.created - drained.expired - drained.evicted -
                erased.load(),
            0u);
}

// Guarded readers must be able to dereference an entry found before a
// concurrent erase: the epoch domain delays slab recycling until every
// pin from the lookup era is released.
TEST(StateChurn, GuardedReadSurvivesConcurrentErase) {
  constexpr int kRounds = 2'000;
  FlowStoreConfig config;
  config.shards = 1;
  FlowStore store(config);

  std::atomic<std::int64_t> ready_key{-1};
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    std::mt19937_64 rng(0xabba);
    while (!stop.load(std::memory_order_acquire)) {
      const std::int64_t key = ready_key.load(std::memory_order_acquire);
      if (key < 0) continue;
      EpochDomain::Guard guard(store.domain());
      FlowStore::Entry* e = store.find(guard, key);
      if (e != nullptr) {
        // Racing erase may recycle the slab slot only after our guard
        // drops — reading the key through the pointer must stay valid.
        const std::int64_t k = e->key;
        ASSERT_GE(k, 0);
      }
      (void)rng;
    }
  });

  for (std::int64_t round = 0; round < kRounds; ++round) {
    std::int64_t key = round;
    {
      EpochDomain::Guard guard(store.domain());
      store.acquire(guard, key, round + 1, &stamp_key, &key);
    }
    ready_key.store(key, std::memory_order_release);
    store.erase(key);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(store.live(), 0u);
}

// Many threads hammering a tiny hot set: exercises acquire-vs-acquire
// create races on the same key (only one init wins) and touch stamping.
TEST(StateChurn, HotKeyAcquireRaceInitsOnce) {
  constexpr int kThreads = 4;
  constexpr int kOps = 20'000;
  FlowStoreConfig config;
  config.shards = 2;
  FlowStore store(config);

  std::atomic<std::uint64_t> creates_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(77 + t);
      std::uint64_t mine = 0;
      for (int i = 0; i < kOps; ++i) {
        std::int64_t key = static_cast<std::int64_t>(rng() % 8);
        EpochDomain::Guard guard(store.domain());
        bool created = false;
        FlowStore::Entry* e = store.acquire(guard, key, i + 1, &stamp_key,
                                            &key, &created);
        ASSERT_NE(e, nullptr);
        ASSERT_EQ(e->key, key);
        if (created) ++mine;
      }
      creates_seen.fetch_add(mine);
    });
  }
  for (auto& t : threads) t.join();
  // Exactly one create per distinct key, both by the callers' count and
  // by the store's own accounting.
  EXPECT_EQ(creates_seen.load(), 8u);
  EXPECT_EQ(store.stats().created, 8u);
  EXPECT_EQ(store.live(), 8u);
}

}  // namespace
}  // namespace eden::state
