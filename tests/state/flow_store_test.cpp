// FlowStore unit, accounting and differential property tests (ISSUE 9).
#include "src/state/flow_store.h"

#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/state/epoch.h"

namespace eden::state {
namespace {

// Init callback: stamp the creating key into scalar 0 so lookups can
// verify they found the right (and a fully re-initialized) block.
void stamp_key(void* ctx, lang::StateBlock& block) {
  block.scalars.assign(1, *static_cast<const std::int64_t*>(ctx));
}

FlowStore::Entry* acquire(FlowStore& store, const EpochDomain::Guard& guard,
                          std::int64_t key, std::int64_t now,
                          bool* created = nullptr) {
  return store.acquire(guard, key, now, &stamp_key, &key, created);
}

TEST(EpochDomain, GuardPinsAndHorizonAdvances) {
  EpochDomain& domain = EpochDomain::instance();
  EXPECT_FALSE(domain.pinned_here());
  {
    EpochDomain::Guard guard(domain);
    EXPECT_TRUE(domain.pinned_here());
    // Reentrant pinning nests.
    EpochDomain::Guard inner(domain);
    EXPECT_TRUE(domain.pinned_here());
  }
  EXPECT_FALSE(domain.pinned_here());

  // With no pins, the horizon advances past any prior retire stamp.
  const std::uint64_t stamp = domain.stamp_retire();
  EXPECT_GT(domain.reclaim_horizon(), stamp);
}

TEST(EpochDomain, PinnedReaderHoldsBackTheHorizon) {
  EpochDomain& domain = EpochDomain::instance();
  std::uint64_t pinned_at = 0;
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EpochDomain::Guard guard(domain);
    pinned_at = domain.stamp_retire();
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();
  // Retire something "now": its stamp is >= the reader's pin epoch, so
  // the horizon must not pass it while the reader is pinned.
  const std::uint64_t stamp = domain.stamp_retire();
  const std::uint64_t horizon = domain.reclaim_horizon();
  EXPECT_LE(horizon, stamp) << "horizon passed a stamp a pinned reader "
                               "could still observe";
  release.store(true);
  reader.join();
  EXPECT_GT(domain.reclaim_horizon(), stamp);
  (void)pinned_at;
}

TEST(FlowStore, AcquireCreatesFindPeeks) {
  FlowStoreConfig config;
  config.shards = 4;
  FlowStore store(config);
  EpochDomain::Guard guard(store.domain());

  bool created = false;
  FlowStore::Entry* e = acquire(store, guard, 42, 1000, &created);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(created);
  EXPECT_EQ(e->key, 42);
  ASSERT_EQ(e->block.scalars.size(), 1u);
  EXPECT_EQ(e->block.scalars[0], 42);

  // Second acquire: same entry, no re-init.
  e->block.scalars[0] = 777;
  FlowStore::Entry* again = acquire(store, guard, 42, 2000, &created);
  EXPECT_EQ(again, e);
  EXPECT_FALSE(created);
  EXPECT_EQ(again->block.scalars[0], 777);

  // find() has peek semantics: hit without touching.
  const std::int64_t touch_before = e->last_touch_ns.load();
  EXPECT_EQ(store.find(guard, 42), e);
  EXPECT_EQ(e->last_touch_ns.load(), touch_before);
  EXPECT_EQ(store.find(guard, 43), nullptr);

  EXPECT_EQ(store.live(), 1u);
  const FlowStoreStats s = store.stats();
  EXPECT_EQ(s.created, 1u);
  EXPECT_EQ(s.live, 1u);
}

TEST(FlowStore, AcquireStampsLastTouch) {
  FlowStore store(FlowStoreConfig{});
  EpochDomain::Guard guard(store.domain());
  FlowStore::Entry* e = acquire(store, guard, 7, 1000);
  EXPECT_EQ(e->last_touch_ns.load(), 1000);
  acquire(store, guard, 7, 5000);
  EXPECT_EQ(e->last_touch_ns.load(), 5000);
}

TEST(FlowStore, EraseRemovesAndRecyclesInitCleanly) {
  FlowStore store(FlowStoreConfig{});
  EpochDomain::Guard guard(store.domain());
  FlowStore::Entry* e = acquire(store, guard, 1, 100);
  e->block.scalars[0] = 999;  // dirty the payload
  ASSERT_TRUE(store.erase(1));
  EXPECT_FALSE(store.erase(1));
  EXPECT_EQ(store.find(guard, 1), nullptr);
  EXPECT_EQ(store.live(), 0u);

  // A recycled slab entry must come back fully re-initialized.
  bool created = false;
  FlowStore::Entry* e2 = acquire(store, guard, 2, 200, &created);
  EXPECT_TRUE(created);
  EXPECT_EQ(e2->block.scalars[0], 2);
}

TEST(FlowStore, ResizeKeepsEntryPointersStable) {
  FlowStoreConfig config;
  config.shards = 1;
  config.initial_capacity = 16;
  FlowStore store(config);
  EpochDomain::Guard guard(store.domain());

  std::unordered_map<std::int64_t, FlowStore::Entry*> pointers;
  for (std::int64_t k = 0; k < 5000; ++k) {
    pointers[k] = acquire(store, guard, k, k);
  }
  EXPECT_GT(store.stats().resizes, 0u);
  for (std::int64_t k = 0; k < 5000; ++k) {
    FlowStore::Entry* e = store.find(guard, k);
    ASSERT_EQ(e, pointers[k]) << "entry moved for key " << k;
    EXPECT_EQ(e->block.scalars[0], k);
  }
  EXPECT_EQ(store.live(), 5000u);
}

TEST(FlowStore, ZeroMaxEntriesMeansUnlimited) {
  FlowStoreConfig config;
  config.max_entries = 0;
  FlowStore store(config);
  EpochDomain::Guard guard(store.domain());
  for (std::int64_t k = 0; k < 100'000; ++k) acquire(store, guard, k, k);
  EXPECT_EQ(store.live(), 100'000u);
  EXPECT_EQ(store.stats().evicted, 0u);
}

TEST(FlowStore, CapacityEvictionPicksIdlestNotOldestCreated) {
  FlowStoreConfig config;
  config.shards = 1;  // deterministic single victim queue
  config.max_entries = 4;
  config.idle_timeout_ns = 1'000'000'000;  // wheel orders entries; no expiry
  FlowStore store(config);
  EpochDomain::Guard guard(store.domain());

  // Keys 1..4 created in order; then the OLDEST-created key is touched
  // to become the hottest.
  for (std::int64_t k = 1; k <= 4; ++k) acquire(store, guard, k, k * 1000);
  acquire(store, guard, 1, 50'000);  // touch: key 1 is now hot

  // Inserting key 5 must evict the idlest (key 2), not the oldest
  // created (key 1) — the pre-FlowStore store would have killed key 1.
  acquire(store, guard, 5, 60'000);
  EXPECT_EQ(store.live(), 4u);
  EXPECT_NE(store.find(guard, 1), nullptr) << "hot entry was evicted";
  EXPECT_EQ(store.find(guard, 2), nullptr) << "idlest entry survived";
  const FlowStoreStats s = store.stats();
  EXPECT_EQ(s.evicted, 1u);
  EXPECT_EQ(s.expired, 0u);
}

TEST(FlowStore, IdleExpiryRespectsTouchOnAccess) {
  FlowStoreConfig config;
  config.shards = 1;
  config.idle_timeout_ns = 10'000;
  config.wheel_tick_ns = 1'000;
  FlowStore store(config);
  EpochDomain::Guard guard(store.domain());

  acquire(store, guard, 1, 1000);
  acquire(store, guard, 2, 1000);
  // Keep key 1 warm past key 2's deadline.
  acquire(store, guard, 1, 9000);

  store.advance(12'500);  // key 2 idle since 1000: 11.5k > 10k -> expired
  EXPECT_EQ(store.find(guard, 2), nullptr);
  ASSERT_NE(store.find(guard, 1), nullptr) << "touched entry expired early";

  store.advance(20'000);  // key 1 idle since 9000: 11k > 10k -> expired
  EXPECT_EQ(store.find(guard, 1), nullptr);

  const FlowStoreStats s = store.stats();
  EXPECT_EQ(s.expired, 2u);
  EXPECT_EQ(s.evicted, 0u);
  EXPECT_EQ(s.live, 0u);
}

TEST(FlowStore, ExpiryVsEvictionAccountingStaysSeparate) {
  FlowStoreConfig config;
  config.shards = 1;
  config.max_entries = 2;
  config.idle_timeout_ns = 10'000;
  config.wheel_tick_ns = 1'000;
  FlowStore store(config);
  EpochDomain::Guard guard(store.domain());

  acquire(store, guard, 1, 1000);
  acquire(store, guard, 2, 2000);
  acquire(store, guard, 3, 3000);  // capacity: evicts idlest (key 1)
  store.advance(50'000);           // expiry: keys 2 and 3 both idle
  const FlowStoreStats s = store.stats();
  EXPECT_EQ(s.created, 3u);
  EXPECT_EQ(s.evicted, 1u);
  EXPECT_EQ(s.expired, 2u);
  EXPECT_EQ(s.live, 0u);
}

TEST(FlowStore, SinkMirrorsCounters) {
  std::atomic<std::uint64_t> created{0}, expired{0}, evicted{0};
  FlowStoreConfig config;
  config.shards = 1;
  config.max_entries = 2;
  config.idle_timeout_ns = 10'000;
  config.wheel_tick_ns = 1'000;
  config.sink.created = &created;
  config.sink.expired = &expired;
  config.sink.evicted = &evicted;
  {
    FlowStore store(config);
    EpochDomain::Guard guard(store.domain());
    acquire(store, guard, 1, 1000);
    acquire(store, guard, 2, 2000);
    acquire(store, guard, 3, 3000);
    store.advance(50'000);
  }
  // The mirror outlives the store.
  EXPECT_EQ(created.load(), 3u);
  EXPECT_EQ(evicted.load(), 1u);
  EXPECT_EQ(expired.load(), 2u);
}

TEST(FlowStore, ProbeLengthHistogramRecords) {
  FlowStoreConfig config;
  config.probe_sample_every = 1;
  FlowStore store(config);
  EpochDomain::Guard guard(store.domain());
  for (std::int64_t k = 0; k < 1000; ++k) acquire(store, guard, k, k);
  for (std::int64_t k = 0; k < 1000; ++k) acquire(store, guard, k, k + 1);
  const FlowStoreStats s = store.stats();
  EXPECT_GT(s.probe_len.count, 0u);
  EXPECT_GE(s.probe_len.p50(), 1u);
}

// The ISSUE 9 differential property test: FlowStore against a plain
// unordered_map reference model through randomized insert / lookup /
// touch / expire / erase, across resizes. Invariants:
//   (1) lookups agree with the model (presence and payload),
//   (2) nothing expires while last_touch + timeout > now,
//   (3) everything idle >= timeout + one tick is gone after advance,
//   (4) counters reconcile: created - expired - erased == live.
TEST(FlowStore, DifferentialAgainstUnorderedMapModel) {
  constexpr std::int64_t kTimeout = 50'000;
  constexpr std::int64_t kTickNs = 1'000;
  FlowStoreConfig config;
  config.shards = 4;
  config.initial_capacity = 16;  // force plenty of resizes
  config.idle_timeout_ns = kTimeout;
  config.wheel_tick_ns = kTickNs;
  FlowStore store(config);
  EpochDomain::Guard guard(store.domain());

  struct Model {
    std::int64_t value;
    std::int64_t last_touch;
  };
  std::unordered_map<std::int64_t, Model> model;
  std::mt19937_64 rng(0xfeed);
  std::int64_t now = 1;
  std::uint64_t erased = 0;

  for (int step = 0; step < 60'000; ++step) {
    now += static_cast<std::int64_t>(rng() % 200);
    const std::int64_t key = static_cast<std::int64_t>(rng() % 4096);
    switch (rng() % 4) {
      case 0: {  // acquire (insert or touch)
        bool created = false;
        FlowStore::Entry* e = acquire(store, guard, key, now, &created);
        ASSERT_NE(e, nullptr);
        auto it = model.find(key);
        ASSERT_EQ(created, it == model.end()) << "step " << step;
        if (created) {
          ASSERT_EQ(e->block.scalars[0], key);
          // Mutate the payload so stale-block reuse would be caught.
          const std::int64_t value =
              static_cast<std::int64_t>(rng() % 1'000'000);
          e->block.scalars[0] = value;
          model.emplace(key, Model{value, now});
        } else {
          ASSERT_EQ(e->block.scalars[0], it->second.value) << "step " << step;
          it->second.last_touch = now;
        }
        break;
      }
      case 1: {  // find (peek)
        FlowStore::Entry* e = store.find(guard, key);
        const auto it = model.find(key);
        ASSERT_EQ(e != nullptr, it != model.end()) << "step " << step;
        if (e != nullptr) {
          ASSERT_EQ(e->block.scalars[0], it->second.value) << "step " << step;
        }
        break;
      }
      case 2: {  // erase
        const bool did = store.erase(key);
        ASSERT_EQ(did, model.erase(key) == 1u) << "step " << step;
        if (did) ++erased;
        break;
      }
      default: {  // advance: expire idle entries in both store and model
        store.advance(now);
        for (auto it = model.begin(); it != model.end();) {
          // One wheel tick of quantization slack: anything idle past
          // timeout + tick MUST be gone; inside (timeout - tick) MUST
          // survive; the sliver between is the wheel's to decide.
          const std::int64_t idle = now - it->second.last_touch;
          FlowStore::Entry* e = store.find(guard, it->first);
          if (idle >= kTimeout + 2 * kTickNs) {
            ASSERT_EQ(e, nullptr)
                << "key " << it->first << " idle " << idle << " survived "
                << "advance at step " << step;
            it = model.erase(it);
          } else if (idle < kTimeout - kTickNs) {
            ASSERT_NE(e, nullptr)
                << "key " << it->first << " idle only " << idle
                << " expired early at step " << step;
            ++it;
          } else if (e == nullptr) {
            it = model.erase(it);  // boundary sliver: wheel's call
          } else {
            ++it;
          }
        }
        break;
      }
    }
  }

  const FlowStoreStats s = store.stats();
  EXPECT_EQ(s.live, model.size());
  EXPECT_EQ(s.evicted, 0u);
  EXPECT_EQ(s.created - s.expired - erased, s.live);
  // Post-run sweep: everything must expire once far past the deadline.
  store.advance(now + 10 * kTimeout);
  EXPECT_EQ(store.live(), 0u);
}

}  // namespace
}  // namespace eden::state
