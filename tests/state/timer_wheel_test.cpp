// TimerWheel unit + differential property tests (ISSUE 9).
#include "src/state/timer_wheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

namespace eden::state {
namespace {

constexpr std::int64_t kTick = 100;  // ns per tick

std::vector<TimerNode*> advance_collect(TimerWheel& wheel,
                                        std::int64_t now_ns) {
  std::vector<TimerNode*> fired;
  wheel.advance(now_ns, [&](TimerNode* n) { fired.push_back(n); });
  return fired;
}

TEST(TimerWheel, FiresAtDeadlineNotBefore) {
  TimerWheel wheel(kTick);
  TimerNode node;
  wheel.schedule(node, 1000);
  EXPECT_TRUE(node.scheduled());
  EXPECT_TRUE(advance_collect(wheel, 999).empty());
  const auto fired = advance_collect(wheel, 1100);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], &node);
  EXPECT_FALSE(node.scheduled());
  EXPECT_EQ(wheel.scheduled_count(), 0u);
}

TEST(TimerWheel, PastDeadlineFiresOnNextTick) {
  TimerWheel wheel(kTick);
  advance_collect(wheel, 5000);
  TimerNode node;
  wheel.schedule(node, 0);  // already past
  EXPECT_TRUE(advance_collect(wheel, 5000).empty());
  EXPECT_EQ(advance_collect(wheel, 5000 + 2 * kTick).size(), 1u);
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel(kTick);
  TimerNode node;
  wheel.schedule(node, 500);
  wheel.cancel(node);
  EXPECT_FALSE(node.scheduled());
  EXPECT_EQ(wheel.scheduled_count(), 0u);
  EXPECT_TRUE(advance_collect(wheel, 10'000).empty());
  // Cancel is idempotent.
  wheel.cancel(node);
}

TEST(TimerWheel, RescheduleMovesTheNode) {
  TimerWheel wheel(kTick);
  TimerNode node;
  wheel.schedule(node, 500);
  wheel.schedule(node, 5000);
  EXPECT_EQ(wheel.scheduled_count(), 1u);
  EXPECT_TRUE(advance_collect(wheel, 1000).empty());
  EXPECT_EQ(advance_collect(wheel, 5100).size(), 1u);
}

TEST(TimerWheel, LazyReArmInCallback) {
  TimerWheel wheel(kTick);
  TimerNode node;
  wheel.schedule(node, 300);
  int fires = 0;
  // The callback re-arms once (touch-on-access pattern: the owner saw a
  // fresh last_touch and pushed the deadline out).
  wheel.advance(400, [&](TimerNode* n) {
    ++fires;
    wheel.schedule(*n, 800);
  });
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(node.scheduled());
  wheel.advance(900, [&](TimerNode*) { ++fires; });
  EXPECT_EQ(fires, 2);
  EXPECT_FALSE(node.scheduled());
}

TEST(TimerWheel, EmptyWheelTeleportsAcrossIdleGap) {
  TimerWheel wheel(kTick);
  // Hours of idle time with nothing scheduled: must be O(1), not
  // billions of ticks.
  advance_collect(wheel, 4'000'000'000'000);
  TimerNode node;
  wheel.schedule(node, 4'000'000'000'000 + 500);
  EXPECT_EQ(advance_collect(wheel, 4'000'000'000'000 + 1000).size(), 1u);
}

TEST(TimerWheel, ReanchorSkipsGapOnlyWhenEmpty) {
  TimerWheel wheel(kTick);
  TimerNode node;
  wheel.schedule(node, 500);
  const std::int64_t before = wheel.current_tick();
  wheel.reanchor(1'000'000);  // non-empty: no-op
  EXPECT_EQ(wheel.current_tick(), before);
  wheel.cancel(node);
  wheel.reanchor(1'000'000);
  EXPECT_EQ(wheel.current_tick(), 1'000'000 / kTick);
}

TEST(TimerWheel, CascadesAcrossAllLevels) {
  TimerWheel wheel(kTick);
  // One node per level distance: 10 ticks (L0), ~1000 (L1), ~100k (L2),
  // ~7M (L3).
  const std::int64_t deadlines[] = {10 * kTick, 1'000 * kTick,
                                    100'000 * kTick, 7'000'000 * kTick};
  TimerNode nodes[4];
  for (int i = 0; i < 4; ++i) wheel.schedule(nodes[i], deadlines[i]);
  for (int i = 0; i < 4; ++i) {
    // Nothing fires early...
    EXPECT_TRUE(advance_collect(wheel, deadlines[i] - kTick).empty())
        << "node " << i;
    // ...and the node fires within one tick of its deadline.
    const auto fired = advance_collect(wheel, deadlines[i] + kTick);
    ASSERT_EQ(fired.size(), 1u) << "node " << i;
    EXPECT_EQ(fired[0], &nodes[i]);
  }
}

TEST(TimerWheel, CollectOldestReturnsEarliestCohort) {
  TimerWheel wheel(kTick);
  TimerNode late, early, mid;
  wheel.schedule(late, 100'000);
  wheel.schedule(early, 1'000);
  wheel.schedule(mid, 50'000);
  TimerNode* out[8];
  const std::size_t n = wheel.collect_oldest(out, 8);
  ASSERT_GE(n, 1u);
  EXPECT_EQ(out[0], &early);
}

// Differential property test against an ordered-map model under random
// schedule/cancel/advance ops. The wheel's firing contract: a node
// never fires before its (quantized) deadline tick, and fires at most
// one tick late — slot-boundary deadlines get clamped forward by one
// tick when their level cascades.
TEST(TimerWheel, DifferentialAgainstOrderedModel) {
  std::mt19937_64 rng(0x1234);
  TimerWheel wheel(kTick);
  constexpr int kNodes = 256;
  std::vector<TimerNode> nodes(kNodes);
  // Model: node index -> deadline tick (quantized the way schedule()
  // does: max(deadline / tick, cursor + 1)).
  std::map<int, std::int64_t> model;
  std::int64_t now = 0;

  for (int step = 0; step < 20'000; ++step) {
    const int op = static_cast<int>(rng() % 3);
    if (op == 0) {
      const int id = static_cast<int>(rng() % kNodes);
      // Mostly near deadlines, occasionally far (exercise cascades).
      const std::int64_t span =
          (rng() % 16 == 0) ? 2'000'000 * kTick : 200 * kTick;
      const std::int64_t deadline =
          now + static_cast<std::int64_t>(rng() % span);
      wheel.schedule(nodes[id], deadline);
      std::int64_t tick = deadline / kTick;
      if (tick <= wheel.current_tick()) tick = wheel.current_tick() + 1;
      model[id] = tick;
    } else if (op == 1) {
      const int id = static_cast<int>(rng() % kNodes);
      wheel.cancel(nodes[id]);
      model.erase(id);
    } else {
      now += static_cast<std::int64_t>(rng() % (300 * kTick));
      std::vector<int> fired;
      wheel.advance(now, [&](TimerNode* n) {
        fired.push_back(static_cast<int>(n - nodes.data()));
      });
      const std::int64_t cursor = wheel.current_tick();
      for (const int id : fired) {
        auto it = model.find(id);
        ASSERT_NE(it, model.end()) << "step " << step;
        // Never early.
        ASSERT_LE(it->second, cursor) << "step " << step;
        model.erase(it);
      }
      for (const auto& [id, tick] : model) {
        // At most one tick late: anything still unfired must be due no
        // earlier than the cursor itself.
        ASSERT_GE(tick, cursor) << "node " << id << " step " << step;
      }
    }
    ASSERT_EQ(wheel.scheduled_count(), model.size()) << "step " << step;
  }
}

}  // namespace
}  // namespace eden::state
