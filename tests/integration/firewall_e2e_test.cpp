// End-to-end stateful firewall over the simulated network: the
// conntrack action runs in the protected host's enclave on BOTH
// directions (egress establishes, ingress filters), with direction-
// symmetric flow keys from the enclave's own classifier.
#include <gtest/gtest.h>

#include "experiments/testbed.h"
#include "functions/firewall.h"

namespace eden::experiments {
namespace {

constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;

class FirewallE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    hoststack::HostStackConfig stack_config;
    stack_config.process_ingress = true;  // firewall filters arrivals
    bed_ = std::make_unique<Testbed>(stack_config);
    server_ = &bed_->add_host("server");
    friendly_ = &bed_->add_host("friendly");
    attacker_ = &bed_->add_host("attacker");
    auto& sw = bed_->add_switch("tor");
    bed_->connect(*server_, sw, 10 * kGbps, 1000);
    bed_->connect(*friendly_, sw, 10 * kGbps, 1000);
    bed_->connect(*attacker_, sw, 10 * kGbps, 1000);
    bed_->routing().install_dest_routes();
    bed_->finalize();

    // Conntrack on the server's enclave: port 80 public, everything
    // else requires the server to have initiated the connection.
    TestHost& host = *bed_->host_by_name("server");
    host.enclave->add_flow_rule([&] {
      core::FlowClassifierRule rule;
      rule.class_id = bed_->registry().intern("enclave.flows.all");
      rule.symmetric = true;
      return rule;
    }());
    const functions::ConntrackFunction conntrack;
    const core::ActionId action = conntrack.install(*host.enclave, false);
    const std::int64_t open_ports[] = {80};
    functions::push_conntrack_config(*host.enclave, action, server_->id(),
                                     open_ports);
    const core::TableId table = host.enclave->create_table("fw");
    host.enclave->add_rule(table, core::ClassPattern("*"), action);
  }

  // Sends `bytes` from `src` to the server on `port`; returns true if
  // the transfer completed (i.e. the firewall let it through).
  bool transfer_to_server(netsim::HostNode& src, std::uint16_t port,
                          std::uint64_t bytes) {
    TestHost& server_host = *bed_->host_by_name("server");
    TestHost& src_host = *bed_->host_by_name(src.name());
    bool done = false;
    server_host.stack->listen(
        port, [&done, bytes](transport::TcpReceiver& r,
                             const hoststack::FlowInfo&) {
          r.expect(bytes);
          r.on_complete = [&done] { done = true; };
        });
    auto& sender = src_host.stack->open_flow(server_->id(), port);
    sender.start(bytes);
    bed_->run_for(200 * netsim::kMillisecond);
    return done;
  }

  std::unique_ptr<Testbed> bed_;
  netsim::HostNode* server_ = nullptr;
  netsim::HostNode* friendly_ = nullptr;
  netsim::HostNode* attacker_ = nullptr;
};

TEST_F(FirewallE2E, PublicPortAccepts) {
  EXPECT_TRUE(transfer_to_server(*friendly_, 80, 50000));
}

TEST_F(FirewallE2E, ClosedPortDropsEverything) {
  EXPECT_FALSE(transfer_to_server(*attacker_, 5000, 50000));
  // The drops happened in the server's enclave, on ingress.
  EXPECT_GT(bed_->host_by_name("server")->stack->enclave_drops(), 0u);
}

TEST_F(FirewallE2E, ServerInitiatedConnectionGetsRepliesBack) {
  // The server opens a flow to the attacker host (e.g. a fetch); the
  // reply ACK direction passes the firewall because the server's own
  // egress established the connection state.
  TestHost& server_host = *bed_->host_by_name("server");
  TestHost& peer_host = *bed_->host_by_name("attacker");
  bool done = false;
  peer_host.stack->listen(7000, [&](transport::TcpReceiver& r,
                                    const hoststack::FlowInfo&) {
    r.expect(50000);
    r.on_complete = [&] { done = true; };
  });
  auto& sender = server_host.stack->open_flow(attacker_->id(), 7000);
  sender.start(50000);
  bed_->run_for(200 * netsim::kMillisecond);
  EXPECT_TRUE(done);
  // Completion requires the ACKs to have passed the server's ingress
  // firewall.
  EXPECT_TRUE(sender.complete());
}

TEST_F(FirewallE2E, UnprotectedHostsUnaffected) {
  // The firewall lives only in the server's enclave; attacker ->
  // friendly traffic is untouched.
  TestHost& friendly_host = *bed_->host_by_name("friendly");
  TestHost& attacker_host = *bed_->host_by_name("attacker");
  bool done = false;
  friendly_host.stack->listen(9000, [&](transport::TcpReceiver& r,
                                        const hoststack::FlowInfo&) {
    r.expect(10000);
    r.on_complete = [&] { done = true; };
  });
  attacker_host.stack->open_flow(friendly_->id(), 9000).start(10000);
  bed_->run_for(100 * netsim::kMillisecond);
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace eden::experiments
