// Integration tests: scaled-down versions of the paper's experiments
// asserting the qualitative results (the "shape") hold.
#include <gtest/gtest.h>

#include "experiments/fig10_wcmp.h"
#include "experiments/fig11_pulsar.h"
#include "experiments/fig12_overheads.h"
#include "experiments/fig9_scheduling.h"

namespace eden::experiments {
namespace {

// --- Case study 1: flow scheduling (Figure 9) --------------------------

Fig9Result quick_fig9(SchedulingScheme scheme, SchedulingVariant variant) {
  Fig9Config cfg;
  cfg.scheme = scheme;
  cfg.variant = variant;
  cfg.duration = 400 * netsim::kMillisecond;
  cfg.warmup = 100 * netsim::kMillisecond;
  return run_fig9(cfg);
}

TEST(Fig9, PiasReducesSmallFlowFct) {
  const Fig9Result baseline =
      quick_fig9(SchedulingScheme::baseline, SchedulingVariant::native);
  const Fig9Result pias =
      quick_fig9(SchedulingScheme::pias, SchedulingVariant::eden);
  ASSERT_GT(baseline.small_fct_us.count(), 10u);
  ASSERT_GT(pias.small_fct_us.count(), 10u);
  // The paper reports a 25-40% improvement; we assert the direction
  // with margin.
  EXPECT_LT(pias.small_fct_us.mean(), baseline.small_fct_us.mean() * 0.8);
  EXPECT_LT(pias.small_fct_us.p95(), baseline.small_fct_us.p95());
  // Intermediate flows improve too.
  EXPECT_LT(pias.intermediate_fct_us.mean(),
            baseline.intermediate_fct_us.mean());
  EXPECT_EQ(pias.interpreter_errors, 0u);
}

TEST(Fig9, SffMatchesOrBeatsPias) {
  const Fig9Result pias =
      quick_fig9(SchedulingScheme::pias, SchedulingVariant::eden);
  const Fig9Result sff =
      quick_fig9(SchedulingScheme::sff, SchedulingVariant::eden);
  EXPECT_LE(sff.intermediate_fct_us.mean(),
            pias.intermediate_fct_us.mean() * 1.1);
}

TEST(Fig9, NativeAndEdenAgree) {
  // Same seed, same decisions: interpreted and native runs should be
  // statistically indistinguishable (here: near-identical).
  const Fig9Result native =
      quick_fig9(SchedulingScheme::pias, SchedulingVariant::native);
  const Fig9Result eden =
      quick_fig9(SchedulingScheme::pias, SchedulingVariant::eden);
  EXPECT_NEAR(eden.small_fct_us.mean(), native.small_fct_us.mean(),
              native.small_fct_us.mean() * 0.05 + 1.0);
}

TEST(Fig9, BaselineEdenNoopMatchesBaselineNative) {
  const Fig9Result native =
      quick_fig9(SchedulingScheme::baseline, SchedulingVariant::native);
  const Fig9Result noop = quick_fig9(SchedulingScheme::baseline,
                                     SchedulingVariant::eden_ignore_output);
  EXPECT_NEAR(noop.small_fct_us.mean(), native.small_fct_us.mean(),
              native.small_fct_us.mean() * 0.05 + 1.0);
}

TEST(Fig9, BackgroundTrafficNotStarved) {
  const Fig9Result pias =
      quick_fig9(SchedulingScheme::pias, SchedulingVariant::eden);
  // Background still gets a meaningful share of the 10G link.
  EXPECT_GT(pias.background_mbps, 500.0);
}

// --- Case study 2: WCMP (Figure 10) -------------------------------------

Fig10Result quick_fig10(LoadBalanceScheme scheme, DataPlaneVariant variant,
                        bool message_level = false) {
  Fig10Config cfg;
  cfg.scheme = scheme;
  cfg.variant = variant;
  cfg.message_level = message_level;
  cfg.duration = 300 * netsim::kMillisecond;
  cfg.warmup = 50 * netsim::kMillisecond;
  return run_fig10(cfg);
}

TEST(Fig10, WcmpBeatsEcmpByAFewX) {
  const Fig10Result ecmp =
      quick_fig10(LoadBalanceScheme::ecmp, DataPlaneVariant::eden);
  const Fig10Result wcmp =
      quick_fig10(LoadBalanceScheme::wcmp, DataPlaneVariant::eden);
  // Paper: ECMP just over 2 Gbps, WCMP ~7.8 Gbps (3x), below the 11G
  // min-cut because of reordering.
  EXPECT_GT(ecmp.throughput_mbps, 1000.0);
  EXPECT_LT(ecmp.throughput_mbps, 3500.0);
  EXPECT_GT(wcmp.throughput_mbps, ecmp.throughput_mbps * 2.5);
  EXPECT_LT(wcmp.throughput_mbps, 11000.0);
  EXPECT_GT(wcmp.ooo_segments, 0u);  // reordering really happened
}

TEST(Fig10, NativeAndEdenAgree) {
  const Fig10Result native =
      quick_fig10(LoadBalanceScheme::wcmp, DataPlaneVariant::native);
  const Fig10Result eden =
      quick_fig10(LoadBalanceScheme::wcmp, DataPlaneVariant::eden);
  EXPECT_NEAR(eden.throughput_mbps, native.throughput_mbps,
              native.throughput_mbps * 0.10);
  EXPECT_GT(eden.interpreted_packets, 1000u);
}

TEST(Fig10, MessageLevelWcmpAvoidsReordering) {
  const Fig10Result per_packet =
      quick_fig10(LoadBalanceScheme::wcmp, DataPlaneVariant::eden, false);
  const Fig10Result per_message =
      quick_fig10(LoadBalanceScheme::wcmp, DataPlaneVariant::eden, true);
  // A flow is one message here, so message-level WCMP pins each flow to
  // one path: drastically fewer out-of-order arrivals. (The residual
  // count is loss-induced holes — a dropped segment makes everything
  // behind it arrive "out of order" — not path reordering.)
  EXPECT_LT(per_message.ooo_segments, per_packet.ooo_segments / 5);
}

// --- Case study 3: Pulsar QoS (Figure 11) ---------------------------------

Fig11Result quick_fig11(PulsarMode mode) {
  Fig11Config cfg;
  cfg.mode = mode;
  cfg.duration = 600 * netsim::kMillisecond;
  cfg.warmup = 200 * netsim::kMillisecond;
  return run_fig11(cfg);
}

TEST(Fig11, IsolatedTenantsGetSimilarThroughput) {
  const Fig11Result r = quick_fig11(PulsarMode::isolated);
  EXPECT_GT(r.read_mbps, 80.0);
  EXPECT_GT(r.write_mbps, 80.0);
  EXPECT_NEAR(r.read_mbps, r.write_mbps, r.read_mbps * 0.25);
}

TEST(Fig11, SimultaneousReadsStarveWrites) {
  const Fig11Result iso = quick_fig11(PulsarMode::isolated);
  const Fig11Result sim = quick_fig11(PulsarMode::simultaneous);
  // Paper: WRITE throughput drops by 72% when competing with READs.
  EXPECT_LT(sim.write_mbps, iso.write_mbps * 0.5);
  EXPECT_GT(sim.read_mbps, iso.read_mbps * 0.7);  // READs barely hurt
  EXPECT_GT(sim.rejected_requests, 0u);  // the queue really flooded
}

TEST(Fig11, RateControlRestoresFairness) {
  const Fig11Result rc = quick_fig11(PulsarMode::rate_controlled);
  EXPECT_GT(rc.read_mbps, 30.0);
  EXPECT_GT(rc.write_mbps, 30.0);
  EXPECT_NEAR(rc.read_mbps, rc.write_mbps,
              std::max(rc.read_mbps, rc.write_mbps) * 0.25);
}

TEST(Fig11, NativeVariantMatchesEden) {
  Fig11Config cfg;
  cfg.mode = PulsarMode::rate_controlled;
  cfg.duration = 400 * netsim::kMillisecond;
  cfg.use_native = true;
  const Fig11Result native = run_fig11(cfg);
  cfg.use_native = false;
  const Fig11Result eden = run_fig11(cfg);
  EXPECT_NEAR(native.write_mbps, eden.write_mbps,
              eden.write_mbps * 0.1 + 1.0);
}

// --- Figure 12: overheads ----------------------------------------------------

TEST(Fig12, ComponentCostsAreOrderedAndBounded) {
  Fig12Config cfg;
  cfg.packets = 30000;
  cfg.warmup_packets = 3000;
  const Fig12Result r = run_fig12(cfg);
  // This quick pass is too short for fine-grained layer ordering on a
  // noisy machine (the bench binary runs 200k packets per layer for
  // that); assert the robust facts: the full Eden pipeline costs more
  // than the vanilla path, and the added cost stays well under a
  // microsecond per packet.
  EXPECT_GT(r.interpreter.avg_ns, r.vanilla.avg_ns);
  EXPECT_LT(r.interpreter.avg_ns - r.vanilla.avg_ns, 3000.0);
}

TEST(Fig12, FootprintMatchesPaperScale) {
  Fig12Config cfg;
  cfg.packets = 2000;
  cfg.warmup_packets = 200;
  const Fig12Result r = run_fig12(cfg);
  // Paper, Section 5.4: operand stack ~64 bytes, heap ~256 bytes.
  EXPECT_LE(r.operand_stack_bytes, 64u);
  EXPECT_GT(r.operand_stack_bytes, 0u);
  EXPECT_LE(r.locals_bytes, 256u);
  EXPECT_GT(r.bytecode_instructions, 10u);
}

}  // namespace
}  // namespace eden::experiments
