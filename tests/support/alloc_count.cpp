// Counting replacements for the global allocation functions. The
// replacement set must be complete — plain, nothrow, array and aligned
// forms — or a compiler-selected variant would bypass the counters.
// All forms funnel through malloc/aligned free pairs, so ASan still
// interposes underneath and keeps its poisoning/quarantine behavior.
#include "support/alloc_count.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace eden::testsupport {
namespace {

std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_deletes{0};

void* counted_alloc(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size) != 0) {
    return nullptr;
  }
  return p;
}

void counted_free(void* p) {
  g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

AllocCounts alloc_counts() {
  AllocCounts c;
  c.news = g_news.load(std::memory_order_relaxed);
  c.deletes = g_deletes.load(std::memory_order_relaxed);
  return c;
}

}  // namespace eden::testsupport

namespace {

void* alloc_or_throw(std::size_t size) {
  void* p = eden::testsupport::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* alloc_aligned_or_throw(std::size_t size, std::align_val_t align) {
  void* p = eden::testsupport::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return alloc_or_throw(size); }
void* operator new[](std::size_t size) { return alloc_or_throw(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return eden::testsupport::counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return eden::testsupport::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return alloc_aligned_or_throw(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return alloc_aligned_or_throw(size, align);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return eden::testsupport::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return eden::testsupport::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { eden::testsupport::counted_free(p); }
void operator delete[](void* p) noexcept {
  eden::testsupport::counted_free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  eden::testsupport::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  eden::testsupport::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  eden::testsupport::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  eden::testsupport::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  eden::testsupport::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  eden::testsupport::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  eden::testsupport::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  eden::testsupport::counted_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  eden::testsupport::counted_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  eden::testsupport::counted_free(p);
}
