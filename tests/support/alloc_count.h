// Global heap-allocation counters for the zero-alloc proof obligation:
// linking eden_alloc_count into a binary replaces the global operator
// new/delete family with counting wrappers, so a test (or the bench)
// can assert that a code region performed exactly zero heap
// allocations. The counters are process-wide relaxed atomics — scope a
// measurement with AllocGate and keep unrelated threads quiet (or, for
// the data-plane test, deliberately loud: worker allocations are
// exactly what the steady-state invariant forbids).
#pragma once

#include <cstdint>

namespace eden::testsupport {

struct AllocCounts {
  std::uint64_t news = 0;     // operator new/new[] calls (all variants)
  std::uint64_t deletes = 0;  // operator delete/delete[] calls
};

// Current process-wide totals.
AllocCounts alloc_counts();

// Counts heap traffic since its construction.
class AllocGate {
 public:
  AllocGate() : start_(alloc_counts()) {}

  std::uint64_t news() const { return alloc_counts().news - start_.news; }
  std::uint64_t deletes() const {
    return alloc_counts().deletes - start_.deletes;
  }

 private:
  AllocCounts start_;
};

}  // namespace eden::testsupport
