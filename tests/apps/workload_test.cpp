#include "apps/workload.h"

#include <gtest/gtest.h>

namespace eden::apps {
namespace {

TEST(FlowSizeDistribution, ValidatesCdf) {
  EXPECT_THROW(FlowSizeDistribution({}), std::invalid_argument);
  EXPECT_THROW(FlowSizeDistribution({{0.5, 100}}), std::invalid_argument);
  EXPECT_THROW(FlowSizeDistribution({{0.5, 100}, {0.4, 200}, {1.0, 300}}),
               std::invalid_argument);
  EXPECT_THROW(FlowSizeDistribution({{1.2, 100}}), std::invalid_argument);
  EXPECT_NO_THROW(FlowSizeDistribution({{0.5, 100}, {1.0, 200}}));
}

TEST(FlowSizeDistribution, FixedAlwaysSamplesSameSize) {
  const auto dist = FlowSizeDistribution::fixed(5000);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(dist.sample(rng), 5000u);
    EXPECT_GE(dist.sample(rng), 1u);
  }
  EXPECT_NEAR(dist.mean(), 2500.0, 1.0);  // linear ramp from 0
}

TEST(FlowSizeDistribution, WebSearchShape) {
  const auto dist = FlowSizeDistribution::web_search();
  util::Rng rng(7);
  int small = 0, huge = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t size = dist.sample(rng);
    if (size < 10 * 1024) ++small;
    if (size > 1024 * 1024) ++huge;
  }
  // ~18-28% of web-search flows are under 10KB; a solid tail is over
  // 1MB. (Wide bounds: this asserts shape, not exact quantiles.)
  EXPECT_GT(small, kDraws / 8);
  EXPECT_LT(small, kDraws / 3);
  EXPECT_GT(huge, kDraws / 8);
}

TEST(FlowSizeDistribution, SampleMeanMatchesAnalyticMean) {
  const auto dist = FlowSizeDistribution::web_search();
  util::Rng rng(11);
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(dist.sample(rng));
  }
  const double sample_mean = sum / kDraws;
  EXPECT_NEAR(sample_mean / dist.mean(), 1.0, 0.05);
}

TEST(FlowSizeDistribution, DataMiningIsHeavierTailed) {
  const auto web = FlowSizeDistribution::web_search();
  const auto mining = FlowSizeDistribution::data_mining();
  // Data-mining has more tiny flows AND a longer tail.
  util::Rng rng(3);
  int web_tiny = 0, mining_tiny = 0;
  for (int i = 0; i < 50000; ++i) {
    if (web.sample(rng) < 4096) ++web_tiny;
    if (mining.sample(rng) < 4096) ++mining_tiny;
  }
  EXPECT_GT(mining_tiny, web_tiny * 3);
  EXPECT_GT(mining.mean(), web.mean());
}

TEST(PoissonArrivals, RateMatchesLoad) {
  // 70% of 10 Gbps with 1 MB mean flows: 875 flows/s.
  const PoissonArrivals arrivals(0.7, 10ULL * 1000 * 1000 * 1000,
                                 1000.0 * 1000.0);
  EXPECT_NEAR(arrivals.rate_per_sec(), 875.0, 0.1);

  util::Rng rng(5);
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(arrivals.next_gap(rng));
  }
  const double mean_gap_s = sum / kDraws / 1e9;
  EXPECT_NEAR(mean_gap_s * arrivals.rate_per_sec(), 1.0, 0.03);
}

TEST(PoissonArrivals, RejectsBadParameters) {
  EXPECT_THROW(PoissonArrivals(0.0, 1000, 100), std::invalid_argument);
  EXPECT_THROW(PoissonArrivals(0.5, 0, 100), std::invalid_argument);
  EXPECT_THROW(PoissonArrivals(0.5, 1000, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace eden::apps
