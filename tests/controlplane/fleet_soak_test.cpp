// Fleet soak: an in-process farm of controller->enclave session stacks
// (controlplane/farm.h) polled by the TelemetryCollector over the
// streaming delta protocol, with FaultyTransport chaos, agent restarts
// and a killed agent along the way. The test asserts the collector's
// merged totals equal the farm-side ground truth exactly, that the
// dead agent is flagged stale (and degrades fleet health), and that
// restarted agents were re-synced in full — all without a poll cycle
// ever blocking on a dead slot.
//
// Sized by environment so the tier-1 run stays quick and CI can turn
// the same binary into the thousand-agent soak:
//   EDEN_FLEET_AGENTS  farm size            (default 64; CI: 1000)
//   EDEN_FLEET_ROUNDS  chaos poll cycles    (default 10)
//   EDEN_FLEET_SEED    fault/jitter seed    (default 1)
//   EDEN_FLEET_JSON    write the final fleet telemetry JSON here
//   EDEN_FLEET_HEALTH_JSON  write the health event log here
//   EDEN_FLEET_FLIGHT_JSON  write the flight-recorder dump here (also
//                           installs the crash handler on that path)
//   EDEN_FLEET_TRACE_JSON   write the span dump (Perfetto JSON) here
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "controlplane/farm.h"
#include "telemetry/collector.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/health.h"
#include "telemetry/json.h"
#include "telemetry/span.h"

namespace eden::controlplane {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

TEST(FleetSoak, DeltaPolledFleetMatchesGroundTruthUnderChaos) {
  const std::uint64_t agents = env_u64("EDEN_FLEET_AGENTS", 64);
  const std::uint64_t rounds = env_u64("EDEN_FLEET_ROUNDS", 10);
  const std::uint64_t seed = env_u64("EDEN_FLEET_SEED", 1);
  ASSERT_GE(agents, 4u);

  // The always-on postmortem journal: if this soak crashes, the crash
  // handler dumps the last moments of every slot to the artifact path.
  telemetry::FlightRecorder::instance().reset();
  if (const char* flight_path = std::getenv("EDEN_FLEET_FLIGHT_JSON")) {
    telemetry::FlightRecorder::install_crash_handler(flight_path);
  }

  FarmConfig farm_config;
  farm_config.agents = agents;
  farm_config.seed = seed;
  farm_config.chaos = true;
  AgentFarm farm(farm_config);
  farm.install_program();
  ASSERT_TRUE(farm.converge()) << "farm never converged after install";

  std::uint64_t now_ns = 0;
  telemetry::CollectorConfig collector_config;
  collector_config.threads = 4;
  collector_config.stale_after_ns = 4'000'000'000;
  telemetry::TelemetryCollector collector(collector_config,
                                          [&]() { return now_ns; });
  for (telemetry::CollectorSource& s : farm.sources()) {
    collector.add_source(std::move(s));
  }
  telemetry::HealthWatchdog watchdog;
  if (const char* flight_path = std::getenv("EDEN_FLEET_FLIGHT_JSON")) {
    // A critical fleet transition is exactly the moment a postmortem
    // wants the journal; snapshot it at the transition, not just at
    // exit.
    watchdog.set_critical_dump_path(flight_path);
  }

  const std::size_t restart_a = agents / 3;
  const std::size_t restart_b = (2 * agents) / 3;
  const std::size_t victim = agents - 1;

  // One poll cycle per virtual second; the fetches themselves drive
  // each slot's pump, the steps in between run heartbeats/reconnects.
  const auto cycle = [&]() {
    for (int k = 0; k < 40; ++k) farm.step_all();
    now_ns += 1'000'000'000;
    collector.poll();
    watchdog.evaluate(now_ns, collector);
  };

  for (std::uint64_t round = 1; round <= rounds; ++round) {
    for (std::size_t i = 0; i < farm.size(); ++i) {
      if (farm.killed(i)) continue;
      farm.drive(i, 20 + (i * 13 + round * 7) % 50);
      farm.set_host_series_value(i, "dataplane_ring_depth",
                                 static_cast<double>((i + round) % 96));
    }
    if (round == 5) farm.restart(restart_a);
    if (round == 7) farm.restart(restart_b);
    cycle();

    if (round == 3) {
      // Kill one agent — but only after a poll that captured all of
      // its traffic, so the collector's last-known snapshot is exact
      // and the ground-truth equality below stays provable. Chaos may
      // make that take a few cycles.
      bool captured =
          collector.status(victim).last_success_ns == now_ns;
      for (int attempt = 0; attempt < 50 && !captured; ++attempt) {
        cycle();
        captured = collector.status(victim).last_success_ns == now_ns;
      }
      ASSERT_TRUE(captured) << "victim never delivered a clean poll";
      farm.kill(victim);
    }
  }

  // Settle: chaos off (new dials get clean pipes), keep polling until
  // every live agent has reported successfully since its last drive.
  for (std::size_t i = 0; i < farm.size(); ++i) farm.set_chaos(i, false);
  const std::uint64_t settle_start_ns = now_ns;
  bool all_clean = false;
  for (int attempt = 0; attempt < 100 && !all_clean; ++attempt) {
    cycle();
    all_clean = true;
    for (std::size_t i = 0; i < farm.size(); ++i) {
      if (farm.killed(i)) continue;
      if (collector.status(i).last_success_ns <= settle_start_ns) {
        all_clean = false;
        break;
      }
    }
  }
  ASSERT_TRUE(all_clean) << "fleet never settled after chaos";

  // Ground truth: every packet the farm drove is in the merged view —
  // live agents reported after their last drive, the killed agent
  // contributes its exactly-captured final snapshot.
  EXPECT_EQ(collector.latest().packets, farm.driven_total());
  EXPECT_EQ(collector.latest().enclaves.size(), farm.size());

  // The dead agent is flagged, degrades health, and never blocked the
  // poll loop (every cycle completed and bumped the poll counter).
  EXPECT_TRUE(collector.status(victim).stale);
  EXPECT_FALSE(collector.status(victim).reachable);
  ASSERT_EQ(watchdog.agents().size(), farm.size());
  EXPECT_GE(watchdog.agents()[victim].state,
            telemetry::HealthState::degraded);
  EXPECT_GE(watchdog.fleet_state(), telemetry::HealthState::degraded);
  EXPECT_EQ(collector.polls(), now_ns / 1'000'000'000);

  // Restarted agents came back via a full epoch resync; steady state
  // ran on deltas.
  EXPECT_GE(collector.status(restart_a).full_resyncs, 2u);
  EXPECT_GE(collector.status(restart_b).full_resyncs, 2u);
  std::uint64_t deltas = 0;
  for (const telemetry::AgentStatus& st : collector.statuses()) {
    deltas += st.deltas_applied;
  }
  EXPECT_GT(deltas, 0u);

  if (const char* json_path = std::getenv("EDEN_FLEET_JSON")) {
    std::ofstream out(json_path);
    out << telemetry::to_json(collector.latest());
  }
  if (const char* health_path = std::getenv("EDEN_FLEET_HEALTH_JSON")) {
    std::ofstream out(health_path);
    out << watchdog.events_json();
  }
  if (const char* flight_path = std::getenv("EDEN_FLEET_FLIGHT_JSON")) {
    telemetry::FlightRecorder::instance().dump_to_file(flight_path);
  }
}

// Acceptance: killing an agent mid-transaction yields ONE causally
// linked trace spanning the whole recovery — txn begin, the staged
// sends, teardown, backoff, the folded resync on reconnect and its
// commit — plus a flight-recorder journal telling the same story.
TEST(FleetSoak, KilledAgentMidTxnIsOneTraceWithFlightDump) {
  telemetry::SpanCollector& spans = telemetry::SpanCollector::instance();
  telemetry::FlightRecorder& flight = telemetry::FlightRecorder::instance();
  spans.set_clock(nullptr, nullptr);
  spans.reset();
  spans.enable(1, 1 << 15);
  flight.reset();

  FarmConfig farm_config;
  farm_config.agents = 8;
  farm_config.seed = 2;
  AgentFarm farm(farm_config);
  farm.install_program();
  ASSERT_TRUE(farm.converge());
  spans.reset();   // drop install/connect traces
  flight.reset();  // keep only the victim's story

  const std::size_t victim = 3;
  EnclaveSession& session = farm.session(victim);
  session.begin_txn();
  session.add_rule("t", "10.*", "mark");
  for (int k = 0; k < 5; ++k) farm.step_all();

  farm.kill(victim);
  session.commit_txn();  // rides the outage: folded into the resync
  for (int k = 0; k < 80; ++k) farm.step_all();
  farm.revive(victim);
  ASSERT_TRUE(farm.converge());
  EXPECT_GE(session.stats().txns_committed, 1u);

  // One trace, containing the full retry -> reconnect -> resync ->
  // commit chain, every parent link resolving within the trace.
  std::map<std::int64_t, std::vector<telemetry::SpanEvent>> by_trace;
  for (const telemetry::SpanEvent& e : spans.snapshot()) {
    by_trace[e.trace_id].push_back(e);
  }
  ASSERT_EQ(by_trace.size(), 1u) << "recovery split across traces";
  const std::vector<telemetry::SpanEvent>& events = by_trace.begin()->second;
  std::set<telemetry::Hop> hops;
  std::set<std::int64_t> span_ids;
  for (const telemetry::SpanEvent& e : events) {
    hops.insert(e.hop);
    if (e.span_id != 0) span_ids.insert(e.span_id);
  }
  for (const telemetry::Hop expected :
       {telemetry::Hop::cp_txn_begin, telemetry::Hop::cp_txn_commit,
        telemetry::Hop::cp_teardown, telemetry::Hop::cp_backoff,
        telemetry::Hop::cp_resync, telemetry::Hop::cp_send,
        telemetry::Hop::cp_agent_apply, telemetry::Hop::cp_agent_publish}) {
    EXPECT_EQ(hops.count(expected), 1u)
        << "missing hop " << telemetry::hop_name(expected);
  }
  for (const telemetry::SpanEvent& e : events) {
    if (e.parent_id != 0) {
      EXPECT_EQ(span_ids.count(e.parent_id), 1u)
          << "dangling parent link from " << telemetry::hop_name(e.hop);
    }
  }

  // The flight recorder journaled the same lifecycle, and its dump is
  // parseable JSON carrying those events.
  std::set<telemetry::FlightEventType> kinds;
  for (const telemetry::FlightEvent& e : flight.snapshot()) {
    kinds.insert(e.type);
  }
  for (const telemetry::FlightEventType expected :
       {telemetry::FlightEventType::txn_begin,
        telemetry::FlightEventType::txn_commit,
        telemetry::FlightEventType::agent_kill,
        telemetry::FlightEventType::agent_revive,
        telemetry::FlightEventType::session_teardown,
        telemetry::FlightEventType::session_backoff,
        telemetry::FlightEventType::resync}) {
    EXPECT_EQ(kinds.count(expected), 1u)
        << "missing flight event "
        << telemetry::flight_event_name(expected);
  }
  const telemetry::Json dump =
      telemetry::JsonParser(flight.dump_json()).parse();
  const telemetry::Json* dumped = dump.get("events");
  ASSERT_NE(dumped, nullptr);
  bool saw_kill = false;
  for (const telemetry::Json& e : dumped->items) {
    if (e.str("type") == "agent_kill") saw_kill = true;
  }
  EXPECT_TRUE(saw_kill);

  if (const char* trace_path = std::getenv("EDEN_FLEET_TRACE_JSON")) {
    std::ofstream out(trace_path);
    out << telemetry::to_trace_event_json(spans.snapshot());
  }

  spans.disable();
  spans.reset();
  flight.reset();
}

}  // namespace
}  // namespace eden::controlplane
