// The control-plane session layer: frame codec robustness, pipe and
// fault-injection transports, and the full session protocol — connect,
// greet, resync, heartbeats, liveness and request timeouts, backoff,
// journal replay onto restarted enclaves, and transactional commits.
#include "controlplane/session.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "controlplane/fault.h"
#include "core/controller.h"
#include "telemetry/json.h"

namespace eden::controlplane {
namespace {

// --- Frame codec --------------------------------------------------------

TEST(FrameCodec, RoundTripsWholeAndByteByByte) {
  const Frame frame{FrameType::request, 42, {1, 2, 3, 4, 5}};
  const auto bytes = encode_frame(frame);

  FrameDecoder whole;
  std::vector<Frame> out;
  EXPECT_TRUE(whole.feed(bytes, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, FrameType::request);
  EXPECT_EQ(out[0].id, 42u);
  EXPECT_EQ(out[0].payload, frame.payload);

  // One byte at a time exercises reassembly across feed() calls.
  FrameDecoder dribble;
  out.clear();
  for (const std::uint8_t byte : bytes) {
    EXPECT_TRUE(dribble.feed({&byte, 1}, out));
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, frame.payload);
  EXPECT_FALSE(dribble.corrupt());
}

TEST(FrameCodec, CoalescedFramesDecodeInOrder) {
  auto bytes = encode_frame({FrameType::heartbeat, 1, {}});
  const auto second = encode_frame({FrameType::response, 2, {9, 9}});
  bytes.insert(bytes.end(), second.begin(), second.end());

  FrameDecoder decoder;
  std::vector<Frame> out;
  EXPECT_TRUE(decoder.feed(bytes, out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].type, FrameType::heartbeat);
  EXPECT_EQ(out[1].type, FrameType::response);
  EXPECT_EQ(out[1].payload.size(), 2u);
}

TEST(FrameCodec, HeaderCorruptionIsUnrecoverable) {
  const auto good = encode_frame({FrameType::request, 7, {1, 2, 3}});

  struct Case {
    std::size_t offset;
    std::uint8_t value;
  };
  // Magic, version, type and an absurd length each poison the stream.
  const Case cases[] = {{4, 0x00}, {8, 0x7f}, {9, 0xee}, {3, 0xff}};
  for (const Case& c : cases) {
    auto bad = good;
    bad[c.offset] = c.value;
    FrameDecoder decoder;
    std::vector<Frame> out;
    EXPECT_FALSE(decoder.feed(bad, out)) << "offset " << c.offset;
    EXPECT_TRUE(decoder.corrupt());
    EXPECT_FALSE(decoder.error().empty());
    EXPECT_TRUE(out.empty());
    // A corrupt decoder stays corrupt until reset.
    EXPECT_FALSE(decoder.feed(good, out));
    decoder.reset();
    EXPECT_TRUE(decoder.feed(good, out));
    ASSERT_EQ(out.size(), 1u);
  }
}

TEST(FrameCodec, FramesAheadOfCorruptionStillEmit) {
  auto bytes = encode_frame({FrameType::heartbeat_ack, 3, {}});
  const std::vector<std::uint8_t> junk(20, 0xff);
  bytes.insert(bytes.end(), junk.begin(), junk.end());

  FrameDecoder decoder;
  std::vector<Frame> out;
  EXPECT_FALSE(decoder.feed(bytes, out));
  ASSERT_EQ(out.size(), 1u);  // the good frame survived
  EXPECT_EQ(out[0].type, FrameType::heartbeat_ack);
  EXPECT_TRUE(decoder.corrupt());
}

TEST(FrameCodec, GreetingRoundTripAndTruncation) {
  const AgentGreeting greeting{77, 12};
  const auto payload = encode_greeting(greeting);
  const auto decoded = decode_greeting(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->boot_id, 77u);
  EXPECT_EQ(decoded->ruleset_version, 12u);

  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::span<const std::uint8_t> prefix(payload.data(), len);
    EXPECT_FALSE(decode_greeting(prefix).has_value()) << "prefix " << len;
  }
}

// --- Pipe transport -----------------------------------------------------

TEST(PipeTransport, ChunkedDeliveryPreservesOrder) {
  PipePump pump;
  auto [a, b] = make_pipe(pump, 3);
  std::vector<std::uint8_t> received;
  b->set_on_bytes([&](std::span<const std::uint8_t> data) {
    received.insert(received.end(), data.begin(), data.end());
  });

  const std::vector<std::uint8_t> first{1, 2, 3, 4, 5, 6, 7};
  const std::vector<std::uint8_t> second{8, 9};
  EXPECT_TRUE(a->send(first));
  EXPECT_TRUE(a->send(second));
  pump.run();

  std::vector<std::uint8_t> expected = first;
  expected.insert(expected.end(), second.begin(), second.end());
  EXPECT_EQ(received, expected);
}

TEST(PipeTransport, CloseDisconnectsPeerAfterInflightBytes) {
  PipePump pump;
  auto [a, b] = make_pipe(pump);
  std::vector<std::string> events;
  b->set_on_bytes([&](std::span<const std::uint8_t>) {
    events.push_back("bytes");
  });
  b->set_on_disconnect([&]() { events.push_back("disconnect"); });

  const std::vector<std::uint8_t> data{1, 2, 3};
  a->send(data);
  a->close();
  EXPECT_FALSE(a->connected());
  EXPECT_FALSE(a->send(data));  // bytes after close are discarded
  pump.run();

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "bytes");  // in-flight bytes drain first
  EXPECT_EQ(events[1], "disconnect");
  EXPECT_FALSE(b->connected());
}

// --- Fault injection ----------------------------------------------------

namespace faulty {
struct RunResult {
  FaultyTransport::Stats stats;
  std::vector<std::uint8_t> received;
};

RunResult run_once(const FaultProfile& profile) {
  PipePump pump;
  auto [near, far] = make_pipe(pump);
  RunResult result;
  far->set_on_bytes([&](std::span<const std::uint8_t> data) {
    result.received.insert(result.received.end(), data.begin(), data.end());
  });
  FaultyTransport faulty(std::move(near), pump, profile);
  for (std::uint8_t i = 0; i < 50 && faulty.connected(); ++i) {
    const std::vector<std::uint8_t> chunk(10, i);
    faulty.send(chunk);
    pump.run();
  }
  pump.run();
  result.stats = faulty.stats();
  return result;
}
}  // namespace faulty

TEST(FaultyTransportTest, SameSeedSameFaultsSameBytes) {
  FaultProfile profile;
  profile.drop_prob = 0.3;
  profile.delay_prob = 0.3;
  profile.duplicate_prob = 0.2;
  profile.truncate_prob = 0.2;
  profile.seed = 99;

  const auto first = faulty::run_once(profile);
  const auto second = faulty::run_once(profile);
  EXPECT_EQ(first.received, second.received);
  EXPECT_EQ(first.stats.dropped, second.stats.dropped);
  EXPECT_EQ(first.stats.truncated, second.stats.truncated);
  EXPECT_EQ(first.stats.duplicated, second.stats.duplicated);
  EXPECT_EQ(first.stats.delayed, second.stats.delayed);
  // The profile is aggressive enough that every fault class fired.
  EXPECT_GT(first.stats.dropped, 0u);
  EXPECT_GT(first.stats.truncated, 0u);
  EXPECT_GT(first.stats.duplicated, 0u);
  EXPECT_GT(first.stats.delayed, 0u);

  profile.seed = 100;
  const auto other = faulty::run_once(profile);
  EXPECT_NE(first.received, other.received);
}

// --- Session protocol ---------------------------------------------------

// Forwards everything, but can swallow request frames (never heartbeats)
// so a test can starve the oldest in-flight request while the link looks
// alive — exactly the shape of a request timeout — or hello frames, the
// shape of a greeting lost on a lossy link.
class GateTransport : public Transport {
 public:
  GateTransport(std::unique_ptr<Transport> inner, const bool* mute_requests,
                const bool* mute_hellos)
      : inner_(std::move(inner)), mute_(mute_requests),
        mute_hellos_(mute_hellos) {
    inner_->set_on_bytes([this](std::span<const std::uint8_t> data) {
      if (on_bytes_) on_bytes_(data);
    });
    inner_->set_on_disconnect([this]() {
      if (on_disconnect_) on_disconnect_();
    });
  }

  bool send(std::span<const std::uint8_t> data) override {
    // Sends are whole frames; the type byte sits after len+magic+version.
    const std::uint8_t type = data.size() > 9 ? data[9] : 0;
    if (*mute_ && type == static_cast<std::uint8_t>(FrameType::request)) {
      return true;
    }
    if (*mute_hellos_ && type == static_cast<std::uint8_t>(FrameType::hello)) {
      return true;
    }
    return inner_->send(data);
  }
  void close() override { inner_->close(); }
  bool connected() const override { return inner_->connected(); }

 private:
  std::unique_ptr<Transport> inner_;
  const bool* mute_;
  const bool* mute_hellos_;
};

class SessionTest : public ::testing::Test {
 protected:
  static SessionConfig fast_config() {
    SessionConfig config;
    config.heartbeat_interval_ns = 5'000'000;    // 5 ms
    config.liveness_timeout_ns = 20'000'000;     // 20 ms
    config.request_timeout_ns = 12'000'000;      // 12 ms
    config.backoff_initial_ns = 1'000'000;       // 1 ms
    config.backoff_max_ns = 50'000'000;          // 50 ms
    config.seed = 3;
    return config;
  }

  void make_session(SessionConfig config = fast_config()) {
    session_ = std::make_unique<EnclaveSession>(
        "remote", [this]() { return dial(); }, [this]() { return now_ns_; },
        config);
  }

  std::unique_ptr<Transport> dial() {
    if (!dial_ok_) {
      dial_failures_ns_.push_back(now_ns_);
      return nullptr;
    }
    auto [near, far] = make_pipe(pump_, 16);
    if (blackhole_) {
      blackhole_far_ = std::move(far);  // nobody answers on this end
    } else {
      agent_->attach(std::move(far));
    }
    return std::make_unique<GateTransport>(std::move(near), &mute_requests_,
                                           &mute_hellos_);
  }

  void step_ms(std::uint64_t ms = 1) {
    now_ns_ += ms * 1'000'000;
    session_->tick();
    pump_.run();
  }

  bool settle(int max_steps = 2000) {
    for (int i = 0; i < max_steps; ++i) {
      step_ms();
      if (session_->ready() && session_->inflight() == 0 &&
          pump_.pending() == 0) {
        return true;
      }
    }
    return false;
  }

  lang::CompiledProgram priority_program(const std::string& name, int value) {
    return controller_.compile(
        name, "fun(p, m, g) -> p.priority <- " + std::to_string(value), {});
  }

  int processed_priority() {
    netsim::Packet packet;
    packet.size_bytes = 100;
    enclave_.process(packet);
    return packet.priority;
  }

  core::ClassRegistry registry_;
  core::Controller controller_{registry_};
  core::Enclave enclave_{"remote", registry_};
  PipePump pump_;
  std::unique_ptr<EnclaveAgent> agent_ =
      std::make_unique<EnclaveAgent>(enclave_);
  std::uint64_t now_ns_ = 0;
  bool dial_ok_ = true;
  bool blackhole_ = false;
  bool mute_requests_ = false;
  bool mute_hellos_ = false;
  std::unique_ptr<Transport> blackhole_far_;
  std::vector<std::uint64_t> dial_failures_ns_;
  std::unique_ptr<EnclaveSession> session_;
};

TEST_F(SessionTest, ConnectsGreetsAndResyncsEmptyJournal) {
  make_session();
  ASSERT_TRUE(settle());
  EXPECT_TRUE(session_->connected());
  EXPECT_TRUE(session_->ready());
  EXPECT_EQ(session_->stats().connects, 1u);
  EXPECT_EQ(session_->stats().resyncs, 1u);
  // Even an empty journal replays as one committed transaction
  // (reset_state + commit), so a dirty enclave would be wiped.
  EXPECT_EQ(session_->stats().txns_committed, 1u);
  EXPECT_EQ(session_->agent_boot_id(), agent_->boot_id());
  EXPECT_GE(enclave_.ruleset_version(), 1u);
  EXPECT_EQ(session_->stats().last_resync_commands, 3u);
}

TEST_F(SessionTest, JournaledMutationsBeforeConnectReplayOnConnect) {
  make_session();
  // All issued while disconnected: journal-only, replayed by the resync.
  lang::FieldDef level;
  level.name = "level";
  level.access = lang::Access::read_write;
  session_->install_action(
      "leveler",
      controller_.compile("leveler", "fun(p, m, g) -> p.priority <- g.level",
                          {{level}}),
      {level});
  session_->add_rule("t", "*", "leveler");
  session_->set_global_scalar("leveler", "level", 6);
  EXPECT_FALSE(session_->connected());

  ASSERT_TRUE(settle());
  EXPECT_EQ(processed_priority(), 6);
  // install + scalar + create_table + rule, plus the txn envelope.
  EXPECT_EQ(session_->stats().last_resync_commands, 7u);
}

TEST_F(SessionTest, LiveMutationsApplyWhenReady) {
  make_session();
  ASSERT_TRUE(settle());
  const auto sent_before = session_->stats().requests_sent;

  session_->install_action("p7", priority_program("p7", 7), {});
  session_->add_rule("t", "*", "p7");
  ASSERT_TRUE(settle());

  EXPECT_EQ(processed_priority(), 7);
  EXPECT_GT(session_->stats().requests_sent, sent_before);
  EXPECT_EQ(session_->stats().responses_error, 0u);
}

TEST_F(SessionTest, HeartbeatsKeepSessionAliveAndMeasureRtt) {
  make_session();
  ASSERT_TRUE(settle());
  for (int i = 0; i < 100; ++i) step_ms();
  EXPECT_GT(session_->stats().heartbeats_sent, 10u);
  EXPECT_GT(session_->stats().heartbeats_acked, 10u);
  EXPECT_EQ(session_->stats().liveness_timeouts, 0u);
  EXPECT_EQ(session_->stats().teardowns, 0u);
  EXPECT_GT(session_->rtt().count, 10u);
}

TEST_F(SessionTest, UnresponsivePeerTriggersLivenessTimeoutThenRecovery) {
  blackhole_ = true;
  make_session();
  for (int i = 0; i < 200 && session_->stats().liveness_timeouts == 0; ++i) {
    step_ms();
  }
  EXPECT_GE(session_->stats().liveness_timeouts, 1u);
  EXPECT_FALSE(session_->ready());

  blackhole_ = false;
  ASSERT_TRUE(settle());
  EXPECT_TRUE(session_->ready());
  EXPECT_GE(session_->stats().connects, 2u);
}

TEST_F(SessionTest, CorruptInboundStreamTearsDownAndRecovers) {
  blackhole_ = true;
  make_session();
  step_ms();  // dial + hello
  ASSERT_TRUE(session_->connected());
  ASSERT_TRUE(blackhole_far_ != nullptr);
  const std::vector<std::uint8_t> junk(32, 0xfe);
  blackhole_far_->send(junk);
  step_ms();
  EXPECT_GE(session_->stats().corrupt_streams, 1u);
  EXPECT_GE(session_->stats().teardowns, 1u);

  blackhole_ = false;
  ASSERT_TRUE(settle());
  EXPECT_TRUE(session_->ready());
}

TEST_F(SessionTest, StarvedRequestTimesOutAndResyncRepairs) {
  make_session();
  ASSERT_TRUE(settle());

  mute_requests_ = true;
  session_->install_action("p5", priority_program("p5", 5), {});
  session_->add_rule("t", "*", "p5");
  for (int i = 0; i < 200 && session_->stats().request_timeouts == 0; ++i) {
    step_ms();
  }
  // Heartbeats kept flowing (the link looked alive), so it was the
  // request timeout — not liveness — that caught the stall.
  EXPECT_GE(session_->stats().request_timeouts, 1u);
  EXPECT_EQ(session_->stats().liveness_timeouts, 0u);

  mute_requests_ = false;
  ASSERT_TRUE(settle());
  EXPECT_GE(session_->stats().resyncs, 2u);
  // The journal replay delivered the mutations the gate swallowed.
  EXPECT_EQ(processed_priority(), 5);
}

TEST_F(SessionTest, BackoffGrowsToCapWithJitter) {
  dial_ok_ = false;
  make_session();
  for (int i = 0; i < 600; ++i) step_ms();
  const auto& fails = dial_failures_ns_;
  ASSERT_GE(fails.size(), 8u);
  EXPECT_EQ(session_->stats().connect_failures, fails.size());

  const std::uint64_t cap_ns = 50'000'000;
  const std::uint64_t first_gap = fails[1] - fails[0];
  const std::uint64_t last_gap = fails.back() - fails[fails.size() - 2];
  // Early retries are near backoff_initial (1 ms, +-20% jitter, 1 ms
  // tick quantization); late ones sit at the cap.
  EXPECT_LE(first_gap, 3'000'000u);
  EXPECT_GE(last_gap, cap_ns * 8 / 10);
  for (std::size_t i = 1; i < fails.size(); ++i) {
    EXPECT_LE(fails[i] - fails[i - 1], cap_ns * 12 / 10 + 1'000'000)
        << "gap " << i;
  }

  dial_ok_ = true;
  ASSERT_TRUE(settle());
  EXPECT_TRUE(session_->ready());
}

TEST_F(SessionTest, HardAgentRestartDetectedAndStateReconverges) {
  make_session();
  session_->install_action("p7", priority_program("p7", 7), {});
  session_->add_rule("t", "*", "p7");
  ASSERT_TRUE(settle());
  ASSERT_EQ(processed_priority(), 7);
  const std::uint64_t old_boot = session_->agent_boot_id();

  // The enclave host dies and comes back blank with a fresh agent.
  agent_->detach();
  enclave_.clear_all();
  agent_ = std::make_unique<EnclaveAgent>(enclave_);
  ASSERT_NE(agent_->boot_id(), old_boot);

  ASSERT_TRUE(settle());
  EXPECT_GE(session_->stats().agent_restarts_seen, 1u);
  EXPECT_EQ(session_->agent_boot_id(), agent_->boot_id());
  // The journal replay rebuilt the rule set from scratch.
  EXPECT_EQ(processed_priority(), 7);
}

TEST_F(SessionTest, TxnStagedMutationsInvisibleUntilCommit) {
  make_session();
  session_->install_action("p7", priority_program("p7", 7), {});
  const auto old_rule = session_->add_rule("t", "*", "p7");
  ASSERT_TRUE(settle());
  ASSERT_EQ(processed_priority(), 7);
  const std::uint64_t version_before = enclave_.ruleset_version();

  session_->begin_txn();
  EXPECT_TRUE(session_->txn_open());
  session_->install_action("p1", priority_program("p1", 1), {});
  session_->remove_rule("t", old_rule);
  session_->add_rule("t", "*", "p1");
  ASSERT_TRUE(settle());
  // Everything staged on the enclave, nothing published.
  EXPECT_EQ(processed_priority(), 7);
  EXPECT_TRUE(enclave_.txn_open());
  EXPECT_EQ(enclave_.ruleset_version(), version_before);

  session_->commit_txn();
  ASSERT_TRUE(settle());
  EXPECT_FALSE(session_->txn_open());
  EXPECT_FALSE(enclave_.txn_open());
  EXPECT_EQ(processed_priority(), 1);
  EXPECT_GT(enclave_.ruleset_version(), version_before);
  EXPECT_GE(session_->stats().txns_committed, 2u);  // resync + ours
}

TEST_F(SessionTest, AbortTxnRollsBackJournalAndEnclave) {
  make_session();
  session_->install_action("p7", priority_program("p7", 7), {});
  session_->add_rule("t", "*", "p7");
  ASSERT_TRUE(settle());
  const std::uint64_t journal_before = session_->journal_size();

  session_->begin_txn();
  session_->add_rule("t", "*", "p7");
  session_->add_rule("other", "*", "p7");
  EXPECT_GT(session_->journal_size(), journal_before);
  session_->abort_txn();
  EXPECT_EQ(session_->journal_size(), journal_before);
  EXPECT_EQ(session_->stats().txns_aborted, 1u);

  ASSERT_TRUE(settle());
  const auto table = enclave_.find_table_id("t");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(enclave_.rule_count(*table), 1u);
  EXPECT_FALSE(enclave_.find_table_id("other").has_value());
  EXPECT_EQ(processed_priority(), 7);
}

TEST_F(SessionTest, DroppedHelloRetransmitsInsteadOfWedging) {
  mute_hellos_ = true;
  make_session();
  step_ms();  // dial succeeds; the first hello vanishes on the link
  ASSERT_TRUE(session_->connected());
  EXPECT_FALSE(session_->ready());
  for (int i = 0; i < 3; ++i) step_ms();
  EXPECT_FALSE(session_->ready());

  mute_hellos_ = false;
  ASSERT_TRUE(settle());
  EXPECT_TRUE(session_->ready());
  // The greeting recovered by hello retransmission on the same
  // connection — not by a liveness timeout forcing a reconnect.
  EXPECT_EQ(session_->stats().teardowns, 0u);
  EXPECT_EQ(session_->stats().connects, 1u);
}

TEST_F(SessionTest, TxnOpenAcrossReconnectCommitsAtomically) {
  make_session();
  session_->install_action("p7", priority_program("p7", 7), {});
  const auto old_rule = session_->add_rule("t", "*", "p7");
  ASSERT_TRUE(settle());
  ASSERT_EQ(processed_priority(), 7);

  session_->begin_txn();
  session_->install_action("p1", priority_program("p1", 1), {});
  session_->remove_rule("t", old_rule);
  session_->add_rule("t", "*", "p1");
  ASSERT_TRUE(settle());
  ASSERT_TRUE(enclave_.txn_open());

  // The link dies mid-transaction; the agent aborts its staged copy.
  agent_->detach();
  ASSERT_TRUE(settle());
  EXPECT_GE(session_->stats().resyncs, 2u);
  // The resync committed only the pre-transaction snapshot and
  // re-opened the transaction on the fresh connection: the staged
  // mutations are still invisible to the data path.
  EXPECT_TRUE(session_->txn_open());
  EXPECT_TRUE(enclave_.txn_open());
  EXPECT_EQ(processed_priority(), 7);

  session_->commit_txn();
  ASSERT_TRUE(settle());
  EXPECT_FALSE(enclave_.txn_open());
  EXPECT_EQ(processed_priority(), 1);
}

TEST_F(SessionTest, TxnOpenAcrossReconnectAbortRollsBack) {
  make_session();
  session_->install_action("p7", priority_program("p7", 7), {});
  session_->add_rule("t", "*", "p7");
  ASSERT_TRUE(settle());

  session_->begin_txn();
  session_->install_action("p1", priority_program("p1", 1), {});
  session_->add_rule("other", "*", "p1");
  ASSERT_TRUE(settle());

  agent_->detach();
  ASSERT_TRUE(settle());
  ASSERT_TRUE(session_->txn_open());

  session_->abort_txn();
  ASSERT_TRUE(settle());
  EXPECT_FALSE(enclave_.txn_open());
  EXPECT_EQ(processed_priority(), 7);
  EXPECT_FALSE(enclave_.find_table_id("other").has_value());

  // Journal and enclave agree after the rollback: another forced
  // resync converges to the same state.
  agent_->detach();
  ASSERT_TRUE(settle());
  EXPECT_EQ(processed_priority(), 7);
  EXPECT_FALSE(enclave_.find_table_id("other").has_value());
}

TEST_F(SessionTest, UnjournaledGlobalWriteIsNotSent) {
  make_session();
  ASSERT_TRUE(settle());
  const auto sent_before = session_->stats().requests_sent;

  // No such action in the journal: sending the write would break the
  // journal-is-source-of-truth invariant (it would silently revert on
  // the next resync), so it must not reach the wire at all.
  session_->set_global_scalar("ghost", "level", 5);
  session_->set_global_array("ghost", "weights", {1, 2, 3});
  ASSERT_TRUE(settle());
  EXPECT_EQ(session_->stats().requests_sent, sent_before);
}

TEST_F(SessionTest, RemoveBeforeAddResponseIsDeferredNotLost) {
  make_session();
  session_->install_action("p7", priority_program("p7", 7), {});
  ASSERT_TRUE(settle());

  // The add request is in flight (no pump between the calls): the rule
  // has no remote id yet, so the remove must wait for it.
  const auto handle = session_->add_rule("t2", "*", "p7");
  session_->remove_rule("t2", handle);
  ASSERT_TRUE(settle());

  const auto table = enclave_.find_table_id("t2");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(enclave_.rule_count(*table), 0u);
}

TEST_F(SessionTest, FetchTelemetryJsonRoundTripsAndFailsClosed) {
  make_session();
  // Not connected yet: reads fail closed with an empty reply.
  EXPECT_TRUE(session_->fetch_telemetry_json(pump_).empty());

  ASSERT_TRUE(settle());
  processed_priority();
  const std::string json = session_->fetch_telemetry_json(pump_);
  ASSERT_FALSE(json.empty());
  const telemetry::ParsedDump dump = telemetry::parse_telemetry_json(json);
  ASSERT_EQ(dump.enclaves.size(), 1u);
  EXPECT_EQ(dump.enclaves[0].enclave, "remote");
  EXPECT_GE(dump.enclaves[0].packets, 1u);
}

TEST_F(SessionTest, SessionTelemetryRendersInAggregateExports) {
  make_session();
  ASSERT_TRUE(settle());
  for (int i = 0; i < 50; ++i) step_ms();

  telemetry::AggregateTelemetry agg =
      telemetry::aggregate({enclave_.telemetry_snapshot()});
  agg.sessions.push_back(session_->telemetry());

  const std::string json = telemetry::to_json(agg);
  EXPECT_NE(json.find("\"sessions\""), std::string::npos);
  EXPECT_NE(json.find("\"connected\":true"), std::string::npos);

  const std::string prom = telemetry::to_prometheus(agg);
  EXPECT_NE(prom.find("eden_session_connected"), std::string::npos);
  EXPECT_NE(prom.find("eden_session_rtt_ns"), std::string::npos);
  EXPECT_NE(prom.find("eden_session_resyncs_total"), std::string::npos);

  // The rendered JSON parses back with the session intact.
  const telemetry::ParsedDump dump = telemetry::parse_telemetry_json(json);
  ASSERT_EQ(dump.sessions.size(), 1u);
  EXPECT_EQ(dump.sessions[0].name, "remote");
  EXPECT_EQ(dump.sessions[0].connects, session_->stats().connects);
}

}  // namespace
}  // namespace eden::controlplane
