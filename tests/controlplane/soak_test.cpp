// Control-plane soak: transactional rule-set commits hammered through a
// faulty session while a data thread processes packets concurrently.
//
// Every epoch installs a fresh pair of actions whose globals bake in the
// epoch number (v = a = b = s) and atomically repoints one rule in each
// of two tables at them, all inside one transaction. Each action writes
// its epoch to a different packet field (path_label / rl_queue) only if
// its own globals are self-consistent (a + b == 2v). The data thread
// asserts p.path == p.queue on every packet: any torn commit — rules
// repointed in one table but not the other, an action published without
// its globals, a half-replayed resync — splits the two fields apart.
//
// The link drops, delays, duplicates, truncates and hard-closes with a
// seeded profile, and the enclave is periodically hard-restarted (blank
// state, new agent boot id), so convergence happens through the journal
// resync path, not just the happy path. Run under TSan this is the
// regression test for the RCU snapshot publication in Enclave::process.
//
// Environment knobs (for the CI soak matrix):
//   EDEN_SOAK_SEED   fault/backoff seed (default 1)
//   EDEN_SOAK_EPOCHS transaction count (default 60)
//   EDEN_SOAK_JSON   write the final session+enclave telemetry dump here
//   EDEN_SOAK_FLIGHT_JSON  write the flight-recorder dump here (also
//                          installs the crash handler on that path)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "controlplane/fault.h"
#include "controlplane/session.h"
#include "core/controller.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/snapshot.h"

namespace eden::controlplane {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

// The epoch value survives to the packet only when the action's global
// block is self-consistent; a torn global write surfaces as -1.
std::string epoch_program(const std::string& field) {
  return "fun(p, m, g) -> p." + field +
         " <- (if g.a + g.b == 2 * g.v then g.v else 0 - 1)";
}

std::vector<lang::FieldDef> epoch_fields() {
  std::vector<lang::FieldDef> fields;
  for (const char* name : {"v", "a", "b"}) {
    lang::FieldDef field;
    field.name = name;
    field.access = lang::Access::read_write;
    fields.push_back(field);
  }
  return fields;
}

TEST(ControlPlaneSoak, CommitsStayAtomicUnderChaos) {
  const std::uint64_t seed = env_u64("EDEN_SOAK_SEED", 1);
  const std::uint64_t epochs = env_u64("EDEN_SOAK_EPOCHS", 60);

  telemetry::FlightRecorder::instance().reset();
  const char* flight_path = std::getenv("EDEN_SOAK_FLIGHT_JSON");
  if (flight_path != nullptr) {
    telemetry::FlightRecorder::install_crash_handler(flight_path);
  }

  core::ClassRegistry registry;
  core::Controller controller{registry};
  core::Enclave enclave{"soak", registry};
  PipePump pump;
  auto agent = std::make_unique<EnclaveAgent>(enclave);
  std::uint64_t now_ns = 0;
  bool chaos = true;
  std::uint64_t dials = 0;

  auto connector = [&]() -> std::unique_ptr<Transport> {
    auto [near, far] = make_pipe(pump, 32);
    agent->attach(std::move(far));
    if (!chaos) return std::move(near);
    FaultProfile profile;
    profile.drop_prob = 0.05;
    profile.delay_prob = 0.10;
    profile.duplicate_prob = 0.05;
    profile.truncate_prob = 0.03;
    profile.disconnect_prob = 0.01;
    profile.seed = seed * 1000 + ++dials;  // fresh rolls per connection
    return std::make_unique<FaultyTransport>(std::move(near), pump, profile);
  };

  SessionConfig config;
  config.heartbeat_interval_ns = 2'000'000;  // 2 ms
  config.liveness_timeout_ns = 10'000'000;   // 10 ms
  config.request_timeout_ns = 12'000'000;    // 12 ms
  config.backoff_initial_ns = 1'000'000;     // 1 ms
  config.backoff_max_ns = 20'000'000;        // 20 ms
  config.seed = seed;
  EnclaveSession session{"soak", connector, [&]() { return now_ns; }, config};

  auto step = [&]() {
    now_ns += 1'000'000;
    session.tick();
    pump.run();
  };

  // Data thread: hammers the published snapshot while the control plane
  // churns. Both fields default to -1, so a blank enclave (mid-restart)
  // reads as (-1, -1) — equal, as the invariant requires.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> processed{0};
  std::atomic<std::uint64_t> violations{0};
  std::thread data([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      netsim::Packet packet;
      packet.size_bytes = 100;
      enclave.process(packet);
      if (packet.path_label != packet.rl_queue) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
      processed.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const auto fields = epoch_fields();
  const auto path_program =
      controller.compile("path_fn", epoch_program("path"), fields);
  const auto queue_program =
      controller.compile("queue_fn", epoch_program("queue"), fields);

  EnclaveSession::RuleHandle path_rule = 0;
  EnclaveSession::RuleHandle queue_rule = 0;
  std::uint64_t restarts = 0;
  for (std::uint64_t s = 1; s <= epochs; ++s) {
    // Two alternating action names keep the journal bounded while every
    // epoch still swaps in freshly-installed actions.
    const std::string path_name = "path_" + std::to_string(s % 2);
    const std::string queue_name = "queue_" + std::to_string(s % 2);
    session.begin_txn();
    session.install_action(path_name, path_program, fields);
    session.install_action(queue_name, queue_program, fields);
    for (const char* field : {"v", "a", "b"}) {
      session.set_global_scalar(path_name, field,
                                static_cast<std::int64_t>(s));
      session.set_global_scalar(queue_name, field,
                                static_cast<std::int64_t>(s));
    }
    if (path_rule != 0) session.remove_rule("paths", path_rule);
    if (queue_rule != 0) session.remove_rule("queues", queue_rule);
    path_rule = session.add_rule("paths", "*", path_name);
    queue_rule = session.add_rule("queues", "*", queue_name);
    session.commit_txn();

    for (int i = 0; i < 8; ++i) step();

    if (s % 15 == 0) {
      // Hard enclave restart: blank state, new boot id. The session must
      // notice and rebuild everything from the journal.
      agent->detach();
      enclave.clear_all();
      agent = std::make_unique<EnclaveAgent>(enclave);
      ++restarts;
    }
  }

  // Calm the link and let the session converge on the final journal.
  chaos = false;
  agent->detach();  // force one clean reconnect
  bool converged = false;
  for (int i = 0; i < 20000 && !converged; ++i) {
    step();
    converged = session.ready() && session.inflight() == 0 &&
                pump.pending() == 0 && !enclave.txn_open();
  }
  ASSERT_TRUE(converged) << "session never converged after chaos ended";

  // The committed state is exactly the last epoch, in both tables.
  netsim::Packet probe;
  probe.size_bytes = 100;
  enclave.process(probe);
  EXPECT_EQ(probe.path_label, static_cast<std::int32_t>(epochs));
  EXPECT_EQ(probe.rl_queue, static_cast<std::int32_t>(epochs));

  stop.store(true);
  data.join();
  EXPECT_EQ(violations.load(), 0u)
      << "data thread observed a torn rule-set snapshot";
  EXPECT_GT(processed.load(), 0u);

  // The chaos was real: the session had to fight for this convergence.
  const SessionStats& stats = session.stats();
  EXPECT_GE(stats.resyncs, 2u + restarts);
  EXPECT_GE(stats.agent_restarts_seen, restarts);
  EXPECT_GT(stats.txns_committed, 0u);

  if (const char* json_path = std::getenv("EDEN_SOAK_JSON")) {
    telemetry::AggregateTelemetry agg =
        telemetry::aggregate({enclave.telemetry_snapshot()});
    agg.sessions.push_back(session.telemetry());
    std::ofstream out(json_path);
    out << telemetry::to_json(agg);
  }
  if (flight_path != nullptr) {
    telemetry::FlightRecorder::instance().dump_to_file(flight_path);
  }
}

}  // namespace
}  // namespace eden::controlplane
