// Control-plane distributed tracing: trace context in the frame
// header, causally-linked spans across session -> transport -> agent,
// and the flight-recorder journal of the same lifecycle.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "controlplane/fault.h"
#include "controlplane/frame.h"
#include "controlplane/session.h"
#include "controlplane/transport.h"
#include "core/controller.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/span.h"

namespace eden::controlplane {
namespace {

using telemetry::FlightEvent;
using telemetry::FlightEventType;
using telemetry::FlightRecorder;
using telemetry::Hop;
using telemetry::SpanCollector;
using telemetry::SpanEvent;

TEST(FrameTraceContext, RoundTripsAndDefaultsToZero) {
  Frame traced;
  traced.type = FrameType::request;
  traced.id = 12;
  traced.payload = {1, 2, 3};
  traced.trace_id = 777;
  traced.parent_span = 778;
  const auto bytes = encode_frame(traced);

  FrameDecoder decoder;
  std::vector<Frame> out;
  ASSERT_TRUE(decoder.feed(bytes, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].trace_id, 777);
  EXPECT_EQ(out[0].parent_span, 778);
  EXPECT_EQ(out[0].payload, traced.payload);

  out.clear();
  ASSERT_TRUE(decoder.feed(encode_frame({FrameType::heartbeat, 5, {}}), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].trace_id, 0);
  EXPECT_EQ(out[0].parent_span, 0);
}

// Session + agent over a clean in-process pipe, with span sampling at
// 1-in-1 so every control operation is traced.
class TraceSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SpanCollector::instance().set_clock(nullptr, nullptr);
    SpanCollector::instance().reset();
    SpanCollector::instance().enable(1, 4096);
    FlightRecorder::instance().set_clock(nullptr, nullptr);
    FlightRecorder::instance().reset();
  }
  void TearDown() override {
    SpanCollector::instance().disable();
    SpanCollector::instance().reset();
    FlightRecorder::instance().reset();
  }

  static SessionConfig fast_config() {
    SessionConfig config;
    config.heartbeat_interval_ns = 5'000'000;
    config.liveness_timeout_ns = 20'000'000;
    config.request_timeout_ns = 12'000'000;
    config.backoff_initial_ns = 1'000'000;
    config.backoff_max_ns = 50'000'000;
    config.seed = 3;
    return config;
  }

  void make_session() {
    session_ = std::make_unique<EnclaveSession>(
        "traced", [this]() { return dial(); }, [this]() { return now_ns_; },
        fast_config());
  }

  std::unique_ptr<Transport> dial() {
    if (killed_) return nullptr;
    auto [near, far] = make_pipe(pump_, 64);
    agent_->attach(std::move(far));
    return std::move(near);
  }

  void step_ms(std::uint64_t ms = 1) {
    now_ns_ += ms * 1'000'000;
    session_->tick();
    pump_.run();
  }

  bool settle(int max_steps = 2000) {
    for (int i = 0; i < max_steps; ++i) {
      step_ms();
      if (session_->ready() && session_->inflight() == 0 &&
          pump_.pending() == 0) {
        return true;
      }
    }
    return false;
  }

  // Events of one trace, grouped by hop.
  static std::map<Hop, std::vector<SpanEvent>> by_hop(std::int64_t trace) {
    std::map<Hop, std::vector<SpanEvent>> out;
    for (const SpanEvent& e : SpanCollector::instance().snapshot()) {
      if (e.trace_id == trace) out[e.hop].push_back(e);
    }
    return out;
  }

  core::ClassRegistry registry_;
  core::Controller controller_{registry_};
  core::Enclave enclave_{"traced", registry_};
  PipePump pump_;
  std::unique_ptr<EnclaveAgent> agent_ =
      std::make_unique<EnclaveAgent>(enclave_);
  std::uint64_t now_ns_ = 0;
  bool killed_ = false;
  std::unique_ptr<EnclaveSession> session_;
};

TEST_F(TraceSessionTest, TxnBecomesOneCausallyLinkedTrace) {
  make_session();
  ASSERT_TRUE(settle());
  SpanCollector::instance().reset();  // drop the connect-resync trace

  session_->begin_txn();
  session_->add_rule("t", "*", "missing");
  session_->commit_txn();
  ASSERT_TRUE(settle());

  // Everything belongs to exactly one trace.
  std::set<std::int64_t> traces;
  for (const SpanEvent& e : SpanCollector::instance().snapshot()) {
    traces.insert(e.trace_id);
  }
  ASSERT_EQ(traces.size(), 1u);
  const std::int64_t trace = *traces.begin();
  auto hops = by_hop(trace);

  ASSERT_EQ(hops[Hop::cp_txn_begin].size(), 1u);
  const SpanEvent root = hops[Hop::cp_txn_begin][0];
  EXPECT_NE(root.span_id, 0);
  EXPECT_EQ(root.parent_id, 0);

  // cp_txn_commit is a direct child of the begin.
  ASSERT_EQ(hops[Hop::cp_txn_commit].size(), 1u);
  EXPECT_EQ(hops[Hop::cp_txn_commit][0].parent_id, root.span_id);

  // begin + create_table + add_rule + commit all left as traced sends
  // parented under the root.
  ASSERT_EQ(hops[Hop::cp_send].size(), 4u);
  std::set<std::int64_t> send_spans;
  for (const SpanEvent& e : hops[Hop::cp_send]) {
    EXPECT_EQ(e.parent_id, root.span_id);
    send_spans.insert(e.span_id);
  }

  // Each send got a response slice and an agent-side apply, both
  // parented under that send's span.
  ASSERT_EQ(hops[Hop::cp_response].size(), 4u);
  for (const SpanEvent& e : hops[Hop::cp_response]) {
    EXPECT_EQ(send_spans.count(e.parent_id), 1u);
  }
  ASSERT_EQ(hops[Hop::cp_agent_apply].size(), 4u);
  std::set<std::int64_t> apply_spans;
  for (const SpanEvent& e : hops[Hop::cp_agent_apply]) {
    EXPECT_EQ(send_spans.count(e.parent_id), 1u);
    apply_spans.insert(e.span_id);
  }

  // The committed publish is recorded agent-side under its apply.
  ASSERT_EQ(hops[Hop::cp_agent_publish].size(), 1u);
  EXPECT_EQ(apply_spans.count(hops[Hop::cp_agent_publish][0].parent_id), 1u);

  // And the flight recorder journaled the same lifecycle.
  std::set<FlightEventType> flight;
  for (const FlightEvent& e : FlightRecorder::instance().snapshot()) {
    flight.insert(e.type);
  }
  EXPECT_EQ(flight.count(FlightEventType::txn_begin), 1u);
  EXPECT_EQ(flight.count(FlightEventType::txn_commit), 1u);
}

TEST_F(TraceSessionTest, KilledAgentMidTxnYieldsRetryReconnectResyncChain) {
  make_session();
  ASSERT_TRUE(settle());
  SpanCollector::instance().reset();
  FlightRecorder::instance().reset();  // drop connect-time events

  session_->begin_txn();
  session_->add_rule("t", "*", "missing");
  ASSERT_TRUE(settle());

  // Kill the agent mid-transaction: the commit must ride a timeout,
  // teardown, backoff, reconnect and folded resync — all in ONE trace.
  killed_ = true;
  agent_->detach();
  session_->commit_txn();
  for (int i = 0; i < 40; ++i) step_ms();
  killed_ = false;
  ASSERT_TRUE(settle());
  EXPECT_GE(session_->stats().txns_committed, 1u);

  std::set<std::int64_t> traces;
  for (const SpanEvent& e : SpanCollector::instance().snapshot()) {
    traces.insert(e.trace_id);
  }
  ASSERT_EQ(traces.size(), 1u) << "retry chain split across traces";
  const auto hops = by_hop(*traces.begin());

  for (const Hop expected :
       {Hop::cp_txn_begin, Hop::cp_txn_commit, Hop::cp_teardown,
        Hop::cp_backoff, Hop::cp_resync, Hop::cp_agent_publish}) {
    EXPECT_TRUE(hops.count(expected) > 0)
        << "missing hop " << telemetry::hop_name(expected);
  }
  // The resync span parents the replayed sends.
  ASSERT_TRUE(hops.count(Hop::cp_resync) > 0);
  const SpanEvent resync = hops.at(Hop::cp_resync).back();
  std::size_t under_resync = 0;
  for (const SpanEvent& e : hops.at(Hop::cp_send)) {
    if (e.parent_id == resync.span_id) ++under_resync;
  }
  EXPECT_GT(under_resync, 0u);

  // Flight recorder saw the same story, in order.
  std::vector<FlightEventType> order;
  for (const FlightEvent& e : FlightRecorder::instance().snapshot()) {
    order.push_back(e.type);
  }
  const auto index_of = [&](FlightEventType t) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == t) return static_cast<long>(i);
    }
    return -1L;
  };
  const long commit = index_of(FlightEventType::txn_commit);
  const long teardown = index_of(FlightEventType::session_teardown);
  const long backoff = index_of(FlightEventType::session_backoff);
  const long resync_at = index_of(FlightEventType::resync);
  ASSERT_GE(commit, 0);
  ASSERT_GE(teardown, 0);
  ASSERT_GE(backoff, 0);
  ASSERT_GE(resync_at, 0);
  EXPECT_LT(commit, teardown);
  EXPECT_LT(teardown, backoff);
  EXPECT_LT(backoff, resync_at);
}

TEST_F(TraceSessionTest, DeltaPollIsItsOwnTrace) {
  make_session();
  ASSERT_TRUE(settle());
  SpanCollector::instance().reset();

  const std::string payload =
      session_->fetch_telemetry_delta_json(pump_, 0, 0);
  EXPECT_FALSE(payload.empty());

  std::set<std::int64_t> traces;
  for (const SpanEvent& e : SpanCollector::instance().snapshot()) {
    traces.insert(e.trace_id);
  }
  ASSERT_EQ(traces.size(), 1u);
  const auto hops = by_hop(*traces.begin());
  ASSERT_EQ(hops.count(Hop::cp_poll), 1u);
  const SpanEvent root = hops.at(Hop::cp_poll)[0];
  ASSERT_EQ(hops.at(Hop::cp_send).size(), 1u);
  EXPECT_EQ(hops.at(Hop::cp_send)[0].parent_id, root.span_id);
  ASSERT_EQ(hops.at(Hop::cp_agent_apply).size(), 1u);
  EXPECT_EQ(hops.at(Hop::cp_agent_apply)[0].parent_id,
            hops.at(Hop::cp_send)[0].span_id);
}

TEST_F(TraceSessionTest, SamplingOffMeansZeroSpansAndZeroedFrames) {
  SpanCollector::instance().disable();
  make_session();
  ASSERT_TRUE(settle());

  session_->begin_txn();
  session_->add_rule("t", "*", "missing");
  session_->commit_txn();
  ASSERT_TRUE(settle());
  const std::string payload =
      session_->fetch_telemetry_delta_json(pump_, 0, 0);
  EXPECT_FALSE(payload.empty());

  EXPECT_TRUE(SpanCollector::instance().snapshot().empty());
}

TEST_F(TraceSessionTest, FaultHopsLandInTheCommandTrace) {
  // Session whose outbound link drops some sends: the injector's
  // fault decisions must appear inside the command's own trace.
  std::uint64_t dials = 0;
  auto connector = [this, &dials]() -> std::unique_ptr<Transport> {
    auto [near, far] = make_pipe(pump_, 64);
    agent_->attach(std::move(far));
    FaultProfile profile;
    profile.drop_prob = 0.2;
    // A fresh seed per dial, or every reconnect replays the same fault
    // sequence and the same resync frame is dropped forever.
    profile.seed = 9 + ++dials;
    return std::make_unique<FaultyTransport>(std::move(near), pump_,
                                             profile);
  };
  session_ = std::make_unique<EnclaveSession>(
      "faulted", connector, [this]() { return now_ns_; }, fast_config());

  // Keep issuing traced transactions until the injector drops one of
  // their frames (seeded, so this converges deterministically).
  const auto drop_count = []() {
    std::size_t n = 0;
    for (const SpanEvent& e : SpanCollector::instance().snapshot()) {
      if (e.hop == Hop::cp_fault_drop) ++n;
    }
    return n;
  };
  for (int i = 0;
       i < 20000 &&
       (drop_count() == 0 || session_->stats().txns_committed == 0);
       ++i) {
    if (i % 50 == 0 && session_->ready() && !session_->txn_open()) {
      session_->begin_txn();
      session_->commit_txn();
    }
    step_ms();
  }
  EXPECT_GT(session_->stats().txns_committed, 0u);

  std::size_t fault_hops = 0;
  for (const SpanEvent& e : SpanCollector::instance().snapshot()) {
    if (e.hop == Hop::cp_fault_drop) {
      ++fault_hops;
      EXPECT_NE(e.trace_id, 0);
      EXPECT_NE(e.parent_id, 0);  // parented under the cp_send span
    }
  }
  ASSERT_GT(fault_hops, 0u) << "no traced frame was ever dropped";
}

}  // namespace
}  // namespace eden::controlplane
