// The sharded data plane: SPSC ring mechanics, steering determinism,
// submit/drain/flush/stop lifecycle, and — the contract everything else
// rests on — per-message ordering through 4 concurrent workers under
// adversarial key distributions.
#include "hoststack/dataplane.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/controller.h"
#include "experiments/testbed.h"
#include "hoststack/spsc_ring.h"

namespace eden::hoststack {
namespace {

// --- SpscRing -----------------------------------------------------------

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRingTest, FifoAcrossWraparound) {
  SpscRing<int> ring(4);
  int out[8];
  int next = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) {
      int v = next + i;
      ASSERT_TRUE(ring.push(std::move(v)));
    }
    const std::size_t n = ring.pop_bulk(out, 8);
    ASSERT_EQ(n, 3u);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(out[i], next + i);
    next += 3;
  }
}

TEST(SpscRingTest, FullRingPushFailsAndKeepsItem) {
  SpscRing<std::shared_ptr<int>> ring(2);
  ASSERT_TRUE(ring.push(std::make_shared<int>(1)));
  ASSERT_TRUE(ring.push(std::make_shared<int>(2)));
  auto keep = std::make_shared<int>(3);
  EXPECT_FALSE(ring.push(std::move(keep)));
  ASSERT_NE(keep, nullptr);  // rejected item untouched
  EXPECT_EQ(*keep, 3);
  std::shared_ptr<int> out[4];
  EXPECT_EQ(ring.pop_bulk(out, 4), 2u);
  EXPECT_EQ(*out[0], 1);
  EXPECT_EQ(*out[1], 2);
}

TEST(SpscRingTest, PopBulkHonorsMax) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 6; ++i) {
    int v = i;
    ring.push(std::move(v));
  }
  int out[8];
  EXPECT_EQ(ring.pop_bulk(out, 4), 4u);
  EXPECT_EQ(ring.pop_bulk(out, 4), 2u);
  EXPECT_EQ(ring.pop_bulk(out, 4), 0u);
}

TEST(SpscRingTest, PushBulkFifoAcrossWraparound) {
  // Bursts of 3 through a 4-slot ring: every transfer straddles the
  // wrap point sooner or later, and order must survive it.
  SpscRing<int> ring(4);
  int in[3];
  int out[8];
  int next = 0;
  for (int round = 0; round < 12; ++round) {
    for (int i = 0; i < 3; ++i) in[i] = next + i;
    ASSERT_EQ(ring.push_bulk(in, 3), 3u);
    const std::size_t n = ring.pop_bulk(out, 8);
    ASSERT_EQ(n, 3u);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(out[i], next + i);
    next += 3;
  }
}

TEST(SpscRingTest, PushBulkPartialOnNearlyFullRing) {
  SpscRing<std::shared_ptr<int>> ring(4);
  std::shared_ptr<int> in[6];
  for (int i = 0; i < 6; ++i) in[i] = std::make_shared<int>(i);
  // Only 4 fit; the 2 rejected entries must be left intact in place.
  EXPECT_EQ(ring.push_bulk(in, 6), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(in[i], nullptr) << "consumed source " << i << " not reset";
  }
  ASSERT_NE(in[4], nullptr);
  ASSERT_NE(in[5], nullptr);
  EXPECT_EQ(*in[4], 4);
  EXPECT_EQ(*in[5], 5);
  EXPECT_EQ(ring.push_bulk(in + 4, 2), 0u);  // still full
  std::shared_ptr<int> out[4];
  ASSERT_EQ(ring.pop_bulk(out, 4), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(*out[i], i);
}

TEST(SpscRingTest, DrainedSlotsReleaseOwnership) {
  // The destructor-hygiene bug this pins down: a moved-from shared_ptr
  // parked in a ring slot may still own its object, silently keeping a
  // pooled buffer alive until the slot is overwritten. Both bulk paths
  // must reset the slots they vacate.
  SpscRing<std::shared_ptr<int>> ring(8);
  auto tracked = std::make_shared<int>(7);
  std::weak_ptr<int> watch = tracked;
  ASSERT_TRUE(ring.push(std::move(tracked)));
  std::shared_ptr<int> out[4];
  ASSERT_EQ(ring.pop_bulk(out, 4), 1u);
  ASSERT_EQ(watch.use_count(), 1) << "ring slot retained a stale owner";
  out[0].reset();
  EXPECT_TRUE(watch.expired());

  // Same via push_bulk: the caller's source buffer must not keep an
  // owner either.
  std::shared_ptr<int> src[1] = {std::make_shared<int>(9)};
  std::weak_ptr<int> watch2 = src[0];
  ASSERT_EQ(ring.push_bulk(src, 1), 1u);
  EXPECT_EQ(src[0], nullptr);
  ASSERT_EQ(ring.pop_bulk(out, 4), 1u);
  EXPECT_EQ(watch2.use_count(), 1);
}

// --- Steering -----------------------------------------------------------

TEST(DataPlaneShardTest, SingleWorkerGetsEverything) {
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(DataPlane::shard_of(k, 1), 0u);
  }
}

TEST(DataPlaneShardTest, SequentialKeysSpread) {
  // Message ids are often sequential counters; the mix must spread them
  // instead of striping them modulo worker count.
  constexpr std::size_t kWorkers = 4;
  std::vector<std::size_t> counts(kWorkers, 0);
  for (std::uint64_t k = 1; k <= 4000; ++k) {
    const std::size_t s = DataPlane::shard_of(k, kWorkers);
    ASSERT_LT(s, kWorkers);
    ++counts[s];
  }
  for (const std::size_t c : counts) {
    EXPECT_GT(c, 700u);   // each worker sees a substantial share
    EXPECT_LT(c, 1300u);  // nobody hogs
  }
}

TEST(DataPlaneShardTest, DeterministicAcrossCalls) {
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(DataPlane::shard_of(k, 4), DataPlane::shard_of(k, 4));
  }
}

// --- DataPlane lifecycle -------------------------------------------------

netsim::PacketPtr msg_packet(std::int64_t msg_id, std::uint64_t seq = 0) {
  auto p = netsim::make_packet();
  p->src = 1;
  p->dst = 2;
  p->src_port = 1000;
  p->dst_port = 2000;
  p->protocol = netsim::Protocol::tcp;
  p->size_bytes = 1514;
  p->payload_bytes = 1460;
  p->meta.msg_id = msg_id;
  p->debug_id = seq;
  return p;
}

class DataPlaneTest : public ::testing::Test {
 protected:
  core::ClassRegistry registry_;
  core::Enclave enclave_{"dp-test", registry_};
  core::Controller controller_{registry_};

  void install_with_rule(const char* name, const std::string& source) {
    const lang::CompiledProgram program =
        controller_.compile(name, source, {});
    const core::ActionId action =
        enclave_.install_action(name, program, {});
    const core::TableId table = enclave_.create_table(name);
    enclave_.add_rule(table, core::ClassPattern("*"), action);
  }

  // Submits with backpressure handling and collects every completion.
  std::vector<netsim::PacketPtr> run_through(
      DataPlane& dp, std::vector<netsim::PacketPtr> packets) {
    std::vector<netsim::PacketPtr> done;
    const auto sink = [&](netsim::PacketPtr p) {
      done.push_back(std::move(p));
    };
    for (auto& p : packets) {
      while (!dp.submit(p)) dp.drain_completions(sink);
    }
    dp.flush(sink);
    return done;
  }

  // Burst-mode counterpart of run_through: submits in bursts of
  // `burst_size`, retrying backpressured leftovers after a drain.
  std::vector<netsim::PacketPtr> run_through_bursts(
      DataPlane& dp, std::vector<netsim::PacketPtr> packets,
      std::size_t burst_size = 32) {
    std::vector<netsim::PacketPtr> done;
    const auto sink = [&](netsim::PacketPtr p) {
      done.push_back(std::move(p));
    };
    for (std::size_t off = 0; off < packets.size(); off += burst_size) {
      const std::size_t n = std::min(burst_size, packets.size() - off);
      const std::span<netsim::PacketPtr> burst(packets.data() + off, n);
      std::size_t sent = 0;
      while (sent < n) {
        sent += dp.submit_burst(burst);
        if (sent < n) dp.drain_completions(sink);
      }
    }
    dp.flush(sink);
    return done;
  }
};

TEST_F(DataPlaneTest, AllPacketsComeBack) {
  install_with_rule("p3", "fun(p, m, g) -> p.priority <- 3");
  DataPlaneConfig cfg;
  cfg.workers = 4;
  DataPlane dp(enclave_, cfg);
  std::vector<netsim::PacketPtr> in;
  for (int i = 0; i < 500; ++i) in.push_back(msg_packet(i % 37 + 1));
  const auto done = run_through(dp, std::move(in));
  ASSERT_EQ(done.size(), 500u);
  for (const auto& p : done) EXPECT_EQ(p->priority, 3);
  EXPECT_EQ(dp.pending(), 0u);
  const DataPlaneStats stats = dp.stats();
  EXPECT_EQ(stats.submitted, 500u);
  EXPECT_EQ(stats.drained, 500u);
  EXPECT_EQ(enclave_.stats().packets, 500u);
}

TEST_F(DataPlaneTest, DroppedPacketsTravelTheCompletionRing) {
  // Odd message sizes are dropped; the packets still come back, marked.
  install_with_rule("dropodd", "fun(p, m, g) -> p.drop <- p.msg_size % 2");
  DataPlaneConfig cfg;
  cfg.workers = 2;
  DataPlane dp(enclave_, cfg);
  std::vector<netsim::PacketPtr> in;
  for (int i = 0; i < 200; ++i) {
    auto p = msg_packet(i + 1);
    p->meta.msg_size = i;  // even: kept, odd: dropped
    in.push_back(std::move(p));
  }
  const auto done = run_through(dp, std::move(in));
  ASSERT_EQ(done.size(), 200u);
  std::size_t dropped = 0;
  for (const auto& p : done) {
    if (p->drop_mark) ++dropped;
  }
  EXPECT_EQ(dropped, 100u);
  const DataPlaneStats stats = dp.stats();
  std::uint64_t worker_drops = 0;
  for (const auto& w : stats.workers) worker_drops += w.dropped;
  EXPECT_EQ(worker_drops, 100u);
}

TEST_F(DataPlaneTest, BackpressureReportsAndRecovers) {
  install_with_rule("noop", "fun(p, m, g) -> p.priority <- 1");
  DataPlaneConfig cfg;
  cfg.workers = 1;
  cfg.ring_capacity = 2;  // tiny: submit must hit a full ring
  DataPlane dp(enclave_, cfg);
  std::vector<netsim::PacketPtr> in;
  for (int i = 0; i < 300; ++i) in.push_back(msg_packet(1));
  const auto done = run_through(dp, std::move(in));
  EXPECT_EQ(done.size(), 300u);
  // Every packet got through despite the tiny ring, and nothing is left.
  const DataPlaneStats stats = dp.stats();
  EXPECT_EQ(stats.submitted, 300u);
  EXPECT_EQ(stats.drained, 300u);
  EXPECT_EQ(dp.pending(), 0u);
}

TEST_F(DataPlaneTest, SubmitBurstDeliversEverything) {
  install_with_rule("p3", "fun(p, m, g) -> p.priority <- 3");
  DataPlaneConfig cfg;
  cfg.workers = 4;
  DataPlane dp(enclave_, cfg);
  std::vector<netsim::PacketPtr> in;
  for (int i = 0; i < 500; ++i) in.push_back(msg_packet(i % 17 + 1));
  const auto done = run_through_bursts(dp, std::move(in));
  ASSERT_EQ(done.size(), 500u);
  for (const auto& p : done) EXPECT_EQ(p->priority, 3u);
  const DataPlaneStats stats = dp.stats();
  EXPECT_EQ(stats.submitted, 500u);
  EXPECT_EQ(stats.drained, 500u);
}

TEST_F(DataPlaneTest, SubmitBurstBackpressureLeavesRejectedInPlace) {
  install_with_rule("noop", "fun(p, m, g) -> p.priority <- 1");
  DataPlaneConfig cfg;
  cfg.workers = 1;
  cfg.ring_capacity = 2;  // tiny: bursts must be partially rejected
  DataPlane dp(enclave_, cfg);
  std::vector<netsim::PacketPtr> in;
  for (int i = 0; i < 200; ++i) in.push_back(msg_packet(1));
  const auto done = run_through_bursts(dp, std::move(in), 16);
  EXPECT_EQ(done.size(), 200u);
  const DataPlaneStats stats = dp.stats();
  EXPECT_EQ(stats.submitted, 200u);
  EXPECT_GT(stats.submit_backpressure, 0u);
  EXPECT_EQ(dp.pending(), 0u);
}

TEST_F(DataPlaneTest, SubmitBurstSkipsNullEntries) {
  install_with_rule("p1", "fun(p, m, g) -> p.priority <- 1");
  DataPlaneConfig cfg;
  cfg.workers = 2;
  DataPlane dp(enclave_, cfg);
  std::vector<netsim::PacketPtr> burst;
  for (int i = 0; i < 8; ++i) {
    burst.push_back(i % 2 == 0 ? msg_packet(i + 1) : nullptr);
  }
  EXPECT_EQ(dp.submit_burst(burst), 4u);
  std::vector<netsim::PacketPtr> done;
  dp.flush([&](netsim::PacketPtr p) { done.push_back(std::move(p)); });
  EXPECT_EQ(done.size(), 4u);
}

TEST_F(DataPlaneTest, StopDeliversResidualCompletions) {
  install_with_rule("p1", "fun(p, m, g) -> p.priority <- 1");
  DataPlaneConfig cfg;
  cfg.workers = 2;
  auto dp = std::make_unique<DataPlane>(enclave_, cfg);
  std::vector<netsim::PacketPtr> done;
  for (int i = 0; i < 64; ++i) {
    auto p = msg_packet(i + 1);
    while (!dp->submit(p)) {
      dp->drain_completions(
          [&](netsim::PacketPtr q) { done.push_back(std::move(q)); });
    }
  }
  dp->stop([&](netsim::PacketPtr q) { done.push_back(std::move(q)); });
  EXPECT_EQ(done.size(), 64u);
  EXPECT_EQ(dp->pending(), 0u);
}

TEST_F(DataPlaneTest, MetricsExported) {
  install_with_rule("p1", "fun(p, m, g) -> p.priority <- 1");
  DataPlaneConfig cfg;
  cfg.workers = 2;
  DataPlane dp(enclave_, cfg);
  std::vector<netsim::PacketPtr> in;
  for (int i = 0; i < 50; ++i) in.push_back(msg_packet(i + 1));
  run_through(dp, std::move(in));
  const std::string text = dp.metrics().text_exposition();
  EXPECT_NE(text.find("eden_dataplane_enqueued_total"), std::string::npos);
  EXPECT_NE(text.find("eden_dataplane_processed_total"), std::string::npos);
  EXPECT_NE(text.find("eden_dataplane_ring_depth"), std::string::npos);
  EXPECT_NE(text.find("eden_dataplane_batch_size"), std::string::npos);
  EXPECT_NE(text.find("worker=\"1\""), std::string::npos);
}

// --- Per-message ordering under concurrency ------------------------------
//
// The action is per_message (it writes message state): each packet of a
// message increments m.state0 and publishes the counter into
// p.path. If the data plane ever reorders a message's packets — or lets
// two workers touch one message — some packet observes a counter that
// does not match its submission index.

class DataPlaneOrderingTest : public DataPlaneTest {
 protected:
  void SetUp() override {
    install_with_rule(
        "seq", "fun(p, m, g) -> m.state0 <- m.state0 + 1; p.path <- m.state0");
  }

  // Sends packets whose message keys come from `keys` (round-robin) and
  // asserts every message's packets complete carrying 1, 2, 3, ... in
  // submission order. `bursts` routes submission through submit_burst —
  // the ordering contract must hold identically for both entry points.
  void check_ordering(const std::vector<std::int64_t>& keys,
                      std::size_t packets_per_key, bool bursts = false) {
    DataPlaneConfig cfg;
    cfg.workers = 4;
    cfg.ring_capacity = 64;  // small enough to exercise backpressure
    cfg.max_batch = 16;
    DataPlane dp(enclave_, cfg);

    std::vector<netsim::PacketPtr> in;
    std::map<std::int64_t, std::uint64_t> next_seq;
    for (std::size_t i = 0; i < packets_per_key; ++i) {
      for (const std::int64_t key : keys) {
        in.push_back(msg_packet(key, ++next_seq[key]));
      }
    }
    const auto done = bursts ? run_through_bursts(dp, std::move(in))
                             : run_through(dp, std::move(in));
    ASSERT_EQ(done.size(), packets_per_key * keys.size());

    std::map<std::int64_t, std::int64_t> last_counter;
    for (const auto& p : done) {
      const std::int64_t key = p->meta.msg_id;
      // The enclave's per-message counter must match the submission
      // sequence number stamped by the producer...
      EXPECT_EQ(static_cast<std::uint64_t>(p->path_label), p->debug_id)
          << "message " << key;
      // ...and completions of one message must arrive in that order.
      EXPECT_EQ(p->path_label, last_counter[key] + 1) << "message " << key;
      last_counter[key] = p->path_label;
    }
    for (const auto& [key, last] : last_counter) {
      EXPECT_EQ(static_cast<std::size_t>(last), packets_per_key)
          << "message " << key;
    }
  }
};

TEST_F(DataPlaneOrderingTest, SingleHotMessage) {
  check_ordering({42}, 1000);
}

TEST_F(DataPlaneOrderingTest, TwoHotMessages) {
  check_ordering({7, 1000001}, 500);
}

TEST_F(DataPlaneOrderingTest, KeysCollidingOnOneShard) {
  // Craft keys that all steer to worker 0 of 4: the pathological skew a
  // hash cannot save you from. Ordering must still hold.
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 1; keys.size() < 8; ++k) {
    if (DataPlane::shard_of(static_cast<std::uint64_t>(k), 4) == 0) {
      keys.push_back(k);
    }
  }
  check_ordering(keys, 100);
}

TEST_F(DataPlaneOrderingTest, ManyUniformMessages) {
  std::vector<std::int64_t> keys;
  std::uint64_t x = 0x2545F4914F6CDD1Dull;  // fixed-seed xorshift
  for (int i = 0; i < 64; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    keys.push_back(static_cast<std::int64_t>(x % 1000000) + 1);
  }
  check_ordering(keys, 25);
}

TEST_F(DataPlaneOrderingTest, BurstSubmitSingleHotMessage) {
  check_ordering({42}, 1000, /*bursts=*/true);
}

TEST_F(DataPlaneOrderingTest, BurstSubmitKeysCollidingOnOneShard) {
  // Partial bulk pushes against a saturated shard: the backpressured
  // tail is retried in original order, so the sequence must survive.
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 1; keys.size() < 8; ++k) {
    if (DataPlane::shard_of(static_cast<std::uint64_t>(k), 4) == 0) {
      keys.push_back(k);
    }
  }
  check_ordering(keys, 100, /*bursts=*/true);
}

TEST_F(DataPlaneOrderingTest, BurstSubmitManyUniformMessages) {
  std::vector<std::int64_t> keys;
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 64; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    keys.push_back(static_cast<std::int64_t>(x % 1000000) + 1);
  }
  check_ordering(keys, 25, /*bursts=*/true);
}

// --- HostStack integration ------------------------------------------------

TEST(DataPlaneHostStackTest, FlowCompletesWithWorkersOn) {
  hoststack::HostStackConfig cfg;
  cfg.dataplane.workers = 2;
  experiments::Testbed bed(cfg);
  auto& a = bed.add_host("a");
  auto& b = bed.add_host("b");
  bed.connect(a, b, 1000ULL * 1000 * 1000, 1000);
  bed.routing().install_dest_routes();
  bed.finalize();
  auto* alice = bed.host_by_name("a");
  auto* bob = bed.host_by_name("b");
  ASSERT_NE(alice->stack->dataplane(), nullptr);
  EXPECT_EQ(alice->stack->dataplane()->worker_count(), 2u);

  bool done = false;
  bob->stack->listen(5000,
                     [&](transport::TcpReceiver& r, const FlowInfo&) {
                       r.expect(100000);
                       r.on_complete = [&] { done = true; };
                     });
  alice->stack->open_flow(b.id(), 5000).start(100000);
  bed.run_for(netsim::kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(alice->stack->dataplane()->pending(), 0u);
  EXPECT_GT(alice->stack->dataplane()->stats().submitted, 0u);
}

TEST(DataPlaneHostStackTest, EnclaveDropsCountedThroughDataPlane) {
  hoststack::HostStackConfig cfg;
  cfg.dataplane.workers = 2;
  experiments::Testbed bed(cfg);
  auto& a = bed.add_host("a");
  auto& b = bed.add_host("b");
  bed.connect(a, b, 1000ULL * 1000 * 1000, 1000);
  bed.routing().install_dest_routes();
  bed.finalize();
  auto* alice = bed.host_by_name("a");
  auto* bob = bed.host_by_name("b");

  const auto program =
      bed.controller().compile("drop", "fun(p, m, g) -> p.drop <- 1", {});
  const core::ActionId action =
      alice->enclave->install_action("drop", program, {});
  const core::TableId table = alice->enclave->create_table("t");
  alice->enclave->add_rule(table, core::ClassPattern("*"), action);

  auto& sender = alice->stack->open_flow(b.id(), 5000);
  sender.start(10000);
  bed.run_for(50 * netsim::kMillisecond);
  EXPECT_GT(alice->stack->enclave_drops(), 0u);
  EXPECT_EQ(bob->node->rx_packets(), 0u);
}

}  // namespace
}  // namespace eden::hoststack
