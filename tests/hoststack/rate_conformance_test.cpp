// Property sweep: a token bucket's long-run output must match its
// configured rate regardless of rate, packet size or charge mode —
// the invariant Pulsar's guarantees rest on.
#include <gtest/gtest.h>

#include "hoststack/token_bucket.h"

namespace eden::hoststack {
namespace {

struct RateCase {
  std::uint64_t rate_bps;
  std::uint32_t packet_bytes;
  std::uint32_t charge_bytes;  // 0 = wire size
};

class RateConformance : public ::testing::TestWithParam<RateCase> {};

TEST_P(RateConformance, LongRunRateMatchesConfiguration) {
  const RateCase c = GetParam();
  netsim::Scheduler sched;
  std::uint64_t released_charge = 0;
  TokenBucket bucket(sched, c.rate_bps, /*burst=*/2 * c.packet_bytes,
                     [&](netsim::PacketPtr p) {
                       released_charge +=
                           p->charge_bytes > 0 ? p->charge_bytes
                                               : p->size_bytes;
                     });

  // Offer 2x the sustainable load for one simulated second.
  const double sustainable_pps =
      static_cast<double>(c.rate_bps) / 8.0 /
      static_cast<double>(c.charge_bytes > 0 ? c.charge_bytes
                                             : c.packet_bytes);
  const auto offered = static_cast<std::uint64_t>(sustainable_pps * 2) + 4;
  const netsim::SimTime gap = netsim::kSecond / static_cast<netsim::SimTime>(
                                                    offered);
  for (std::uint64_t i = 0; i < offered; ++i) {
    sched.at(static_cast<netsim::SimTime>(i) * gap, [&bucket, &c] {
      auto p = netsim::make_packet();
      p->size_bytes = c.packet_bytes;
      p->charge_bytes = c.charge_bytes;
      bucket.submit(std::move(p));
    });
  }
  sched.run_until(netsim::kSecond);

  const double expected_bytes = static_cast<double>(c.rate_bps) / 8.0;
  // Within 5% + one burst of the configured rate over one second.
  EXPECT_NEAR(static_cast<double>(released_charge), expected_bytes,
              expected_bytes * 0.05 + 2.0 * c.packet_bytes)
      << "rate=" << c.rate_bps << " pkt=" << c.packet_bytes
      << " charge=" << c.charge_bytes;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RateConformance,
    ::testing::Values(
        RateCase{1 * 1000 * 1000, 200, 0},          // 1 Mbps, small packets
        RateCase{8 * 1000 * 1000, 1500, 0},         // 8 Mbps, MTU packets
        RateCase{100 * 1000 * 1000, 1500, 0},       // 100 Mbps
        RateCase{480 * 1000 * 1000, 1514, 0},       // the fig11 guarantee
        RateCase{1000 * 1000 * 1000, 1514, 0},      // 1 Gbps
        RateCase{8 * 1000 * 1000, 200, 2000},       // charge > wire size
        RateCase{480 * 1000 * 1000, 200, 65536},    // Pulsar READ charging
        RateCase{100 * 1000 * 1000, 9000, 0}));     // jumbo frames

}  // namespace
}  // namespace eden::hoststack
