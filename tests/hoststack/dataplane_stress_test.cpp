// Data-plane stress: N worker threads hammer Enclave::process_batch
// through the sharded DataPlane while the control-plane session layer
// (PR4) commits rule-set transactions over a faulty link. Run under
// TSan/ASan this is the regression test for the one-snapshot-per-batch
// RCU path and the batched action runner racing live commits.
//
// Test 1 repoints rules in TWO tables per transaction (the soak-test
// invariant): every packet must see both epoch writes or neither, so
// p.path == p.queue on every completion or a commit tore. Two tables
// also drive the per-packet fallback of process_batch, whose snapshot
// is still acquired once per batch.
//
// Test 2 uses ONE table with a per-message action (message-state
// counter + a globals-consistency probe), driving the grouped
// run_action_batch path — per-(action, message) locking and state
// copies — against the same transaction churn.
//
// Environment knobs (for the CI stress matrix):
//   EDEN_DP_STRESS_SEED    fault/backoff seed (default 1)
//   EDEN_DP_STRESS_EPOCHS  transaction count (default 40)
//   EDEN_DP_STRESS_WORKERS data-plane worker threads (default 4)
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "controlplane/fault.h"
#include "controlplane/session.h"
#include "core/controller.h"
#include "hoststack/dataplane.h"

namespace eden::hoststack {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

// The epoch value survives to the packet only when the action's global
// block is self-consistent; a torn global write surfaces as -1.
std::string epoch_program(const std::string& field) {
  return "fun(p, m, g) -> p." + field +
         " <- (if g.a + g.b == 2 * g.v then g.v else 0 - 1)";
}

std::vector<lang::FieldDef> epoch_fields() {
  std::vector<lang::FieldDef> fields;
  for (const char* name : {"v", "a", "b"}) {
    lang::FieldDef field;
    field.name = name;
    field.access = lang::Access::read_write;
    fields.push_back(field);
  }
  return fields;
}

// Shared scaffolding: an enclave controlled through a faulty session
// and fronted by a DataPlane.
class DataPlaneStress : public ::testing::Test {
 protected:
  void SetUp() override {
    seed_ = env_u64("EDEN_DP_STRESS_SEED", 1);
    epochs_ = env_u64("EDEN_DP_STRESS_EPOCHS", 40);
    workers_ = env_u64("EDEN_DP_STRESS_WORKERS", 4);

    agent_ = std::make_unique<controlplane::EnclaveAgent>(enclave_);
    auto connector = [this]() -> std::unique_ptr<controlplane::Transport> {
      auto [near, far] = controlplane::make_pipe(pump_, 32);
      agent_->attach(std::move(far));
      controlplane::FaultProfile profile;
      profile.drop_prob = 0.04;
      profile.delay_prob = 0.08;
      profile.duplicate_prob = 0.04;
      profile.disconnect_prob = 0.01;
      profile.seed = seed_ * 1000 + ++dials_;
      return std::make_unique<controlplane::FaultyTransport>(
          std::move(near), pump_, profile);
    };
    controlplane::SessionConfig config;
    config.heartbeat_interval_ns = 2'000'000;
    config.liveness_timeout_ns = 10'000'000;
    config.request_timeout_ns = 12'000'000;
    config.backoff_initial_ns = 1'000'000;
    config.backoff_max_ns = 20'000'000;
    config.seed = seed_;
    session_ = std::make_unique<controlplane::EnclaveSession>(
        "dp-stress", connector, [this]() { return now_ns_; }, config);

    DataPlaneConfig dp_config;
    dp_config.workers = workers_;
    dp_config.ring_capacity = 256;
    dp_config.max_batch = 32;
    dataplane_ = std::make_unique<DataPlane>(enclave_, dp_config);
  }

  void step() {
    now_ns_ += 1'000'000;
    session_->tick();
    pump_.run();
  }

  netsim::PacketPtr packet_for(std::uint64_t i) {
    auto p = netsim::make_packet();
    p->src = 1 + i % 7;
    p->dst = 2;
    p->src_port = static_cast<std::uint16_t>(1000 + i % 13);
    p->dst_port = 2000;
    p->protocol = netsim::Protocol::tcp;
    p->size_bytes = 1000;
    // A mix of message-keyed and pure-flow-hashed packets.
    p->meta.msg_id = i % 3 == 0 ? 0 : static_cast<std::int64_t>(i % 29 + 1);
    return p;
  }

  std::uint64_t seed_ = 1;
  std::uint64_t epochs_ = 40;
  std::uint64_t workers_ = 4;
  std::uint64_t now_ns_ = 0;
  std::uint64_t dials_ = 0;

  core::ClassRegistry registry_;
  core::Controller controller_{registry_};
  core::Enclave enclave_{"dp-stress", registry_};
  controlplane::PipePump pump_;
  std::unique_ptr<controlplane::EnclaveAgent> agent_;
  std::unique_ptr<controlplane::EnclaveSession> session_;
  std::unique_ptr<DataPlane> dataplane_;
};

TEST_F(DataPlaneStress, TwoTableCommitsStayAtomicUnderBatches) {
  const auto fields = epoch_fields();
  const auto path_program =
      controller_.compile("path_fn", epoch_program("path"), fields);
  const auto queue_program =
      controller_.compile("queue_fn", epoch_program("queue"), fields);

  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t violations = 0;
  const auto check = [&](netsim::PacketPtr p) {
    ++completed;
    if (p->path_label != p->rl_queue) ++violations;
  };

  controlplane::EnclaveSession::RuleHandle path_rule = 0;
  controlplane::EnclaveSession::RuleHandle queue_rule = 0;
  for (std::uint64_t s = 1; s <= epochs_; ++s) {
    const std::string path_name = "path_" + std::to_string(s % 2);
    const std::string queue_name = "queue_" + std::to_string(s % 2);
    session_->begin_txn();
    session_->install_action(path_name, path_program, fields);
    session_->install_action(queue_name, queue_program, fields);
    for (const char* field : {"v", "a", "b"}) {
      session_->set_global_scalar(path_name, field,
                                  static_cast<std::int64_t>(s));
      session_->set_global_scalar(queue_name, field,
                                  static_cast<std::int64_t>(s));
    }
    if (path_rule != 0) session_->remove_rule("paths", path_rule);
    if (queue_rule != 0) session_->remove_rule("queues", queue_rule);
    path_rule = session_->add_rule("paths", "*", path_name);
    queue_rule = session_->add_rule("queues", "*", queue_name);
    session_->commit_txn();

    // Keep the workers saturated while the commit is in flight.
    for (int round = 0; round < 8; ++round) {
      for (int i = 0; i < 32; ++i) {
        auto p = packet_for(submitted);
        while (!dataplane_->submit(p)) dataplane_->drain_completions(check);
        ++submitted;
      }
      step();
      dataplane_->drain_completions(check);
    }
  }

  // Converge the session on the final journal, then flush the workers.
  for (int i = 0; i < 20000; ++i) {
    step();
    if (session_->ready() && session_->inflight() == 0 &&
        pump_.pending() == 0 && !enclave_.txn_open()) {
      break;
    }
  }
  dataplane_->flush(check);
  dataplane_->stop(check);

  EXPECT_EQ(completed, submitted);
  EXPECT_EQ(violations, 0u)
      << "a worker batch observed a torn two-table commit";
  EXPECT_GT(session_->stats().txns_committed, 0u);
  EXPECT_EQ(enclave_.stats().packets, submitted);
}

TEST_F(DataPlaneStress, GroupedBatchesSurviveActionChurn) {
  // One table, one per-message action: the grouped run_action_batch
  // path. The action keeps a message counter (forcing per-message locks
  // and state copies) and probes its own globals for consistency.
  const auto fields = epoch_fields();
  const auto program = controller_.compile(
      "seq_fn",
      "fun(p, m, g) -> m.state0 <- m.state0 + 1; p.path <- m.state0; "
      "p.queue <- (if g.a + g.b == 2 * g.v then g.v else 0 - 1)",
      fields);

  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t torn_globals = 0;
  std::uint64_t bad_counters = 0;
  std::set<std::int64_t> committed_epochs{-1};  // -1 = unmatched default
  const auto check = [&](netsim::PacketPtr p) {
    ++completed;
    // rl_queue must be a value some committed epoch wrote — never a
    // mix. (Unmatched packets keep the -1 default.)
    if (committed_epochs.count(p->rl_queue) == 0) ++torn_globals;
    // The message counter is positive whenever the action ran.
    if (p->rl_queue != -1 && p->path_label < 1) ++bad_counters;
  };

  controlplane::EnclaveSession::RuleHandle rule = 0;
  for (std::uint64_t s = 1; s <= epochs_; ++s) {
    const std::string name = "seq_" + std::to_string(s % 2);
    session_->begin_txn();
    session_->install_action(name, program, fields);
    for (const char* field : {"v", "a", "b"}) {
      session_->set_global_scalar(name, field, static_cast<std::int64_t>(s));
    }
    if (rule != 0) session_->remove_rule("t", rule);
    rule = session_->add_rule("t", "*", name);
    session_->commit_txn();
    committed_epochs.insert(static_cast<std::int64_t>(s));

    for (int round = 0; round < 8; ++round) {
      for (int i = 0; i < 32; ++i) {
        auto p = packet_for(submitted);
        while (!dataplane_->submit(p)) dataplane_->drain_completions(check);
        ++submitted;
      }
      step();
      dataplane_->drain_completions(check);
    }
  }

  for (int i = 0; i < 20000; ++i) {
    step();
    if (session_->ready() && session_->inflight() == 0 &&
        pump_.pending() == 0 && !enclave_.txn_open()) {
      break;
    }
  }
  dataplane_->flush(check);
  dataplane_->stop(check);

  EXPECT_EQ(completed, submitted);
  EXPECT_EQ(torn_globals, 0u)
      << "a grouped batch observed a half-applied global-state commit";
  EXPECT_EQ(bad_counters, 0u);
  EXPECT_GT(session_->stats().txns_committed, 0u);
}

// Exhaustion robustness: producers racing a deliberately undersized
// packet arena must degrade to drop-and-count — never deadlock, and
// never silently heap-allocate on the try path. The pool is sized well
// below the in-flight window (rings + batches across 4 workers), so
// try_make() runs dry constantly and only completion-path recycling
// keeps traffic flowing.
TEST_F(DataPlaneStress, PoolExhaustionDropsAndCountsInsteadOfDeadlocking) {
  const auto fields = epoch_fields();
  const auto program = controller_.compile(
      "touch_fn", "fun(p, m, g) -> p.path <- g.v", fields);
  session_->begin_txn();
  session_->install_action("touch", program, fields);
  for (const char* field : {"v", "a", "b"}) {
    session_->set_global_scalar("touch", field, 1);
  }
  session_->add_rule("t", "*", "touch");
  session_->commit_txn();

  netsim::PacketPoolConfig pool_config;
  pool_config.capacity_slots = 64;
  pool_config.slab_slots = 16;
  pool_config.magazine_slots = 8;
  netsim::PacketPool pool(pool_config);

  DataPlaneConfig dp_config;
  dp_config.workers = workers_;
  dp_config.ring_capacity = 64;
  dp_config.max_batch = 16;
  dp_config.pool = &pool;
  auto dp = std::make_unique<DataPlane>(enclave_, dp_config);

  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t pool_drops = 0;
  const auto check = [&](netsim::PacketPtr p) {
    ++completed;
    p.reset();  // recycle the slot before the next allocation attempt
  };

  for (std::uint64_t round = 0; round < 200; ++round) {
    for (int i = 0; i < 64; ++i) {
      auto p = pool.try_make();
      if (p == nullptr) {
        // Arena dry: the producer's contract is to drop and count, then
        // keep going — the drain below recycles slots for later rounds.
        ++pool_drops;
        continue;
      }
      p->src = 1;
      p->dst = 2;
      p->protocol = netsim::Protocol::tcp;
      p->size_bytes = 1000;
      p->meta.msg_id = static_cast<std::int64_t>(round % 29 + 1);
      while (!dp->submit(p)) dp->drain_completions(check);
      ++submitted;
    }
    step();
    dp->drain_completions(check);
  }
  dp->flush(check);
  dp->stop(check);

  EXPECT_EQ(completed, submitted);
  EXPECT_GT(submitted, 0u);
  EXPECT_GT(pool_drops, 0u) << "pool never ran dry; shrink it";

  const auto stats = dp->stats();
  EXPECT_GE(stats.pool.exhausted_total, pool_drops);
  EXPECT_EQ(stats.pool.heap_fallback_total, 0u)
      << "try path must not heap-allocate when the arena is dry";
  EXPECT_LE(stats.pool.slots_materialized, 64u);

  // The drop-and-count series is visible where operators look for it.
  const std::string text = dp->metrics().text_exposition();
  EXPECT_NE(text.find("eden_pool_exhausted_total"), std::string::npos);
  EXPECT_NE(text.find("eden_pool_in_use"), std::string::npos);
}

}  // namespace
}  // namespace eden::hoststack
