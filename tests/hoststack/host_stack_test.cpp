// The host stack glue: egress through the enclave and NIC, ingress
// demux, the message send API, and flow lifecycle.
#include "hoststack/host_stack.h"

#include <gtest/gtest.h>

#include "apps/memcached_stage.h"
#include "experiments/testbed.h"

namespace eden::hoststack {
namespace {

constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;

class HostStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = &bed_.add_host("a");
    b_ = &bed_.add_host("b");
    bed_.connect(*a_, *b_, 10 * kGbps, 1000);
    bed_.routing().install_dest_routes();
    bed_.finalize();
    alice_ = bed_.host_by_name("a");
    bob_ = bed_.host_by_name("b");
  }

  experiments::Testbed bed_;
  netsim::HostNode* a_ = nullptr;
  netsim::HostNode* b_ = nullptr;
  experiments::TestHost* alice_ = nullptr;
  experiments::TestHost* bob_ = nullptr;
};

TEST_F(HostStackTest, FlowDeliversEndToEnd) {
  std::uint64_t delivered = 0;
  bool done = false;
  bob_->stack->listen(5000, [&](transport::TcpReceiver& r,
                                const FlowInfo& info) {
    r.expect(static_cast<std::uint64_t>(info.meta.msg_size));
    r.on_deliver = [&](std::uint64_t n) { delivered = n; };
    r.on_complete = [&] { done = true; };
  });
  netsim::PacketMeta meta;
  meta.msg_size = 100000;
  auto& sender = alice_->stack->open_flow(b_->id(), 5000, meta);
  sender.start(100000);
  bed_.run_for(netsim::kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(delivered, 100000u);
  EXPECT_TRUE(sender.complete());
}

TEST_F(HostStackTest, MetadataTravelsWithPackets) {
  netsim::PacketMeta seen;
  bob_->stack->listen(5000, [&](transport::TcpReceiver& r,
                                const FlowInfo& info) {
    seen = info.meta;
    r.expect(1000);
  });
  netsim::PacketMeta meta;
  meta.msg_id = 31337;
  meta.msg_type = 2;
  meta.msg_size = 1000;
  meta.tenant = 5;
  alice_->stack->open_flow(b_->id(), 5000, meta).start(1000);
  bed_.run_for(100 * netsim::kMillisecond);
  EXPECT_EQ(seen.msg_id, 31337);
  EXPECT_EQ(seen.msg_type, 2);
  EXPECT_EQ(seen.tenant, 5);
}

TEST_F(HostStackTest, NoListenerMeansNoDelivery) {
  auto& sender = alice_->stack->open_flow(b_->id(), 6000);
  sender.start(10000);
  bed_.run_for(100 * netsim::kMillisecond);
  EXPECT_FALSE(sender.complete());  // nothing acked the data
}

TEST_F(HostStackTest, EnclaveActionAppliesOnEgress) {
  // Install a priority-setting action on alice; verify packets arrive
  // at bob with that priority.
  core::Controller& controller = bed_.controller();
  const auto program =
      controller.compile("p6", "fun(p, m, g) -> p.priority <- 6", {});
  const core::ActionId action =
      alice_->enclave->install_action("p6", program, {});
  const core::TableId table = alice_->enclave->create_table("t");
  alice_->enclave->add_rule(table, core::ClassPattern("*"), action);

  std::uint8_t seen_priority = 255;
  bob_->stack->listen(5000, [&](transport::TcpReceiver& r, const FlowInfo&) {
    r.expect(1000);
  });
  // Peek at raw arrivals via the host node counter + a custom deliver
  // wrapper is invasive; instead check the enclave stats and ack flow.
  alice_->stack->open_flow(b_->id(), 5000).start(1000);
  bed_.run_for(100 * netsim::kMillisecond);
  EXPECT_GT(alice_->enclave->action_stats(action).executions, 0u);
  (void)seen_priority;
}

TEST_F(HostStackTest, EnclaveDropCountsAndBlocks) {
  core::Controller& controller = bed_.controller();
  const auto program =
      controller.compile("drop", "fun(p, m, g) -> p.drop <- 1", {});
  const core::ActionId action =
      alice_->enclave->install_action("drop", program, {});
  const core::TableId table = alice_->enclave->create_table("t");
  alice_->enclave->add_rule(table, core::ClassPattern("*"), action);

  auto& sender = alice_->stack->open_flow(b_->id(), 5000);
  sender.start(10000);
  bed_.run_for(50 * netsim::kMillisecond);
  EXPECT_GT(alice_->stack->enclave_drops(), 0u);
  EXPECT_EQ(bob_->node->rx_packets(), 0u);
}

TEST_F(HostStackTest, SendMessageClassifiesThroughStage) {
  apps::MemcachedStage stage(bed_.registry());
  stage.create_rule("r1",
                    {core::FieldPattern::exact("GET"),
                     core::FieldPattern::any()},
                    "GET", core::kMetaAll);

  // An enclave rule matching the GET class sets priority 7.
  core::Controller& controller = bed_.controller();
  const auto program =
      controller.compile("p7", "fun(p, m, g) -> p.priority <- 7", {});
  const core::ActionId action =
      alice_->enclave->install_action("p7", program, {});
  const core::TableId table = alice_->enclave->create_table("t");
  alice_->enclave->add_rule(table, core::ClassPattern("memcached.r1.GET"),
                            action);

  netsim::PacketMeta received;
  bob_->stack->listen(11211, [&](transport::TcpReceiver& r,
                                 const FlowInfo& info) {
    received = info.meta;
    r.expect(static_cast<std::uint64_t>(info.meta.msg_size));
  });

  const netsim::PacketMeta base =
      apps::MemcachedStage::request_meta(true, "key1", 2048);
  alice_->stack->send_message(stage, apps::MemcachedStage::get_attrs("key1"),
                              base, b_->id(), 11211, 2048);
  bed_.run_for(100 * netsim::kMillisecond);

  EXPECT_GT(alice_->enclave->action_stats(action).executions, 0u);
  EXPECT_NE(received.msg_id, 0);
  EXPECT_EQ(received.msg_type, apps::kMemcachedGet);
  EXPECT_EQ(received.msg_size, 2048);
}

TEST_F(HostStackTest, CloseFlowReleasesEndpoints) {
  bob_->stack->listen(5000, [&](transport::TcpReceiver& r, const FlowInfo&) {
    r.expect(1000);
  });
  auto& sender = alice_->stack->open_flow(b_->id(), 5000);
  const netsim::FlowId fid = sender.flow_id();
  sender.start(1000);
  bed_.run_for(100 * netsim::kMillisecond);
  EXPECT_EQ(alice_->stack->open_flow_count(), 1u);
  alice_->stack->close_flow(fid);
  bob_->stack->close_flow(fid);
  bed_.run_for(netsim::kMillisecond);
  EXPECT_EQ(alice_->stack->open_flow_count(), 0u);
  EXPECT_EQ(bob_->stack->open_flow_count(), 0u);
}

TEST_F(HostStackTest, CloseFromCompletionCallbackIsSafe) {
  bob_->stack->listen(5000, [&](transport::TcpReceiver& r,
                                const FlowInfo& info) {
    r.expect(1000);
    const netsim::FlowId fid = info.flow_id;
    r.on_complete = [this, fid] { bob_->stack->close_flow(fid); };
  });
  auto& sender = alice_->stack->open_flow(b_->id(), 5000);
  const netsim::FlowId fid = sender.flow_id();
  sender.on_complete = [this, fid] { alice_->stack->close_flow(fid); };
  sender.start(1000);
  bed_.run_for(100 * netsim::kMillisecond);
  EXPECT_EQ(alice_->stack->open_flow_count(), 0u);
  EXPECT_EQ(bob_->stack->open_flow_count(), 0u);
}

TEST_F(HostStackTest, RawPacketsReachRawHandler) {
  int raw_count = 0;
  bob_->stack->set_raw_handler([&](netsim::PacketPtr p) {
    EXPECT_EQ(p->dst_port, 9999);
    ++raw_count;
  });
  auto p = netsim::make_packet();
  p->src = a_->id();
  p->dst = b_->id();
  p->dst_port = 9999;
  p->protocol = netsim::Protocol::storage;
  p->size_bytes = 200;
  alice_->stack->send_raw(std::move(p));
  bed_.run_for(netsim::kMillisecond);
  EXPECT_EQ(raw_count, 1);
}

TEST_F(HostStackTest, NicQueueRateLimitsMarkedPackets) {
  // Create a 8 Mbps queue on alice and steer packets into it via an
  // enclave action; a 100KB transfer then takes ~100 ms instead of
  // microseconds.
  const int queue = alice_->stack->nic().create_queue(8 * 1000 * 1000,
                                                      10 * 1024);
  core::Controller& controller = bed_.controller();
  const auto program = controller.compile(
      "q", "fun(p, m, g) -> p.queue <- " + std::to_string(queue), {});
  const core::ActionId action =
      alice_->enclave->install_action("q", program, {});
  const core::TableId table = alice_->enclave->create_table("t");
  alice_->enclave->add_rule(table, core::ClassPattern("*"), action);

  bool done = false;
  bob_->stack->listen(5000, [&](transport::TcpReceiver& r, const FlowInfo&) {
    r.expect(100000);
    r.on_complete = [&] { done = true; };
  });
  alice_->stack->open_flow(b_->id(), 5000).start(100000);

  bed_.run_for(20 * netsim::kMillisecond);
  EXPECT_FALSE(done);  // rate limited: cannot be finished yet
  bed_.run_for(2 * netsim::kSecond);
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace eden::hoststack
