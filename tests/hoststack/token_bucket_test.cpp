#include "hoststack/token_bucket.h"

#include <gtest/gtest.h>

namespace eden::hoststack {
namespace {

netsim::PacketPtr packet_of(std::uint32_t bytes, std::uint32_t charge = 0) {
  auto p = netsim::make_packet();
  p->size_bytes = bytes;
  p->charge_bytes = charge;
  return p;
}

class TokenBucketTest : public ::testing::Test {
 protected:
  netsim::Scheduler sched_;
  std::vector<netsim::SimTime> releases_;

  TokenBucket make(std::uint64_t rate_bps, std::uint64_t burst) {
    return TokenBucket(sched_, rate_bps, burst, [this](netsim::PacketPtr) {
      releases_.push_back(sched_.now());
    });
  }
};

TEST_F(TokenBucketTest, BurstPassesImmediately) {
  TokenBucket tb = make(1000000, 10000);
  for (int i = 0; i < 10; ++i) tb.submit(packet_of(1000));
  EXPECT_EQ(releases_.size(), 10u);  // all within the burst
  for (const auto t : releases_) EXPECT_EQ(t, 0);
}

TEST_F(TokenBucketTest, SustainedRateIsEnforced) {
  // 8 Mbps = 1 MB/s. 1000-byte packets should drain at 1 per ms after
  // the burst is spent.
  TokenBucket tb = make(8 * 1000 * 1000, 1000);
  for (int i = 0; i < 5; ++i) tb.submit(packet_of(1000));
  sched_.run();
  ASSERT_EQ(releases_.size(), 5u);
  EXPECT_EQ(releases_[0], 0);  // burst
  for (int i = 1; i < 5; ++i) {
    EXPECT_NEAR(static_cast<double>(releases_[static_cast<std::size_t>(i)]),
                i * 1e6, 1e4)
        << i;
  }
}

TEST_F(TokenBucketTest, ReleasesInFifoOrder) {
  netsim::Scheduler sched;
  std::vector<std::uint64_t> order;
  TokenBucket tb(sched, 8 * 1000 * 1000, 1000,
                 [&](netsim::PacketPtr p) { order.push_back(p->debug_id); });
  for (std::uint64_t i = 1; i <= 4; ++i) {
    auto p = packet_of(1000);
    p->debug_id = i;
    tb.submit(std::move(p));
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST_F(TokenBucketTest, ChargeOverridesWireSize) {
  // Pulsar's trick: a 200-byte request charged 64KB drains the bucket
  // as if it were 64KB on the wire.
  TokenBucket tb = make(8 * 1000 * 1000, 64 * 1024);  // burst = one IO
  tb.submit(packet_of(200, 64 * 1024));
  tb.submit(packet_of(200, 64 * 1024));
  EXPECT_EQ(releases_.size(), 1u);  // second must wait a full IO time
  sched_.run();
  ASSERT_EQ(releases_.size(), 2u);
  // 64KB at 1 MB/s is ~65.5 ms.
  EXPECT_NEAR(static_cast<double>(releases_[1]), 65.5e6, 1e6);
}

TEST_F(TokenBucketTest, ZeroChargeMeansWireSize) {
  TokenBucket tb = make(8 * 1000 * 1000, 500);
  tb.submit(packet_of(500, 0));
  EXPECT_EQ(releases_.size(), 1u);
}

TEST_F(TokenBucketTest, RateChangeTakesEffect) {
  TokenBucket tb = make(8 * 1000 * 1000, 1000);
  for (int i = 0; i < 3; ++i) tb.submit(packet_of(1000));
  sched_.run_until(1);  // burst packet only
  EXPECT_EQ(releases_.size(), 1u);
  tb.set_rate(8 * 1000 * 1000 * 10);  // 10x faster
  sched_.run();
  ASSERT_EQ(releases_.size(), 3u);
  EXPECT_LT(releases_[2], 300000);  // ~0.1 ms per packet at the new rate
}

TEST_F(TokenBucketTest, BacklogReported) {
  TokenBucket tb = make(8 * 1000 * 1000, 1000);
  for (int i = 0; i < 3; ++i) tb.submit(packet_of(1000));
  EXPECT_EQ(tb.backlog(), 2u);
  sched_.run();
  EXPECT_EQ(tb.backlog(), 0u);
  EXPECT_EQ(tb.released_packets(), 3u);
  EXPECT_EQ(tb.released_bytes(), 3000u);
}

TEST_F(TokenBucketTest, OversizedChargeGoesIntoDeficit) {
  // A charge bigger than the bucket depth must not live-lock: it
  // conforms once the bucket is full and drives it into deficit, which
  // recovers at the fill rate.
  TokenBucket tb = make(8 * 1000 * 1000, 1000);  // 1 MB/s, 1KB bucket
  tb.submit(packet_of(1000, 10000));             // 10KB charge
  EXPECT_EQ(releases_.size(), 1u);
  tb.submit(packet_of(1000));  // must wait out the ~10KB deficit
  sched_.run();
  ASSERT_EQ(releases_.size(), 2u);
  EXPECT_NEAR(static_cast<double>(releases_[1]), 10e6, 0.3e6);
}

// --- Regression: rate changes while the bucket is in deficit ------------
//
// The oversized-charge path (charge > burst) leaves tokens_ deeply
// negative. set_rate() in that window must bill the elapsed time at the
// old rate and pay the remaining deficit down at the new one — neither
// forgiving the debt nor double-charging it.

TEST_F(TokenBucketTest, SetRateDuringDeficitPreservesLongTermRate) {
  // 80 kbps = 10 KB/s, 10KB bucket. A 50KB charge conforms instantly
  // (min(cost, burst)) and leaves tokens at -40KB.
  TokenBucket tb = make(80 * 1000, 10000);
  tb.submit(packet_of(1000, 50000));
  ASSERT_EQ(releases_.size(), 1u);
  tb.submit(packet_of(10000));  // needs a full bucket: 50KB of refill
  // At the old rate the release would land at t = 5s. Drop to 8 kbps
  // (1 KB/s) at t = 1s: 10KB accrued, 40KB of deficit left, now paid at
  // 1 KB/s -> release at 1s + 40s = 41s.
  sched_.run_until(1'000'000'000);
  EXPECT_EQ(releases_.size(), 1u);
  tb.set_rate(8 * 1000);
  sched_.run();
  ASSERT_EQ(releases_.size(), 2u);
  EXPECT_NEAR(static_cast<double>(releases_[1]), 41e9, 0.1e9);
}

TEST_F(TokenBucketTest, ZeroRateDuringDeficitStallsThenRecovers) {
  TokenBucket tb = make(80 * 1000, 10000);  // 10 KB/s
  tb.submit(packet_of(1000, 50000));        // tokens -> -40KB
  tb.submit(packet_of(10000));
  sched_.run_until(1'000'000'000);
  tb.set_rate(0);  // freeze with 40KB of deficit outstanding
  sched_.run_until(2'000'000'000);
  EXPECT_EQ(releases_.size(), 1u);  // nothing moves at rate 0
  tb.set_rate(8 * 1000);            // 1 KB/s from t = 2s
  sched_.run();
  ASSERT_EQ(releases_.size(), 2u);
  // The stalled second must not count toward the refill: 2s + 40s.
  EXPECT_NEAR(static_cast<double>(releases_[1]), 42e9, 0.1e9);
}

TEST_F(TokenBucketTest, RateIncreaseDuringDeficitAcceleratesRecovery) {
  TokenBucket tb = make(80 * 1000, 10000);  // 10 KB/s
  tb.submit(packet_of(1000, 50000));        // tokens -> -40KB
  tb.submit(packet_of(10000));
  sched_.run_until(1'000'000'000);
  // 100 KB/s from t = 1s: -30KB of tokens must reach the full 10KB
  // bucket the packet needs, i.e. 40KB of refill -> release at 1.4s.
  tb.set_rate(800 * 1000);
  sched_.run();
  ASSERT_EQ(releases_.size(), 2u);
  EXPECT_NEAR(static_cast<double>(releases_[1]), 1.4e9, 0.05e9);
}

TEST_F(TokenBucketTest, OversizedChargesSustainLongTermRate) {
  // A stream of charges 5x the bucket depth must still average out to
  // the configured rate: one packet per charge/rate seconds.
  TokenBucket tb = make(80 * 1000, 1000);  // 10 KB/s, 1KB bucket
  for (int i = 0; i < 20; ++i) tb.submit(packet_of(500, 5000));
  sched_.run();
  ASSERT_EQ(releases_.size(), 20u);
  for (std::size_t i = 1; i < 20; ++i) {
    // 5KB charge at 10 KB/s -> 0.5s spacing.
    EXPECT_NEAR(static_cast<double>(releases_[i]),
                static_cast<double>(i) * 0.5e9, 0.05e9)
        << i;
  }
}

TEST_F(TokenBucketTest, ZeroRateStallsUntilRateSet) {
  TokenBucket tb = make(0, 100);
  tb.submit(packet_of(80));  // consumes the initial burst
  tb.submit(packet_of(80));  // stalls: no refill at rate 0
  sched_.run();
  EXPECT_EQ(releases_.size(), 1u);
  tb.set_rate(8 * 1000 * 1000);
  sched_.run();
  EXPECT_EQ(releases_.size(), 2u);
}

}  // namespace
}  // namespace eden::hoststack
