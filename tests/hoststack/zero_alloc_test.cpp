// The tentpole proof obligation: ZERO per-packet heap allocation on the
// steady-state data path. This binary links eden_alloc_count, which
// replaces the global operator new/delete family with counting
// wrappers; each test warms every lazily-built structure first (pool
// slabs, thread magazines, enclave thread state, ring scratch), then
// gates a sustained traffic window and asserts the process performed
// literally no heap allocation during it. Pool refills are exempt by
// construction, not by exception: refill moves pre-reserved pointers,
// so a refill that allocated would fail the gate — which is the point.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/controller.h"
#include "core/enclave.h"
#include "hoststack/dataplane.h"
#include "netsim/packet_pool.h"
#include "support/alloc_count.h"

namespace eden::hoststack {
namespace {

class ZeroAllocTest : public ::testing::Test {
 protected:
  core::ClassRegistry registry_;
  core::Enclave enclave_{"zero-alloc", registry_};
  core::Controller controller_{registry_};

  void install_with_rule(const char* name, const std::string& source) {
    const lang::CompiledProgram program =
        controller_.compile(name, source, {});
    const core::ActionId action = enclave_.install_action(name, program, {});
    const core::TableId table = enclave_.create_table(name);
    enclave_.add_rule(table, core::ClassPattern("*"), action);
  }

  static void fill(netsim::Packet& p, std::int64_t msg_id) {
    p.src = 1;
    p.dst = 2;
    p.src_port = 1000;
    p.dst_port = 2000;
    p.protocol = netsim::Protocol::tcp;
    p.size_bytes = 1514;
    p.payload_bytes = 1460;
    p.meta.msg_id = msg_id;
  }
};

TEST_F(ZeroAllocTest, PooledPacketLifecycleIsAllocFree) {
  netsim::PacketPoolConfig config;
  config.capacity_slots = 1024;
  config.slab_slots = 1024;
  config.magazine_slots = 64;
  netsim::PacketPool pool(config);

  // Warm-up: materialize the slab, build this thread's magazine, and
  // exercise the full magazine refill/flush cycle once.
  {
    std::vector<netsim::PacketPtr> warm;
    warm.reserve(512);
    for (int i = 0; i < 512; ++i) warm.push_back(pool.make());
  }

  std::uint64_t news = 0;
  {
    testsupport::AllocGate gate;
    for (int round = 0; round < 1000; ++round) {
      auto p = pool.make();
      auto q = pool.try_make();
      auto r = pool.clone(*p);
      p.reset();
      q.reset();
      r.reset();
    }
    news = gate.news();
  }
  EXPECT_EQ(news, 0u) << "pooled make/clone/release touched the heap";
  EXPECT_EQ(pool.stats().heap_fallback_total, 0u);
}

TEST_F(ZeroAllocTest, ProcessBatchSteadyStateIsAllocFree) {
  // A per-message action — the grouped run_action_batch path with
  // message-state copies, the heaviest steady-state code the enclave
  // runs.
  install_with_rule(
      "seq", "fun(p, m, g) -> m.state0 <- m.state0 + 1; p.path <- m.state0");

  constexpr std::size_t kBatch = 64;
  std::vector<netsim::PacketPtr> batch;
  for (std::size_t i = 0; i < kBatch; ++i) {
    auto p = netsim::make_packet();
    fill(*p, static_cast<std::int64_t>(i % 8 + 1));
    batch.push_back(std::move(p));
  }

  // Warm-up: thread state, interpreter scratch, message entries for
  // every key, sort scratch sized to the batch.
  for (int i = 0; i < 100; ++i) {
    enclave_.process_batch(std::span(batch.data(), batch.size()));
  }

  std::uint64_t news = 0;
  {
    testsupport::AllocGate gate;
    for (int i = 0; i < 1000; ++i) {
      enclave_.process_batch(std::span(batch.data(), batch.size()));
    }
    news = gate.news();
  }
  EXPECT_EQ(news, 0u) << "process_batch allocated in steady state";
}

TEST_F(ZeroAllocTest, PooledDataPlaneSteadyStateIsAllocFree) {
  // End to end: pooled allocation -> submit_burst -> worker batches ->
  // bulk completion rings -> drain -> pooled release. After warm-up,
  // a sustained window of full round-trips must not touch the heap from
  // ANY thread — the counters are process-wide, so a worker that
  // allocates fails the gate too.
  install_with_rule(
      "seq", "fun(p, m, g) -> m.state0 <- m.state0 + 1; p.path <- m.state0");

  netsim::PacketPoolConfig pool_config;
  pool_config.capacity_slots = 8192;
  pool_config.slab_slots = 8192;
  pool_config.magazine_slots = 64;
  netsim::PacketPool pool(pool_config);

  DataPlaneConfig cfg;
  cfg.workers = 2;
  cfg.ring_capacity = 256;
  cfg.max_batch = 32;
  cfg.pool = &pool;
  DataPlane dp(enclave_, cfg);

  constexpr std::size_t kBurst = 32;
  std::vector<netsim::PacketPtr> burst(kBurst);
  std::uint64_t completions = 0;
  const auto sink = [&](netsim::PacketPtr p) {
    ++completions;
    p.reset();
  };

  const auto run_window = [&](int rounds) {
    for (int round = 0; round < rounds; ++round) {
      std::size_t filled = 0;
      while (filled < kBurst) {
        auto p = pool.try_make();
        if (p == nullptr) break;  // generously sized; should not happen
        fill(*p, static_cast<std::int64_t>(filled % 8 + 1));
        burst[filled++] = std::move(p);
      }
      std::size_t sent = 0;
      while (sent < filled) {
        sent += dp.submit_burst(std::span(burst.data(), filled));
        if (sent < filled) dp.drain_completions(sink);
      }
      dp.drain_completions(sink);
    }
    dp.flush(sink);
  };

  // Warm-up builds: pool slab + both threads' structures, worker thread
  // state, all ring/burst scratch, message entries.
  run_window(500);

  const std::uint64_t before = completions;
  std::uint64_t news = 0;
  {
    testsupport::AllocGate gate;
    run_window(1000);
    news = gate.news();
  }
  EXPECT_EQ(news, 0u) << "the pooled datapath allocated in steady state";
  EXPECT_GT(completions, before);
  const auto stats = dp.stats();
  EXPECT_EQ(stats.pool.heap_fallback_total, 0u);
  dp.stop(sink);
}

}  // namespace
}  // namespace eden::hoststack
