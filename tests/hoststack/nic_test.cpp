// NIC queue steering: valid ids rate-limit, -1 bypasses, anything else
// is a counted drop (never a silent rate-limiter bypass), and backlog
// queries are bounds-checked.
#include "hoststack/nic.h"

#include <gtest/gtest.h>

#include "experiments/testbed.h"

namespace eden::hoststack {
namespace {

constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;

class NicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = &bed_.add_host("a");
    b_ = &bed_.add_host("b");
    bed_.connect(*a_, *b_, 10 * kGbps, 1000);
    bed_.routing().install_dest_routes();
    bed_.finalize();
    alice_ = bed_.host_by_name("a");
    bob_ = bed_.host_by_name("b");
    bob_->stack->set_raw_handler(
        [this](netsim::PacketPtr) { ++arrived_; });
  }

  netsim::PacketPtr raw_packet(int queue) {
    auto p = netsim::make_packet();
    p->src = a_->id();
    p->dst = b_->id();
    p->dst_port = 9999;
    p->protocol = netsim::Protocol::storage;
    p->size_bytes = 200;
    p->rl_queue = queue;
    return p;
  }

  experiments::Testbed bed_;
  netsim::HostNode* a_ = nullptr;
  netsim::HostNode* b_ = nullptr;
  experiments::TestHost* alice_ = nullptr;
  experiments::TestHost* bob_ = nullptr;
  int arrived_ = 0;
};

TEST_F(NicTest, ValidQueueRateLimits) {
  Nic& nic = alice_->stack->nic();
  const int q = nic.create_queue(8 * 1000, 200);  // 1 KB/s, one packet
  nic.send(raw_packet(q));
  nic.send(raw_packet(q));  // must wait ~200 ms for tokens
  bed_.run_for(10 * netsim::kMillisecond);
  EXPECT_EQ(arrived_, 1);
  EXPECT_EQ(nic.queue_backlog(q), 1u);
  bed_.run_for(netsim::kSecond);
  EXPECT_EQ(arrived_, 2);
  EXPECT_EQ(nic.bad_queue_drops(), 0u);
}

TEST_F(NicTest, MinusOneBypassesLimiters) {
  Nic& nic = alice_->stack->nic();
  nic.create_queue(8 * 1000, 200);  // present but not selected
  nic.send(raw_packet(-1));
  nic.send(raw_packet(-1));
  bed_.run_for(10 * netsim::kMillisecond);
  EXPECT_EQ(arrived_, 2);
  EXPECT_EQ(nic.bad_queue_drops(), 0u);
}

TEST_F(NicTest, OutOfRangeQueueDropsAndCounts) {
  Nic& nic = alice_->stack->nic();
  const int q = nic.create_queue(8 * 1000 * 1000, 10000);
  nic.send(raw_packet(q + 1));  // past the end
  nic.send(raw_packet(7));      // never created
  nic.send(raw_packet(-2));     // negative but not the bypass value
  bed_.run_for(100 * netsim::kMillisecond);
  EXPECT_EQ(arrived_, 0);  // none reached the wire...
  EXPECT_EQ(nic.bad_queue_drops(), 3u);  // ...and every drop is counted
}

TEST_F(NicTest, NoQueuesMeansOnlyBypassFlows) {
  Nic& nic = alice_->stack->nic();
  ASSERT_EQ(nic.queue_count(), 0);
  nic.send(raw_packet(0));  // queue 0 does not exist yet
  nic.send(raw_packet(-1));
  bed_.run_for(10 * netsim::kMillisecond);
  EXPECT_EQ(arrived_, 1);
  EXPECT_EQ(nic.bad_queue_drops(), 1u);
}

TEST_F(NicTest, BacklogQueryIsBoundsChecked) {
  Nic& nic = alice_->stack->nic();
  EXPECT_EQ(nic.queue_backlog(-1), 0u);
  EXPECT_EQ(nic.queue_backlog(0), 0u);
  EXPECT_EQ(nic.queue_backlog(1000), 0u);
  const int q = nic.create_queue(8 * 1000, 200);
  nic.send(raw_packet(q));
  nic.send(raw_packet(q));
  EXPECT_EQ(nic.queue_backlog(q), 1u);
  EXPECT_EQ(nic.queue_backlog(q + 1), 0u);
}

TEST_F(NicTest, BindMetricsExportsDropCounter) {
  Nic& nic = alice_->stack->nic();
  nic.send(raw_packet(42));  // drop before binding
  telemetry::MetricsRegistry registry;
  nic.bind_metrics(registry);  // folds the pre-bind drop in
  nic.send(raw_packet(42));
  const std::string text = registry.text_exposition();
  EXPECT_NE(text.find("eden_nic_bad_queue_total"), std::string::npos);
  EXPECT_NE(text.find(" 2"), std::string::npos);
  EXPECT_EQ(nic.bad_queue_drops(), 2u);
}

}  // namespace
}  // namespace eden::hoststack
