// TCP behaviour over the simulated network: delivery, congestion
// response, loss recovery and — critically for Figure 10 — sensitivity
// to packet reordering.
#include <gtest/gtest.h>

#include "netsim/network.h"
#include "netsim/routing.h"
#include "transport/tcp.h"

namespace eden::transport {
namespace {

constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;

// Two hosts on a direct link, sender/receiver wired up by hand (no
// Eden host stack: this isolates the transport).
class TcpFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Deep queues: these tests exercise protocol behaviour, not buffer
    // sizing, so the only losses are the ones injected via drop_next_.
    netsim::QueueConfig deep;
    deep.per_queue_bytes = 8 * 1024 * 1024;
    build(1 * kGbps, 10 * netsim::kMicrosecond, deep);
  }

  void build(std::uint64_t rate, netsim::SimTime delay,
             netsim::QueueConfig qc = {}) {
    net_ = std::make_unique<netsim::Network>();
    a_ = &net_->add_host("a");
    b_ = &net_->add_host("b");
    net_->connect(*a_, *b_, rate, delay, qc);

    sender_ = std::make_unique<TcpSender>(net_->scheduler(), TcpConfig{},
                                          /*flow=*/1, a_->id(), b_->id(),
                                          1000, 2000);
    receiver_ = std::make_unique<TcpReceiver>(1, b_->id(), a_->id(), 2000,
                                              1000);
    sender_->set_transmit(
        [this](netsim::PacketPtr p) { a_->transmit(std::move(p)); });
    receiver_->set_transmit(
        [this](netsim::PacketPtr p) { b_->transmit(std::move(p)); });
    a_->set_deliver([this](netsim::PacketPtr p) { sender_->on_ack(*p); });
    b_->set_deliver([this](netsim::PacketPtr p) {
      if (!drop_next_.empty() && drop_next_.front() == rx_count_) {
        drop_next_.pop_front();
        ++rx_count_;
        return;  // simulate loss
      }
      ++rx_count_;
      receiver_->on_data(*p);
    });
  }

  std::unique_ptr<netsim::Network> net_;
  netsim::HostNode* a_ = nullptr;
  netsim::HostNode* b_ = nullptr;
  std::unique_ptr<TcpSender> sender_;
  std::unique_ptr<TcpReceiver> receiver_;
  std::deque<std::uint64_t> drop_next_;  // rx indices to drop
  std::uint64_t rx_count_ = 0;
};

TEST_F(TcpFixture, DeliversAllBytesInOrder) {
  constexpr std::uint64_t kBytes = 1000000;
  receiver_->expect(kBytes);
  bool done = false;
  receiver_->on_complete = [&] { done = true; };
  sender_->start(kBytes);
  net_->scheduler().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(receiver_->delivered_bytes(), kBytes);
  EXPECT_TRUE(sender_->complete());
  EXPECT_EQ(sender_->stats().timeouts, 0u);
  EXPECT_EQ(sender_->stats().fast_retransmits, 0u);
}

TEST_F(TcpFixture, CompletionTimeTracksLinkRate) {
  // 10 MB at 1 Gbps is at least 80 ms of serialization.
  constexpr std::uint64_t kBytes = 10 * 1000 * 1000;
  receiver_->expect(kBytes);
  sender_->start(kBytes);
  net_->scheduler().run();
  EXPECT_TRUE(sender_->complete());
  const double seconds =
      netsim::to_seconds(sender_->stats().completion_time -
                         sender_->stats().first_send_time);
  EXPECT_GT(seconds, 0.080);
  EXPECT_LT(seconds, 0.200);  // and not wildly slower
}

TEST_F(TcpFixture, SlowStartGrowsCwnd) {
  sender_->start(2 * 1000 * 1000);
  net_->scheduler().run_until(20 * netsim::kMillisecond);
  EXPECT_GT(sender_->cwnd_segments(), TcpConfig{}.initial_cwnd_segments);
}

TEST_F(TcpFixture, SingleLossRecoversByFastRetransmit) {
  drop_next_ = {20};  // drop the 21st received packet
  constexpr std::uint64_t kBytes = 1000000;
  receiver_->expect(kBytes);
  sender_->start(kBytes);
  net_->scheduler().run();
  EXPECT_EQ(receiver_->delivered_bytes(), kBytes);
  EXPECT_GE(sender_->stats().fast_retransmits, 1u);
  EXPECT_EQ(sender_->stats().timeouts, 0u);
}

TEST_F(TcpFixture, BurstLossFallsBackToTimeout) {
  // Drop a whole window's worth right at the start: no dupacks arrive,
  // the RTO must fire.
  for (std::uint64_t i = 0; i < 10; ++i) drop_next_.push_back(i);
  constexpr std::uint64_t kBytes = 100000;
  receiver_->expect(kBytes);
  sender_->start(kBytes);
  net_->scheduler().run();
  EXPECT_EQ(receiver_->delivered_bytes(), kBytes);
  EXPECT_GE(sender_->stats().timeouts, 1u);
}

TEST_F(TcpFixture, DupAcksAreCounted) {
  drop_next_ = {5};
  receiver_->expect(500000);
  sender_->start(500000);
  net_->scheduler().run();
  EXPECT_GT(sender_->stats().dup_acks, 0u);
}

TEST_F(TcpFixture, ReceiverBuffersOutOfOrderSegments) {
  // Deliver segments to the receiver out of order by hand.
  netsim::Packet p;
  p.flow_id = 1;
  p.payload_bytes = 100;
  p.seq = 100;  // second segment first
  receiver_->on_data(p);
  EXPECT_EQ(receiver_->delivered_bytes(), 0u);
  EXPECT_EQ(receiver_->ooo_segments(), 1u);
  p.seq = 0;
  receiver_->on_data(p);
  EXPECT_EQ(receiver_->delivered_bytes(), 200u);  // hole filled
}

TEST_F(TcpFixture, DuplicateDataIsIdempotent) {
  netsim::Packet p;
  p.flow_id = 1;
  p.payload_bytes = 100;
  p.seq = 0;
  receiver_->on_data(p);
  receiver_->on_data(p);  // duplicate
  EXPECT_EQ(receiver_->delivered_bytes(), 100u);
}

TEST_F(TcpFixture, StartCanBeCalledRepeatedly) {
  receiver_->expect(200000);
  bool done = false;
  receiver_->on_complete = [&] { done = true; };
  sender_->start(100000);
  net_->scheduler().run_until(5 * netsim::kMillisecond);
  sender_->start(100000);  // stream more data
  net_->scheduler().run();
  EXPECT_TRUE(done);
}

// Reordering sensitivity: the Figure 10 mechanism in isolation. Two
// parallel paths with very different rates and per-packet spraying vs
// a single path of the same aggregate capacity.
TEST(TcpReordering, PerPacketSprayOverUnequalPathsHurtsThroughput) {
  // Large enough to leave slow start far behind on the pinned path.
  constexpr std::uint64_t kBytes = 32 * 1000 * 1000;

  auto run_case = [&](bool sprayed) -> double {
    netsim::Network net;
    auto& h1 = net.add_host("h1");
    auto& h2 = net.add_host("h2");
    auto& s1 = net.add_switch("s1");
    if (sprayed) s1.set_ecmp_mode(netsim::EcmpMode::per_packet_random);
    auto& fast = net.add_switch("fast");
    auto& slow = net.add_switch("slow");
    auto& s2 = net.add_switch("s2");
    netsim::QueueConfig qc;
    qc.per_queue_bytes = 1024 * 1024;
    net.connect(h1, s1, 20 * kGbps, 1000, qc);
    net.connect(s1, fast, 10 * kGbps, 1000, qc);
    net.connect(fast, s2, 10 * kGbps, 1000, qc);
    net.connect(s1, slow, 1 * kGbps, 1000, qc);
    net.connect(slow, s2, 1 * kGbps, 1000, qc);
    net.connect(s2, h2, 20 * kGbps, 1000, qc);
    netsim::Routing routing(net);
    routing.install_dest_routes();
    if (!sprayed) {
      // Pin everything to the fast path by restricting the route.
      s1.install_route(h2.id(), {1});
    }

    TcpSender sender(net.scheduler(), TcpConfig{}, 1, h1.id(), h2.id(), 1,
                     2);
    TcpReceiver receiver(1, h2.id(), h1.id(), 2, 1);
    sender.set_transmit(
        [&](netsim::PacketPtr p) { h1.transmit(std::move(p)); });
    receiver.set_transmit(
        [&](netsim::PacketPtr p) { h2.transmit(std::move(p)); });
    h1.set_deliver([&](netsim::PacketPtr p) { sender.on_ack(*p); });
    h2.set_deliver([&](netsim::PacketPtr p) { receiver.on_data(*p); });
    receiver.expect(kBytes);
    sender.start(kBytes);
    net.scheduler().run_until(4 * netsim::kSecond);
    if (!sender.complete()) return 0.0;
    return static_cast<double>(kBytes) * 8.0 /
           netsim::to_seconds(sender.stats().completion_time -
                              sender.stats().first_send_time) /
           1e6;
  };

  const double pinned_mbps = run_case(false);
  const double sprayed_mbps = run_case(true);
  // Pinned to the 10G path: multi-Gbps. Sprayed 50/50 across 10G+1G:
  // reordering and the slow path drag it far down.
  EXPECT_GT(pinned_mbps, 3000.0);
  EXPECT_LT(sprayed_mbps, pinned_mbps / 2);
  EXPECT_GT(sprayed_mbps, 0.0);
}

}  // namespace
}  // namespace eden::transport
