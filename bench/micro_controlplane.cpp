// Microbenchmarks of the control-plane session layer: the cost of
// driving rule-set updates through the framed session (encode, pipe
// delivery, wire apply, response) per-command versus batched in one
// transaction, and what the RCU snapshot publication costs the data
// path — steady-state reads (epoch hit) and reads right after a
// publish (epoch miss + snapshot refetch).
// The acceptance sweep prices the distributed-tracing column: the
// same batched repoint with span sampling off (untraced commands pay
// one branch per frame) and at the production 1-in-128 rate, gating
// the traced overhead at 5%.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "controlplane/session.h"
#include "core/controller.h"
#include "telemetry/span.h"

namespace {

using namespace eden;

bool g_smoke = false;

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One session wired to one enclave over a clean in-memory pipe, driven
// by a virtual clock with timeouts far beyond any benchmark iteration.
struct Bed {
  core::ClassRegistry registry;
  core::Controller controller{registry};
  core::Enclave enclave{"bench", registry};
  controlplane::PipePump pump;
  controlplane::EnclaveAgent agent{enclave};
  std::uint64_t now_ns = 0;
  std::unique_ptr<controlplane::EnclaveSession> session;

  Bed() {
    controlplane::SessionConfig config;
    config.heartbeat_interval_ns = 1'000'000'000'000;  // out of the way
    config.liveness_timeout_ns = 2'000'000'000'000;
    config.request_timeout_ns = 2'000'000'000'000;
    session = std::make_unique<controlplane::EnclaveSession>(
        "bench",
        [this]() {
          auto [near, far] = controlplane::make_pipe(pump);
          agent.attach(std::move(far));
          return std::move(near);
        },
        [this]() { return now_ns; }, config);
    session->tick();  // dial
    pump.run();       // greet + empty resync
  }

  // Drains every queued frame: requests to the agent, responses back.
  void drain() { pump.run(); }

  lang::CompiledProgram priority_program(const std::string& name, int value) {
    return controller.compile(
        name, "fun(p, m, g) -> p.priority <- " + std::to_string(value), {});
  }
};

// Flip `rules` table rules between two actions, one wire command at a
// time: every remove and every add is its own request and its own
// published snapshot on the enclave.
void BM_ControlPlane_RepointPerCommand(benchmark::State& state) {
  const auto rules = static_cast<std::size_t>(state.range(0));
  Bed bed;
  bed.session->install_action("pa", bed.priority_program("pa", 3), {});
  bed.session->install_action("pb", bed.priority_program("pb", 5), {});
  std::vector<controlplane::EnclaveSession::RuleHandle> handles;
  for (std::size_t i = 0; i < rules; ++i) {
    handles.push_back(
        bed.session->add_rule("t", "c" + std::to_string(i), "pa"));
  }
  bed.drain();

  bool flip = false;
  for (auto _ : state) {
    const std::string target = flip ? "pa" : "pb";
    flip = !flip;
    for (std::size_t i = 0; i < rules; ++i) {
      bed.session->remove_rule("t", handles[i]);
      handles[i] =
          bed.session->add_rule("t", "c" + std::to_string(i), target);
      bed.drain();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rules));
}
BENCHMARK(BM_ControlPlane_RepointPerCommand)->Arg(8)->Arg(64);

// The same repoint batched between begin_txn and commit_txn: the agent
// stages every mutation and the enclave publishes one snapshot.
void BM_ControlPlane_RepointBatchedTxn(benchmark::State& state) {
  const auto rules = static_cast<std::size_t>(state.range(0));
  Bed bed;
  bed.session->install_action("pa", bed.priority_program("pa", 3), {});
  bed.session->install_action("pb", bed.priority_program("pb", 5), {});
  std::vector<controlplane::EnclaveSession::RuleHandle> handles;
  for (std::size_t i = 0; i < rules; ++i) {
    handles.push_back(
        bed.session->add_rule("t", "c" + std::to_string(i), "pa"));
  }
  bed.drain();

  bool flip = false;
  for (auto _ : state) {
    const std::string target = flip ? "pa" : "pb";
    flip = !flip;
    bed.session->begin_txn();
    for (std::size_t i = 0; i < rules; ++i) {
      bed.session->remove_rule("t", handles[i]);
      handles[i] =
          bed.session->add_rule("t", "c" + std::to_string(i), target);
    }
    bed.session->commit_txn();
    bed.drain();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rules));
}
BENCHMARK(BM_ControlPlane_RepointBatchedTxn)->Arg(8)->Arg(64);

// The batched repoint with control-plane tracing sampling 1 txn in
// 128: the production observability configuration. Compare against
// RepointBatchedTxn for the tracing column's cost.
void BM_ControlPlane_RepointBatchedTxnTraced(benchmark::State& state) {
  const auto rules = static_cast<std::size_t>(state.range(0));
  telemetry::SpanCollector::instance().reset();
  telemetry::SpanCollector::instance().enable(128, 1 << 15);
  Bed bed;
  bed.session->install_action("pa", bed.priority_program("pa", 3), {});
  bed.session->install_action("pb", bed.priority_program("pb", 5), {});
  std::vector<controlplane::EnclaveSession::RuleHandle> handles;
  for (std::size_t i = 0; i < rules; ++i) {
    handles.push_back(
        bed.session->add_rule("t", "c" + std::to_string(i), "pa"));
  }
  bed.drain();

  bool flip = false;
  for (auto _ : state) {
    const std::string target = flip ? "pa" : "pb";
    flip = !flip;
    bed.session->begin_txn();
    for (std::size_t i = 0; i < rules; ++i) {
      bed.session->remove_rule("t", handles[i]);
      handles[i] =
          bed.session->add_rule("t", "c" + std::to_string(i), target);
    }
    bed.session->commit_txn();
    bed.drain();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rules));
  telemetry::SpanCollector::instance().disable();
  telemetry::SpanCollector::instance().reset();
}
BENCHMARK(BM_ControlPlane_RepointBatchedTxnTraced)->Arg(8)->Arg(64);

// Steady-state data-path read: the per-packet RCU cost when the rule
// set is quiescent is one acquire load of the publish epoch (the
// snapshot pointer is cached per thread). Directly comparable with the
// BM_Process numbers in micro_enclave.
void BM_ControlPlane_SnapshotReadSteady(benchmark::State& state) {
  core::ClassRegistry registry;
  core::Controller controller(registry);
  core::Enclave enclave("bench", registry);
  const core::ClassId cls = registry.intern("app.b.c");
  enclave.install_action(
      "p7", controller.compile("p7", "fun(p, m, g) -> p.priority <- 7", {}));
  const core::TableId table = enclave.create_table("t");
  enclave.add_rule(table, core::ClassPattern("app.b.c"),
                   *enclave.find_action("p7"));
  netsim::Packet packet;
  packet.size_bytes = 1000;
  packet.classes.add(cls);
  for (auto _ : state) {
    enclave.process(packet);
    benchmark::DoNotOptimize(packet.priority);
  }
}
BENCHMARK(BM_ControlPlane_SnapshotReadSteady);

// Worst-case read: every process() call follows a fresh publish, so the
// per-thread epoch cache misses and the snapshot shared_ptr is
// refetched under the publish mutex. The delta against SnapshotRead-
// Steady prices one refetch plus the publish itself.
void BM_ControlPlane_ProcessAfterPublish(benchmark::State& state) {
  core::ClassRegistry registry;
  core::Controller controller(registry);
  core::Enclave enclave("bench", registry);
  const core::ClassId cls = registry.intern("app.b.c");
  enclave.install_action(
      "p7", controller.compile("p7", "fun(p, m, g) -> p.priority <- 7", {}));
  const core::TableId table = enclave.create_table("t");
  enclave.add_rule(table, core::ClassPattern("app.b.c"),
                   *enclave.find_action("p7"));
  enclave.install_action(
      "p1", controller.compile("p1", "fun(p, m, g) -> p.priority <- 1", {}));
  const core::ActionId spare = *enclave.find_action("p1");
  const core::TableId side = enclave.create_table("side");
  netsim::Packet packet;
  packet.size_bytes = 1000;
  packet.classes.add(cls);
  core::MatchRuleId churn = enclave.add_rule(
      side, core::ClassPattern("app.never.x"), spare);
  for (auto _ : state) {
    enclave.remove_rule(side, churn);
    churn = enclave.add_rule(side, core::ClassPattern("app.never.x"),
                             spare);  // two publishes -> epoch miss
    enclave.process(packet);
    benchmark::DoNotOptimize(packet.priority);
  }
}
BENCHMARK(BM_ControlPlane_ProcessAfterPublish);

// --- Acceptance sweep ----------------------------------------------------
//
// Min-of-reps timing of the 64-rule batched repoint, tracing off vs
// sampling 1-in-128. Both runs execute identical deterministic work,
// so the ratio is stable on a noisy shared runner.

double time_batched_repoint(std::size_t rules, int txns) {
  Bed bed;
  bed.session->install_action("pa", bed.priority_program("pa", 3), {});
  bed.session->install_action("pb", bed.priority_program("pb", 5), {});
  std::vector<controlplane::EnclaveSession::RuleHandle> handles;
  for (std::size_t i = 0; i < rules; ++i) {
    handles.push_back(
        bed.session->add_rule("t", "c" + std::to_string(i), "pa"));
  }
  bed.drain();

  bool flip = false;
  const double t0 = now_ns();
  for (int it = 0; it < txns; ++it) {
    const std::string target = flip ? "pa" : "pb";
    flip = !flip;
    bed.session->begin_txn();
    for (std::size_t i = 0; i < rules; ++i) {
      bed.session->remove_rule("t", handles[i]);
      handles[i] =
          bed.session->add_rule("t", "c" + std::to_string(i), target);
    }
    bed.session->commit_txn();
    bed.drain();
  }
  return (now_ns() - t0) / txns;
}

int run_acceptance_sweep(const std::string& json_path) {
  const int reps = g_smoke ? 3 : 7;
  const int txns = g_smoke ? 40 : 200;
  const std::size_t rules = 64;

  telemetry::SpanCollector::instance().disable();
  telemetry::SpanCollector::instance().reset();
  double off_ns = 0;
  for (int r = 0; r < reps; ++r) {
    const double t = time_batched_repoint(rules, txns);
    if (r == 0 || t < off_ns) off_ns = t;
  }

  telemetry::SpanCollector::instance().enable(128, 1 << 15);
  double on_ns = 0;
  for (int r = 0; r < reps; ++r) {
    const double t = time_batched_repoint(rules, txns);
    if (r == 0 || t < on_ns) on_ns = t;
  }
  telemetry::SpanCollector::instance().disable();
  telemetry::SpanCollector::instance().reset();

  const double overhead = off_ns > 0 ? (on_ns - off_ns) / off_ns : 0;
  std::printf(
      "repoint batched txn (%zu rules): tracing off %.0f ns/txn, "
      "1-in-128 %.0f ns/txn, overhead %.2f%%\n",
      rules, off_ns, on_ns, 100 * overhead);

  std::string json =
      "{\n  \"note\": \"64-rule batched repoint through the framed "
      "session, min-of-" +
      std::to_string(reps) +
      " reps. tracing_off runs with the span collector disabled "
      "(untraced commands pay one branch per frame); tracing_on samples "
      "1 txn in 128, the production rate.\",\n";
  json += "  \"rows\": [\n";
  json += "    {\"rules\": " + std::to_string(rules) +
          ", \"txn_tracing_off_ns\": " + std::to_string(off_ns) +
          ", \"txn_tracing_on_128_ns\": " + std::to_string(on_ns) +
          ", \"tracing_overhead\": " + std::to_string(overhead) + "}\n";
  json += "  ],\n  \"headline\": {\n";
  json += "    \"tracing_overhead_1_in_128\": " + std::to_string(overhead) +
          "\n  }\n}\n";

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());

  if (overhead > 0.05) {
    std::fprintf(stderr,
                 "FAIL: 1-in-128 tracing overhead %.2f%% > 5%%\n",
                 100 * overhead);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_controlplane.json";
  // Strip our own flags before handing argv to google-benchmark.
  for (int i = 1; i < argc;) {
    const std::string arg = argv[i];
    bool consumed = true;
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      g_smoke = true;
    } else {
      consumed = false;
    }
    if (consumed) {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_acceptance_sweep(json_path);
}
