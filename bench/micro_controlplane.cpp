// Microbenchmarks of the control-plane session layer: the cost of
// driving rule-set updates through the framed session (encode, pipe
// delivery, wire apply, response) per-command versus batched in one
// transaction, and what the RCU snapshot publication costs the data
// path — steady-state reads (epoch hit) and reads right after a
// publish (epoch miss + snapshot refetch).
#include <benchmark/benchmark.h>

#include "controlplane/session.h"
#include "core/controller.h"

namespace {

using namespace eden;

// One session wired to one enclave over a clean in-memory pipe, driven
// by a virtual clock with timeouts far beyond any benchmark iteration.
struct Bed {
  core::ClassRegistry registry;
  core::Controller controller{registry};
  core::Enclave enclave{"bench", registry};
  controlplane::PipePump pump;
  controlplane::EnclaveAgent agent{enclave};
  std::uint64_t now_ns = 0;
  std::unique_ptr<controlplane::EnclaveSession> session;

  Bed() {
    controlplane::SessionConfig config;
    config.heartbeat_interval_ns = 1'000'000'000'000;  // out of the way
    config.liveness_timeout_ns = 2'000'000'000'000;
    config.request_timeout_ns = 2'000'000'000'000;
    session = std::make_unique<controlplane::EnclaveSession>(
        "bench",
        [this]() {
          auto [near, far] = controlplane::make_pipe(pump);
          agent.attach(std::move(far));
          return std::move(near);
        },
        [this]() { return now_ns; }, config);
    session->tick();  // dial
    pump.run();       // greet + empty resync
  }

  // Drains every queued frame: requests to the agent, responses back.
  void drain() { pump.run(); }

  lang::CompiledProgram priority_program(const std::string& name, int value) {
    return controller.compile(
        name, "fun(p, m, g) -> p.priority <- " + std::to_string(value), {});
  }
};

// Flip `rules` table rules between two actions, one wire command at a
// time: every remove and every add is its own request and its own
// published snapshot on the enclave.
void BM_ControlPlane_RepointPerCommand(benchmark::State& state) {
  const auto rules = static_cast<std::size_t>(state.range(0));
  Bed bed;
  bed.session->install_action("pa", bed.priority_program("pa", 3), {});
  bed.session->install_action("pb", bed.priority_program("pb", 5), {});
  std::vector<controlplane::EnclaveSession::RuleHandle> handles;
  for (std::size_t i = 0; i < rules; ++i) {
    handles.push_back(
        bed.session->add_rule("t", "c" + std::to_string(i), "pa"));
  }
  bed.drain();

  bool flip = false;
  for (auto _ : state) {
    const std::string target = flip ? "pa" : "pb";
    flip = !flip;
    for (std::size_t i = 0; i < rules; ++i) {
      bed.session->remove_rule("t", handles[i]);
      handles[i] =
          bed.session->add_rule("t", "c" + std::to_string(i), target);
      bed.drain();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rules));
}
BENCHMARK(BM_ControlPlane_RepointPerCommand)->Arg(8)->Arg(64);

// The same repoint batched between begin_txn and commit_txn: the agent
// stages every mutation and the enclave publishes one snapshot.
void BM_ControlPlane_RepointBatchedTxn(benchmark::State& state) {
  const auto rules = static_cast<std::size_t>(state.range(0));
  Bed bed;
  bed.session->install_action("pa", bed.priority_program("pa", 3), {});
  bed.session->install_action("pb", bed.priority_program("pb", 5), {});
  std::vector<controlplane::EnclaveSession::RuleHandle> handles;
  for (std::size_t i = 0; i < rules; ++i) {
    handles.push_back(
        bed.session->add_rule("t", "c" + std::to_string(i), "pa"));
  }
  bed.drain();

  bool flip = false;
  for (auto _ : state) {
    const std::string target = flip ? "pa" : "pb";
    flip = !flip;
    bed.session->begin_txn();
    for (std::size_t i = 0; i < rules; ++i) {
      bed.session->remove_rule("t", handles[i]);
      handles[i] =
          bed.session->add_rule("t", "c" + std::to_string(i), target);
    }
    bed.session->commit_txn();
    bed.drain();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rules));
}
BENCHMARK(BM_ControlPlane_RepointBatchedTxn)->Arg(8)->Arg(64);

// Steady-state data-path read: the per-packet RCU cost when the rule
// set is quiescent is one acquire load of the publish epoch (the
// snapshot pointer is cached per thread). Directly comparable with the
// BM_Process numbers in micro_enclave.
void BM_ControlPlane_SnapshotReadSteady(benchmark::State& state) {
  core::ClassRegistry registry;
  core::Controller controller(registry);
  core::Enclave enclave("bench", registry);
  const core::ClassId cls = registry.intern("app.b.c");
  enclave.install_action(
      "p7", controller.compile("p7", "fun(p, m, g) -> p.priority <- 7", {}));
  const core::TableId table = enclave.create_table("t");
  enclave.add_rule(table, core::ClassPattern("app.b.c"),
                   *enclave.find_action("p7"));
  netsim::Packet packet;
  packet.size_bytes = 1000;
  packet.classes.add(cls);
  for (auto _ : state) {
    enclave.process(packet);
    benchmark::DoNotOptimize(packet.priority);
  }
}
BENCHMARK(BM_ControlPlane_SnapshotReadSteady);

// Worst-case read: every process() call follows a fresh publish, so the
// per-thread epoch cache misses and the snapshot shared_ptr is
// refetched under the publish mutex. The delta against SnapshotRead-
// Steady prices one refetch plus the publish itself.
void BM_ControlPlane_ProcessAfterPublish(benchmark::State& state) {
  core::ClassRegistry registry;
  core::Controller controller(registry);
  core::Enclave enclave("bench", registry);
  const core::ClassId cls = registry.intern("app.b.c");
  enclave.install_action(
      "p7", controller.compile("p7", "fun(p, m, g) -> p.priority <- 7", {}));
  const core::TableId table = enclave.create_table("t");
  enclave.add_rule(table, core::ClassPattern("app.b.c"),
                   *enclave.find_action("p7"));
  enclave.install_action(
      "p1", controller.compile("p1", "fun(p, m, g) -> p.priority <- 1", {}));
  const core::ActionId spare = *enclave.find_action("p1");
  const core::TableId side = enclave.create_table("side");
  netsim::Packet packet;
  packet.size_bytes = 1000;
  packet.classes.add(cls);
  core::MatchRuleId churn = enclave.add_rule(
      side, core::ClassPattern("app.never.x"), spare);
  for (auto _ : state) {
    enclave.remove_rule(side, churn);
    churn = enclave.add_rule(side, core::ClassPattern("app.never.x"),
                             spare);  // two publishes -> epoch miss
    enclave.process(packet);
    benchmark::DoNotOptimize(packet.priority);
  }
}
BENCHMARK(BM_ControlPlane_ProcessAfterPublish);

}  // namespace

BENCHMARK_MAIN();
