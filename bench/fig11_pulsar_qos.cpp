// Regenerates Figure 11: READ vs WRITE tenant throughput against a
// storage server behind a 1 Gbps link — isolated, simultaneous, and
// with Pulsar's rate control charging READs by request size.
//
// Usage: fig11_pulsar_qos [--quick] [--ms=SIM_MS] [--native]
//                         [--no-telemetry] [--telemetry-json=PATH]
#include <cstdio>

#include "bench/bench_args.h"
#include "experiments/fig11_pulsar.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace eden;
  using namespace eden::experiments;

  const bool quick = bench::has_flag(argc, argv, "--quick");
  const bool use_native = bench::has_flag(argc, argv, "--native");
  const long sim_ms = bench::int_arg(argc, argv, "--ms", quick ? 500 : 2000);
  const bool telemetry = !bench::has_flag(argc, argv, "--no-telemetry");
  const std::string telemetry_path = bench::str_arg(
      argc, argv, "--telemetry-json", "TELEMETRY_fig11.json");
  std::vector<std::pair<std::string, std::string>> telemetry_runs;

  std::printf(
      "Figure 11: READ vs WRITE throughput, two tenants issuing 64KB IOs\n"
      "to a storage server behind a 1 Gbps link (%s action function,\n"
      "%ld ms simulated per mode).\n\n",
      use_native ? "native" : "EDEN bytecode", sim_ms);

  util::TextTable table;
  table.add_row({"mode", "READs MB/s", "WRITEs MB/s", "rejected reqs"});

  for (const PulsarMode mode :
       {PulsarMode::isolated, PulsarMode::simultaneous,
        PulsarMode::rate_controlled}) {
    Fig11Config cfg;
    cfg.mode = mode;
    cfg.use_native = use_native;
    cfg.duration = sim_ms * netsim::kMillisecond;
    cfg.telemetry.enabled = telemetry;
    cfg.telemetry.trace_sample_every = 64;
    cfg.telemetry.span_sample_every = static_cast<std::uint32_t>(
        bench::int_arg(argc, argv, "--trace-sample-every", 0));
    const Fig11Result r = run_fig11(cfg);
    table.add_row({to_string(mode), util::fmt(r.read_mbps),
                   util::fmt(r.write_mbps),
                   std::to_string(r.rejected_requests)});
    if (!r.telemetry_json.empty()) {
      telemetry_runs.emplace_back(to_string(mode), r.telemetry_json);
    }
  }

  std::fputs(table.render().c_str(), stdout);
  if (!telemetry_runs.empty() &&
      bench::write_text_file(telemetry_path,
                             bench::combine_telemetry_runs(telemetry_runs))) {
    std::printf("\nWrote enclave telemetry to %s\n", telemetry_path.c_str());
  }
  std::printf(
      "\nPaper shape: isolated throughputs are equal; competing READs\n"
      "starve WRITEs (the paper reports a 72%% drop); charging READ\n"
      "requests by operation size restores equal throughput.\n");
  return 0;
}
