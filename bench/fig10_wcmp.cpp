// Regenerates Figure 10: aggregate TCP throughput under per-packet ECMP
// vs WCMP (10:1 weights) on the Figure 1 asymmetric topology, native vs
// Eden interpreter, plus the message-level WCMP ablation.
//
// Usage: fig10_wcmp [--quick] [--ms=SIM_MS] [--flows=N]
//                   [--no-telemetry] [--telemetry-json=PATH]
#include <cstdio>

#include "bench/bench_args.h"
#include "experiments/fig10_wcmp.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace eden;
  using namespace eden::experiments;

  const bool quick = bench::has_flag(argc, argv, "--quick");
  const long sim_ms = bench::int_arg(argc, argv, "--ms", quick ? 300 : 1000);
  const long flows = bench::int_arg(argc, argv, "--flows", 4);
  const bool telemetry = !bench::has_flag(argc, argv, "--no-telemetry");
  const std::string telemetry_path = bench::str_arg(
      argc, argv, "--telemetry-json", "TELEMETRY_fig10.json");
  std::vector<std::pair<std::string, std::string>> telemetry_runs;

  std::printf(
      "Figure 10: ECMP vs WCMP aggregate throughput, Figure 1 topology\n"
      "(10 Gbps and 1 Gbps paths, min-cut 11 Gbps), per-packet path choice\n"
      "in the sender's enclave, %ld long-running TCP flows, %ld ms.\n\n",
      flows, sim_ms);

  util::TextTable table;
  table.add_row({"scheme", "variant", "Mbps", "fast-rtx", "timeouts",
                 "ooo-segs", "interpreted"});

  struct Case {
    LoadBalanceScheme scheme;
    DataPlaneVariant variant;
    bool message_level;
    long delay_us;  // per-packet enclave latency ablation
  };
  const Case cases[] = {
      {LoadBalanceScheme::ecmp, DataPlaneVariant::native, false, 0},
      {LoadBalanceScheme::ecmp, DataPlaneVariant::eden, false, 0},
      {LoadBalanceScheme::wcmp, DataPlaneVariant::native, false, 0},
      {LoadBalanceScheme::wcmp, DataPlaneVariant::eden, false, 0},
      {LoadBalanceScheme::wcmp, DataPlaneVariant::eden, true, 0},
      // Ablation: a NIC whose interpreter adds 1 us per packet.
      {LoadBalanceScheme::wcmp, DataPlaneVariant::eden, false, 1},
  };

  for (const Case& c : cases) {
    Fig10Config cfg;
    cfg.scheme = c.scheme;
    cfg.variant = c.variant;
    cfg.message_level = c.message_level;
    cfg.enclave_delay = c.delay_us * netsim::kMicrosecond;
    cfg.num_flows = static_cast<int>(flows);
    cfg.duration = sim_ms * netsim::kMillisecond;
    cfg.telemetry.enabled = telemetry;
    cfg.telemetry.trace_sample_every = 64;
    cfg.telemetry.span_sample_every = static_cast<std::uint32_t>(
        bench::int_arg(argc, argv, "--trace-sample-every", 0));
    const Fig10Result r = run_fig10(cfg);
    const std::string label = to_string(c.scheme) +
                              (c.message_level ? " (msg-level)" : "") +
                              (c.delay_us > 0 ? " (+1us/pkt)" : "");
    if (!r.telemetry_json.empty()) {
      telemetry_runs.emplace_back(label + "/" + to_string(c.variant),
                                  r.telemetry_json);
    }
    table.add_row({label, to_string(c.variant),
                   util::fmt(r.throughput_mbps, 0),
                   std::to_string(r.fast_retransmits),
                   std::to_string(r.timeouts),
                   std::to_string(r.ooo_segments),
                   std::to_string(r.interpreted_packets)});
  }

  std::fputs(table.render().c_str(), stdout);
  if (!telemetry_runs.empty() &&
      bench::write_text_file(telemetry_path,
                             bench::combine_telemetry_runs(telemetry_runs))) {
    std::printf("\nWrote enclave telemetry to %s\n", telemetry_path.c_str());
  }
  std::printf(
      "\nPaper shape: ECMP ~2 Gbps (slow path dominates), WCMP ~3x better\n"
      "but below the 11 Gbps min-cut due to in-network reordering; native\n"
      "vs EDEN differences negligible. Message-level WCMP (ablation)\n"
      "avoids reordering within a message.\n");
  return 0;
}
