// Tiny argument helpers shared by the figure harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace eden::bench {

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

inline long int_arg(int argc, char** argv, const char* name,
                    long default_value) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtol(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return default_value;
}

inline std::string str_arg(int argc, char** argv, const char* name,
                           const char* default_value) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return default_value;
}

inline bool write_text_file(const std::string& path,
                            const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return written == content.size();
}

// Wraps per-run telemetry dumps (each already a JSON object) into one
// document: {"runs":[{"label":...,"telemetry":{...}}]}.
inline std::string combine_telemetry_runs(
    const std::vector<std::pair<std::string, std::string>>& runs) {
  std::string out = "{\"runs\":[";
  bool first = true;
  for (const auto& [label, json] : runs) {
    if (json.empty()) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"label\":\"" + label + "\",\"telemetry\":" + json + "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace eden::bench
