// Tiny argument helpers shared by the figure harnesses.
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>

namespace eden::bench {

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

inline long int_arg(int argc, char** argv, const char* name,
                    long default_value) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtol(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return default_value;
}

}  // namespace eden::bench
