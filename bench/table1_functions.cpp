// Regenerates Table 1 of the paper: the network-function taxonomy.
//
// Unlike the paper's static table, every row marked "impl" is backed by
// an actual action function in src/functions — this harness compiles
// each one and prints its derived concurrency mode alongside the
// taxonomy, which is the point of the table: these functions need
// data-plane state, computation and application semantics, and Eden
// supports them out of the box.
#include <cstdio>

#include "functions/registry.h"
#include "util/table.h"

int main() {
  using namespace eden;

  std::printf(
      "Table 1: network functions, their data-plane requirements and\n"
      "whether Eden supports them out of the box.\n\n");

  util::TextTable table;
  table.add_row({"Function", "Example", "state", "compute", "app-sem",
                 "net-support", "Eden", "impl", "concurrency"});

  // Implemented functions: compile the EAL source to prove the row.
  for (const auto& fn : functions::all_functions()) {
    const functions::Table1Info info = fn->table1();
    const lang::CompiledProgram program = fn->compile();
    table.add_row({info.category, info.example,
                   info.data_plane_state ? "Y" : "-",
                   info.data_plane_compute ? "Y" : "-",
                   info.app_semantics ? "Y" : "-",
                   info.network_support ? "Y" : "-",
                   info.eden_out_of_box ? "Y" : "-", "yes",
                   std::string(lang::concurrency_mode_name(
                       program.concurrency))});
  }
  for (const auto& row : functions::table1_rows()) {
    if (row.implemented) continue;  // already printed above
    table.add_row({row.category, row.example, row.data_plane_state ? "Y" : "-",
                   row.data_plane_compute ? "Y" : "-",
                   row.app_semantics ? "Y" : "-",
                   row.network_support ? "Y" : "-",
                   row.eden_out_of_box ? "Y" : "-", "-", "-"});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\n%zu functions implemented as EAL action functions + native twins.\n",
      functions::all_functions().size());
  return 0;
}
