// Regenerates Figure 12: CPU overhead of the Eden components relative
// to an emulated vanilla stack (API metadata passing, enclave
// match-action machinery, interpreter execution), plus the Section 5.4
// interpreter footprint numbers.
//
// Usage: fig12_overheads [--quick] [--pias] [--no-telemetry]
//                        [--telemetry-hist] [--telemetry-json=PATH]
#include <cstdio>

#include "bench/bench_args.h"
#include "experiments/fig12_overheads.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace eden;
  using namespace eden::experiments;

  Fig12Config cfg;
  cfg.use_pias = bench::has_flag(argc, argv, "--pias");
  if (bench::has_flag(argc, argv, "--quick")) {
    cfg.packets = 50000;
    cfg.warmup_packets = 5000;
  }
  // Counters and trace only by default: latency histograms would add
  // their (sampled) instrumentation cost to the very layers this figure
  // measures. Opt in with --telemetry-hist to see that cost.
  cfg.telemetry.enabled = !bench::has_flag(argc, argv, "--no-telemetry");
  cfg.telemetry.histograms = bench::has_flag(argc, argv, "--telemetry-hist");
  cfg.telemetry.trace_sample_every = 64;
  cfg.telemetry.span_sample_every = static_cast<std::uint32_t>(
      bench::int_arg(argc, argv, "--trace-sample-every", 0));
  const std::string telemetry_path = bench::str_arg(
      argc, argv, "--telemetry-json", "TELEMETRY_fig12.json");

  std::printf(
      "Figure 12: per-packet CPU cost of Eden components while running\n"
      "the %s policy (wall-clock on this machine; the vanilla baseline\n"
      "emulates a software TCP send path: 2x payload copy + checksum).\n\n",
      cfg.use_pias ? "PIAS" : "SFF");

  const Fig12Result r = run_fig12(cfg);

  util::TextTable table;
  table.add_row({"layer", "avg ns/pkt", "p95 ns/pkt", "overhead avg",
                 "overhead p95"});
  table.add_row({"vanilla stack", util::fmt(r.vanilla.avg_ns),
                 util::fmt(r.vanilla.p95_ns), "-", "-"});
  table.add_row({"+ API (metadata)", util::fmt(r.api.avg_ns),
                 util::fmt(r.api.p95_ns),
                 util::fmt(100 * r.api_overhead_avg) + "%",
                 util::fmt(100 * r.api_overhead_p95) + "%"});
  table.add_row({"+ enclave (match/state)", util::fmt(r.enclave.avg_ns),
                 util::fmt(r.enclave.p95_ns),
                 util::fmt(100 * r.enclave_overhead_avg) + "%",
                 util::fmt(100 * r.enclave_overhead_p95) + "%"});
  table.add_row({"+ interpreter", util::fmt(r.interpreter.avg_ns),
                 util::fmt(r.interpreter.p95_ns),
                 util::fmt(100 * r.interpreter_overhead_avg) + "%",
                 util::fmt(100 * r.interpreter_overhead_p95) + "%"});
  std::fputs(table.render().c_str(), stdout);

  if (!r.telemetry_json.empty() &&
      bench::write_text_file(telemetry_path, r.telemetry_json + "\n")) {
    std::printf("\nWrote enclave telemetry to %s%s\n", telemetry_path.c_str(),
                cfg.telemetry.histograms
                    ? " (histograms on: enclave/interpreter rows include"
                      " sampled instrumentation cost)"
                    : "");
  }

  std::printf(
      "\nSection 5.4 footprint of the action function:\n"
      "  operand stack: %llu bytes (paper: ~64B)\n"
      "  locals/heap:   %llu bytes (paper: ~256B)\n"
      "  bytecode:      %llu instructions\n"
      "\nPaper shape: API < enclave < interpreter; all overheads modest\n"
      "and with no measurable impact on application metrics (Figure 9).\n",
      static_cast<unsigned long long>(r.operand_stack_bytes),
      static_cast<unsigned long long>(r.locals_bytes),
      static_cast<unsigned long long>(r.bytecode_instructions));
  return 0;
}
