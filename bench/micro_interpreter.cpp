// Microbenchmarks of the EAL toolchain: interpreter dispatch, the
// paper's action functions interpreted vs their native twins, the
// tail-call-optimization ablation, compile and serialize costs.
//
// Besides the google-benchmark suite, main() runs a fixed-format sweep
// of every Table-1 function at -O0, -O1 and native and writes the
// results to BENCH_interpreter.json (override with --json=PATH), so the
// optimizer's speedup is tracked as a build artifact. The sweep also
// runs each function through a full enclave three times — telemetry
// off, telemetry on (sampled histograms + trace), and lifecycle span
// tracing at 1-in-128 — to track both instruments' overhead, and dumps
// the telemetry-enabled enclaves' aggregated snapshot to
// TELEMETRY_interpreter.json (override with --telemetry-json=PATH).
// --smoke shrinks every loop for CI.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/enclave.h"
#include "core/enclave_schema.h"
#include "functions/registry.h"
#include "functions/scheduling.h"
#include "functions/wcmp.h"
#include "lang/compiler.h"
#include "lang/interpreter.h"
#include "lang/optimizer.h"
#include "telemetry/snapshot.h"
#include "telemetry/span.h"

namespace {

using namespace eden;

struct ProgramFixture {
  lang::StateSchema schema;
  lang::CompiledProgram program;
  lang::StateBlock packet, message, global;
  lang::Interpreter interp;

  ProgramFixture(const functions::NetworkFunction& fn, bool tco = true,
                 lang::OptLevel level = lang::OptLevel::O0)
      : schema(core::make_enclave_schema(fn.global_fields())) {
    lang::CompileOptions options;
    options.tail_call_optimization = tco;
    options.opt_level = level;
    program = lang::compile_source(fn.source(), schema, options, fn.name());
    packet = lang::StateBlock::from_schema(schema, lang::Scope::packet);
    message = lang::StateBlock::from_schema(schema, lang::Scope::message);
    global = lang::StateBlock::from_schema(schema, lang::Scope::global);
  }
};

void BM_Interpret_ArithmeticLoop(benchmark::State& state) {
  // Pure dispatch cost: a counted loop of arithmetic, no state access.
  // The benchmark argument is the optimization level.
  lang::StateSchema schema;
  lang::CompileOptions options;
  options.opt_level = state.range(0) == 0 ? lang::OptLevel::O0
                                          : lang::OptLevel::O1;
  const auto program = lang::compile_source(R"(fun(p) ->
      let i = 0 in
      let acc = 0 in
      (while i < 100 do acc <- acc + i * 3 - 1; i <- i + 1 done; acc))",
                                            schema, options);
  lang::Interpreter interp;
  for (auto _ : state) {
    auto r = interp.execute(program, nullptr, nullptr, nullptr);
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(state.iterations() * 100);  // loop iterations
}
BENCHMARK(BM_Interpret_ArithmeticLoop)->Arg(0)->Arg(1);

void BM_Pias_Interpreted(benchmark::State& state) {
  functions::PiasFunction pias;
  ProgramFixture fx(pias, /*tco=*/true,
                    state.range(0) == 0 ? lang::OptLevel::O0
                                        : lang::OptLevel::O1);
  fx.global.arrays[0].stride = 2;
  fx.global.arrays[0].data = {10240, 7, 1048576, 5};
  fx.packet.scalars[core::PacketSlot::size] = 1514;
  fx.message.scalars[core::MessageSlot::priority] = 1;
  for (auto _ : state) {
    fx.message.scalars[core::MessageSlot::size] = 0;
    auto r = fx.interp.execute(fx.program, &fx.packet, &fx.message,
                               &fx.global);
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_Pias_Interpreted)->Arg(0)->Arg(1);

void BM_Pias_Interpreted_NoTCO(benchmark::State& state) {
  functions::PiasFunction pias;
  ProgramFixture fx(pias, /*tco=*/false);
  fx.global.arrays[0].stride = 2;
  fx.global.arrays[0].data = {10240, 7, 1048576, 5};
  fx.packet.scalars[core::PacketSlot::size] = 1514;
  fx.message.scalars[core::MessageSlot::priority] = 1;
  // Large message so the threshold search recurses deeper.
  for (auto _ : state) {
    fx.message.scalars[core::MessageSlot::size] = 500000;
    auto r = fx.interp.execute(fx.program, &fx.packet, &fx.message,
                               &fx.global);
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_Pias_Interpreted_NoTCO);

void BM_Pias_NativeTwin(benchmark::State& state) {
  functions::PiasFunction pias;
  ProgramFixture fx(pias);
  fx.global.arrays[0].stride = 2;
  fx.global.arrays[0].data = {10240, 7, 1048576, 5};
  fx.packet.scalars[core::PacketSlot::size] = 1514;
  fx.message.scalars[core::MessageSlot::priority] = 1;
  auto native = pias.native();
  util::Rng rng(7);
  core::NativeCtx ctx{rng, 0};
  for (auto _ : state) {
    fx.message.scalars[core::MessageSlot::size] = 0;
    auto status = native(fx.packet, &fx.message, &fx.global, ctx);
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_Pias_NativeTwin);

void BM_Wcmp_Interpreted(benchmark::State& state) {
  functions::WcmpFunction wcmp;
  ProgramFixture fx(wcmp, /*tco=*/true,
                    state.range(0) == 0 ? lang::OptLevel::O0
                                        : lang::OptLevel::O1);
  fx.global.arrays[0].stride = 3;
  fx.global.arrays[0].data = {2, 11, 909, 2, 12, 91};  // dst,label,weight
  fx.packet.scalars[core::PacketSlot::dst] = 2;
  for (auto _ : state) {
    auto r = fx.interp.execute(fx.program, &fx.packet, &fx.message,
                               &fx.global);
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_Wcmp_Interpreted)->Arg(0)->Arg(1);

void BM_Compile_Pias(benchmark::State& state) {
  functions::PiasFunction pias;
  const auto schema = core::make_enclave_schema(pias.global_fields());
  for (auto _ : state) {
    auto program = lang::compile_source(pias.source(), schema);
    benchmark::DoNotOptimize(program.code.size());
  }
}
BENCHMARK(BM_Compile_Pias);

void BM_Optimize_Pias(benchmark::State& state) {
  functions::PiasFunction pias;
  const auto schema = core::make_enclave_schema(pias.global_fields());
  const auto program = lang::compile_source(pias.source(), schema);
  for (auto _ : state) {
    auto optimized = lang::optimize(program, lang::OptLevel::O1);
    benchmark::DoNotOptimize(optimized.code.size());
  }
}
BENCHMARK(BM_Optimize_Pias);

void BM_Serialize_RoundTrip(benchmark::State& state) {
  functions::PiasFunction pias;
  const auto schema = core::make_enclave_schema(pias.global_fields());
  const auto program = lang::compile_source(pias.source(), schema);
  for (auto _ : state) {
    auto copy = lang::CompiledProgram::deserialize(program.serialize());
    benchmark::DoNotOptimize(copy.code.size());
  }
}
BENCHMARK(BM_Serialize_RoundTrip);

// --- Table-1 sweep: -O0 vs -O1 vs native, emitted as JSON ---------------

struct SweepState {
  lang::StateBlock packet, message, global;
};

// Plausible inputs shared by every function (mirrors the differential
// test sweep): a full-size packet, a mid-flight message and three
// records of global table content.
SweepState make_inputs(const lang::StateSchema& schema) {
  SweepState s;
  s.packet = lang::StateBlock::from_schema(schema, lang::Scope::packet);
  s.message = lang::StateBlock::from_schema(schema, lang::Scope::message);
  s.global = lang::StateBlock::from_schema(schema, lang::Scope::global);
  util::Rng vary(4242);
  s.packet.scalars[core::PacketSlot::size] = 1460;
  s.packet.scalars[core::PacketSlot::dst] = vary.range(0, 3);
  s.packet.scalars[core::PacketSlot::dst_port] = vary.range(1000, 1005);
  s.packet.scalars[core::PacketSlot::tenant] = vary.range(0, 2);
  s.packet.scalars[core::PacketSlot::msg_type] = vary.range(1, 2);
  s.packet.scalars[core::PacketSlot::msg_size] = vary.range(0, 100000);
  s.packet.scalars[core::PacketSlot::flow_size] = vary.range(0, 3000000);
  s.packet.scalars[core::PacketSlot::app_priority] = vary.range(0, 2);
  s.packet.scalars[core::PacketSlot::key_hash] = vary.range(0, 1 << 20);
  s.message.scalars[core::MessageSlot::size] = vary.range(0, 100000);
  s.message.scalars[core::MessageSlot::priority] = vary.range(0, 2);
  for (auto& arr : s.global.arrays) {
    for (int r = 0; r < 3 * arr.stride; ++r) {
      arr.data.push_back(vary.range(1, 1000));
    }
  }
  for (auto& scalar : s.global.scalars) scalar = vary.range(0, 2);
  return s;
}

// Loop sizes for the sweep; --smoke shrinks them for CI smoke runs.
int g_sweep_warmup = 5000;
int g_sweep_batch = 50000;
int g_sweep_repeats = 3;

// Best-of-N batches of a packet-processing loop, ns per packet.
// State evolves across iterations (identically for every variant of the
// same function, since the programs are semantically equal).
template <typename RunFn>
double time_ns_per_run(RunFn&& run) {
  const int kWarmup = g_sweep_warmup;
  const int kBatch = g_sweep_batch;
  const int kRepeats = g_sweep_repeats;
  for (int i = 0; i < kWarmup; ++i) run();
  double best = 1e30;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kBatch; ++i) run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        kBatch;
    if (ns < best) best = ns;
  }
  return best;
}

// A simulator packet whose marshalled packet-scope state matches the
// sweep inputs above, so the enclave path executes the functions on the
// same data as the bare-interpreter path.
netsim::Packet make_sweep_packet(const SweepState& s) {
  netsim::Packet p;
  const auto& sc = s.packet.scalars;
  p.size_bytes = static_cast<std::uint32_t>(sc[core::PacketSlot::size]);
  p.dst = static_cast<std::uint32_t>(sc[core::PacketSlot::dst]);
  p.dst_port = static_cast<std::uint16_t>(sc[core::PacketSlot::dst_port]);
  p.meta.msg_id = 1;  // stable key: message state persists across runs
  p.meta.msg_type = sc[core::PacketSlot::msg_type];
  p.meta.msg_size = sc[core::PacketSlot::msg_size];
  p.meta.tenant = sc[core::PacketSlot::tenant];
  p.meta.key_hash = sc[core::PacketSlot::key_hash];
  p.meta.flow_size = sc[core::PacketSlot::flow_size];
  p.meta.app_priority = sc[core::PacketSlot::app_priority];
  return p;
}

// Installs `fn` as bytecode behind a match-any rule and loads the sweep
// global state, returning the action id.
core::ActionId install_for_sweep(core::Enclave& enclave,
                                 const functions::NetworkFunction& fn,
                                 const lang::StateSchema& schema,
                                 const SweepState& s) {
  const core::ActionId action = fn.install(enclave, /*use_native=*/false);
  for (const lang::FieldDef& field : fn.global_fields()) {
    const auto slot = schema.find(lang::Scope::global, field.name);
    if (!slot) continue;
    if (slot->kind == lang::FieldKind::scalar) {
      enclave.set_global_scalar(action, field.name,
                                s.global.scalars[slot->slot]);
    } else {
      enclave.set_global_array(action, field.name,
                               s.global.arrays[slot->slot].data);
    }
  }
  const core::TableId table = enclave.create_table("sweep");
  enclave.add_rule(table, core::ClassPattern("*"), action);
  return action;
}

int run_table1_sweep(const std::string& json_path,
                     const std::string& telemetry_path) {
  struct Row {
    std::string name;
    double o0_ns = 0, o1_ns = 0, native_ns = 0;
    double enclave_o1_ns = 0, enclave_tele_ns = 0, enclave_span_ns = 0;
    std::string status = "ok";
  };
  std::vector<Row> rows;
  std::vector<telemetry::EnclaveTelemetry> telemetry_snapshots;

  for (const auto& fn : functions::all_functions()) {
    Row row;
    row.name = fn->name();
    const lang::StateSchema schema =
        core::make_enclave_schema(fn->global_fields());
    const auto o0 = lang::compile_source(fn->source(), schema, {},
                                         fn->name());
    auto o1 = lang::optimize(o0, lang::OptLevel::O1);
    lang::verify_program(o1, schema, lang::ExecLimits{});
    o1.preverified = true;  // the enclave install path the data plane uses

    // Each variant mutates its own copy of identical initial state.
    SweepState s0 = make_inputs(schema);
    SweepState s1 = s0, sn = s0;

    lang::Interpreter i0(lang::ExecLimits{}, 7), i1(lang::ExecLimits{}, 7);
    const auto first =
        i0.execute(o0, &s0.packet, &s0.message, &s0.global).status;
    if (first != lang::ExecStatus::ok) {
      row.status = lang::exec_status_name(first);
      rows.push_back(row);
      continue;
    }

    row.o0_ns = time_ns_per_run([&] {
      auto r = i0.execute(o0, &s0.packet, &s0.message, &s0.global);
      benchmark::DoNotOptimize(r.status);
    });
    row.o1_ns = time_ns_per_run([&] {
      auto r = i1.execute(o1, &s1.packet, &s1.message, &s1.global);
      benchmark::DoNotOptimize(r.status);
    });
    auto native = fn->native();
    util::Rng rng(7);
    core::NativeCtx ctx{rng, 0};
    row.native_ns = time_ns_per_run([&] {
      auto status = native(sn.packet, &sn.message, &sn.global, ctx);
      benchmark::DoNotOptimize(status);
    });

    // Full enclave path (classify -> match -> marshal -> interpret at
    // the install-time -O1), telemetry off vs on. The delta is the
    // Table-1 acceptance number for the instrumentation cost. The two
    // variants' timed batches are interleaved so clock-frequency drift
    // and scheduler noise hit both sides equally; each keeps its best.
    core::ClassRegistry registry;
    core::EnclaveConfig ec_plain;
    core::EnclaveConfig ec_tele;
    ec_tele.telemetry.enabled = true;
    ec_tele.telemetry.trace_sample_every = 64;
    // Third variant: counters/histograms off, lifecycle span tracing on
    // at the production 1-in-128 rate — isolates the span cost from the
    // PR 2 instruments. Acceptance target: <5% geomean overhead.
    core::EnclaveConfig ec_span;
    ec_span.telemetry.span_sample_every = 128;
    core::Enclave plain(std::string("sweep.") + fn->name() + ".plain",
                        registry, ec_plain);
    core::Enclave tele(std::string("sweep.") + fn->name() + ".tele",
                       registry, ec_tele);
    core::Enclave span(std::string("sweep.") + fn->name() + ".span",
                       registry, ec_span);
    install_for_sweep(plain, *fn, schema, make_inputs(schema));
    install_for_sweep(tele, *fn, schema, make_inputs(schema));
    install_for_sweep(span, *fn, schema, make_inputs(schema));
    netsim::Packet pkt_plain = make_sweep_packet(make_inputs(schema));
    netsim::Packet pkt_tele = pkt_plain;
    netsim::Packet pkt_span = pkt_plain;
    row.enclave_o1_ns = 1e30;
    row.enclave_tele_ns = 1e30;
    row.enclave_span_ns = 1e30;
    for (int round = 0; round < 5; ++round) {
      const double ns_plain = time_ns_per_run([&] {
        pkt_plain.drop_mark = false;
        benchmark::DoNotOptimize(plain.process(pkt_plain));
      });
      if (ns_plain < row.enclave_o1_ns) row.enclave_o1_ns = ns_plain;
      const double ns_tele = time_ns_per_run([&] {
        pkt_tele.drop_mark = false;
        benchmark::DoNotOptimize(tele.process(pkt_tele));
      });
      if (ns_tele < row.enclave_tele_ns) row.enclave_tele_ns = ns_tele;
      const double ns_span = time_ns_per_run([&] {
        // Clear the stamp so sampling keeps running — a persistent
        // packet would stay traced forever after the first 1-in-128
        // hit and overstate the cost.
        pkt_span.meta.trace_id = 0;
        pkt_span.drop_mark = false;
        benchmark::DoNotOptimize(span.process(pkt_span));
      });
      if (ns_span < row.enclave_span_ns) row.enclave_span_ns = ns_span;
    }
    telemetry_snapshots.push_back(tele.telemetry_snapshot());
    rows.push_back(row);
  }

  double log_sum = 0;
  int measured = 0;
  double tele_log_sum = 0;
  int tele_measured = 0;
  double span_log_sum = 0;
  int span_measured = 0;
  for (const Row& r : rows) {
    if (r.status == "ok" && r.o1_ns > 0) {
      log_sum += std::log(r.o0_ns / r.o1_ns);
      ++measured;
    }
    if (r.status == "ok" && r.enclave_o1_ns > 0 && r.enclave_tele_ns > 0) {
      tele_log_sum += std::log(r.enclave_tele_ns / r.enclave_o1_ns);
      ++tele_measured;
    }
    if (r.status == "ok" && r.enclave_o1_ns > 0 && r.enclave_span_ns > 0) {
      span_log_sum += std::log(r.enclave_span_ns / r.enclave_o1_ns);
      ++span_measured;
    }
  }
  const double geomean =
      measured > 0 ? std::exp(log_sum / measured) : 0.0;
  // Geomean ratio of enclave ns/packet with telemetry on vs off, minus
  // one: 0.03 = 3% instrumentation overhead. Acceptance target: <5%.
  const double geomean_tele_overhead =
      tele_measured > 0 ? std::exp(tele_log_sum / tele_measured) - 1.0 : 0.0;
  // Same ratio for span tracing at 1-in-128 vs off. Same <5% target.
  const double geomean_span_overhead =
      span_measured > 0 ? std::exp(span_log_sum / span_measured) - 1.0 : 0.0;

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"table1_interpreter\",\n");
  // Must mirror the EDEN_THREADED gate in src/lang/interpreter.cpp.
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(EDEN_NO_COMPUTED_GOTO)
  std::fprintf(out, "  \"dispatch\": \"threaded\",\n");
#else
  std::fprintf(out, "  \"dispatch\": \"switch\",\n");
#endif
  std::fprintf(out, "  \"functions\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"status\": \"%s\", "
                 "\"o0_ns\": %.1f, \"o1_ns\": %.1f, \"native_ns\": %.1f, "
                 "\"speedup_o1\": %.3f, \"interp_penalty_o1\": %.2f, "
                 "\"enclave_o1_ns\": %.1f, \"enclave_tele_ns\": %.1f, "
                 "\"tele_overhead\": %.4f, \"enclave_span_ns\": %.1f, "
                 "\"span_overhead\": %.4f}%s\n",
                 r.name.c_str(), r.status.c_str(), r.o0_ns, r.o1_ns,
                 r.native_ns, r.o1_ns > 0 ? r.o0_ns / r.o1_ns : 0.0,
                 r.native_ns > 0 ? r.o1_ns / r.native_ns : 0.0,
                 r.enclave_o1_ns, r.enclave_tele_ns,
                 r.enclave_o1_ns > 0
                     ? r.enclave_tele_ns / r.enclave_o1_ns - 1.0
                     : 0.0,
                 r.enclave_span_ns,
                 r.enclave_o1_ns > 0
                     ? r.enclave_span_ns / r.enclave_o1_ns - 1.0
                     : 0.0,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"geomean_speedup_o1\": %.3f,\n"
               "  \"geomean_telemetry_overhead\": %.4f,\n"
               "  \"geomean_span_overhead\": %.4f\n}\n",
               geomean, geomean_tele_overhead, geomean_span_overhead);
  std::fclose(out);

  if (!telemetry_snapshots.empty()) {
    const std::string dump =
        telemetry::to_json(
            telemetry::aggregate(std::move(telemetry_snapshots))) +
        "\n";
    std::FILE* tf = std::fopen(telemetry_path.c_str(), "w");
    if (tf != nullptr) {
      std::fwrite(dump.data(), 1, dump.size(), tf);
      std::fclose(tf);
    }
  }

  std::printf("\nTable-1 sweep (%d functions measured): "
              "geomean -O1 speedup %.2fx, telemetry overhead %+.1f%%,\n"
              "span tracing (1-in-128) overhead %+.1f%%,\n"
              "written to %s (telemetry dump: %s)\n",
              measured, geomean, 100.0 * geomean_tele_overhead,
              100.0 * geomean_span_overhead, json_path.c_str(),
              telemetry_path.c_str());
  for (const Row& r : rows) {
    std::printf("  %-16s %-12s o0 %7.1f ns  o1 %7.1f ns  native %6.1f ns"
                "  speedup %.2fx  enclave %7.1f ns  +tele %7.1f ns"
                "  +span %7.1f ns\n",
                r.name.c_str(), r.status.c_str(), r.o0_ns, r.o1_ns,
                r.native_ns, r.o1_ns > 0 ? r.o0_ns / r.o1_ns : 0.0,
                r.enclave_o1_ns, r.enclave_tele_ns, r.enclave_span_ns);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_interpreter.json";
  std::string telemetry_path = "TELEMETRY_interpreter.json";
  // Strip our own flags before handing argv to google-benchmark.
  for (int i = 1; i < argc;) {
    const std::string arg = argv[i];
    bool consumed = true;
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--telemetry-json=", 0) == 0) {
      telemetry_path = arg.substr(17);
    } else if (arg == "--smoke") {
      g_sweep_warmup = 50;
      g_sweep_batch = 500;
      g_sweep_repeats = 1;
    } else {
      consumed = false;
    }
    if (consumed) {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_table1_sweep(json_path, telemetry_path);
}
