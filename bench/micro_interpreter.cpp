// Microbenchmarks of the EAL toolchain: interpreter dispatch, the
// paper's action functions interpreted vs their native twins, the
// tail-call-optimization ablation, compile and serialize costs.
#include <benchmark/benchmark.h>

#include "core/enclave_schema.h"
#include "functions/scheduling.h"
#include "functions/wcmp.h"
#include "lang/compiler.h"
#include "lang/interpreter.h"

namespace {

using namespace eden;

struct ProgramFixture {
  lang::StateSchema schema;
  lang::CompiledProgram program;
  lang::StateBlock packet, message, global;
  lang::Interpreter interp;

  ProgramFixture(const functions::NetworkFunction& fn,
                 bool tco = true)
      : schema(core::make_enclave_schema(fn.global_fields())) {
    lang::CompileOptions options;
    options.tail_call_optimization = tco;
    program = lang::compile_source(fn.source(), schema, options, fn.name());
    packet = lang::StateBlock::from_schema(schema, lang::Scope::packet);
    message = lang::StateBlock::from_schema(schema, lang::Scope::message);
    global = lang::StateBlock::from_schema(schema, lang::Scope::global);
  }
};

void BM_Interpret_ArithmeticLoop(benchmark::State& state) {
  // Pure dispatch cost: a counted loop of arithmetic, no state access.
  lang::StateSchema schema;
  const auto program = lang::compile_source(R"(fun(p) ->
      let i = 0 in
      let acc = 0 in
      (while i < 100 do acc <- acc + i * 3 - 1; i <- i + 1 done; acc))",
                                            schema);
  lang::Interpreter interp;
  for (auto _ : state) {
    auto r = interp.execute(program, nullptr, nullptr, nullptr);
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(state.iterations() * 100);  // loop iterations
}
BENCHMARK(BM_Interpret_ArithmeticLoop);

void BM_Pias_Interpreted(benchmark::State& state) {
  functions::PiasFunction pias;
  ProgramFixture fx(pias);
  fx.global.arrays[0].stride = 2;
  fx.global.arrays[0].data = {10240, 7, 1048576, 5};
  fx.packet.scalars[core::PacketSlot::size] = 1514;
  fx.message.scalars[core::MessageSlot::priority] = 1;
  for (auto _ : state) {
    fx.message.scalars[core::MessageSlot::size] = 0;
    auto r = fx.interp.execute(fx.program, &fx.packet, &fx.message,
                               &fx.global);
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_Pias_Interpreted);

void BM_Pias_Interpreted_NoTCO(benchmark::State& state) {
  functions::PiasFunction pias;
  ProgramFixture fx(pias, /*tco=*/false);
  fx.global.arrays[0].stride = 2;
  fx.global.arrays[0].data = {10240, 7, 1048576, 5};
  fx.packet.scalars[core::PacketSlot::size] = 1514;
  fx.message.scalars[core::MessageSlot::priority] = 1;
  // Large message so the threshold search recurses deeper.
  for (auto _ : state) {
    fx.message.scalars[core::MessageSlot::size] = 500000;
    auto r = fx.interp.execute(fx.program, &fx.packet, &fx.message,
                               &fx.global);
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_Pias_Interpreted_NoTCO);

void BM_Pias_NativeTwin(benchmark::State& state) {
  functions::PiasFunction pias;
  ProgramFixture fx(pias);
  fx.global.arrays[0].stride = 2;
  fx.global.arrays[0].data = {10240, 7, 1048576, 5};
  fx.packet.scalars[core::PacketSlot::size] = 1514;
  fx.message.scalars[core::MessageSlot::priority] = 1;
  auto native = pias.native();
  util::Rng rng(7);
  core::NativeCtx ctx{rng, 0};
  for (auto _ : state) {
    fx.message.scalars[core::MessageSlot::size] = 0;
    auto status = native(fx.packet, &fx.message, &fx.global, ctx);
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_Pias_NativeTwin);

void BM_Wcmp_Interpreted(benchmark::State& state) {
  functions::WcmpFunction wcmp;
  ProgramFixture fx(wcmp);
  fx.global.arrays[0].stride = 3;
  fx.global.arrays[0].data = {2, 11, 909, 2, 12, 91};  // dst,label,weight
  fx.packet.scalars[core::PacketSlot::dst] = 2;
  for (auto _ : state) {
    auto r = fx.interp.execute(fx.program, &fx.packet, &fx.message,
                               &fx.global);
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_Wcmp_Interpreted);

void BM_Compile_Pias(benchmark::State& state) {
  functions::PiasFunction pias;
  const auto schema = core::make_enclave_schema(pias.global_fields());
  for (auto _ : state) {
    auto program = lang::compile_source(pias.source(), schema);
    benchmark::DoNotOptimize(program.code.size());
  }
}
BENCHMARK(BM_Compile_Pias);

void BM_Serialize_RoundTrip(benchmark::State& state) {
  functions::PiasFunction pias;
  const auto schema = core::make_enclave_schema(pias.global_fields());
  const auto program = lang::compile_source(pias.source(), schema);
  for (auto _ : state) {
    auto copy = lang::CompiledProgram::deserialize(program.serialize());
    benchmark::DoNotOptimize(copy.code.size());
  }
}
BENCHMARK(BM_Serialize_RoundTrip);

}  // namespace

BENCHMARK_MAIN();
