// Regenerates Figure 9: average and 95th-percentile flow completion
// times for small and intermediate flows under baseline / PIAS / SFF,
// each native and through the Eden interpreter.
//
// Usage: fig9_flow_scheduling [--quick] [--reps=N] [--ms=SIM_MS]
//                              [--no-telemetry] [--telemetry-json=PATH]
//                              [--trace-sample-every=N] [--trace-json=PATH]
#include <cstdio>

#include "bench/bench_args.h"
#include "experiments/fig9_scheduling.h"
#include "telemetry/span.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace eden;
  using namespace eden::experiments;

  const bool quick = bench::has_flag(argc, argv, "--quick");
  const long reps = bench::int_arg(argc, argv, "--reps", quick ? 1 : 3);
  const long sim_ms = bench::int_arg(argc, argv, "--ms", quick ? 300 : 1000);
  const long load_pct = bench::int_arg(argc, argv, "--load", 70);
  const bool mining = bench::has_flag(argc, argv, "--mining");
  const bool telemetry = !bench::has_flag(argc, argv, "--no-telemetry");
  const std::string telemetry_path = bench::str_arg(
      argc, argv, "--telemetry-json", "TELEMETRY_fig9.json");
  // Lifecycle span tracing: 1-in-N message sampling (0 = off), exported
  // as Chrome trace_event JSON after the sweep.
  const long trace_every =
      bench::int_arg(argc, argv, "--trace-sample-every", 0);
  const std::string trace_path =
      bench::str_arg(argc, argv, "--trace-json", "TRACE_fig9.json");
  std::vector<std::pair<std::string, std::string>> telemetry_runs;

  struct Case {
    SchedulingScheme scheme;
    SchedulingVariant variant;
  };
  const Case cases[] = {
      {SchedulingScheme::baseline, SchedulingVariant::native},
      {SchedulingScheme::baseline, SchedulingVariant::eden_ignore_output},
      {SchedulingScheme::pias, SchedulingVariant::native},
      {SchedulingScheme::pias, SchedulingVariant::eden},
      {SchedulingScheme::sff, SchedulingVariant::native},
      {SchedulingScheme::sff, SchedulingVariant::eden},
  };

  std::printf(
      "Figure 9: flow completion times (us), request-response workload\n"
      "(%s distribution) at %ld%% load with background traffic, 3 priority\n"
      "classes. %ld repetition(s) x %ld ms simulated per scheme.\n\n",
      mining ? "data-mining" : "web-search", load_pct, reps, sim_ms);

  util::TextTable table;
  table.add_row({"scheme", "variant", "small avg", "+-95%", "small p95",
                 "mid avg", "+-95%", "mid p95", "bg Mbps", "flows"});

  for (const Case& c : cases) {
    util::Summary small_avg, small_p95, mid_avg, mid_p95, bg;
    std::uint64_t flows = 0;
    for (long rep = 0; rep < reps; ++rep) {
      Fig9Config cfg;
      cfg.scheme = c.scheme;
      cfg.variant = c.variant;
      cfg.load = static_cast<double>(load_pct) / 100.0;
      cfg.workload = mining ? WorkloadKind::data_mining
                            : WorkloadKind::web_search;
      cfg.duration = sim_ms * netsim::kMillisecond;
      cfg.rng_seed = 1 + static_cast<std::uint64_t>(rep);
      // Snapshot the last repetition of each case.
      cfg.telemetry.enabled = telemetry && rep == reps - 1;
      cfg.telemetry.trace_sample_every = 64;
      cfg.telemetry.span_sample_every = static_cast<std::uint32_t>(trace_every);
      const Fig9Result r = run_fig9(cfg);
      if (!r.telemetry_json.empty()) {
        telemetry_runs.emplace_back(
            to_string(c.scheme) + std::string("/") + to_string(c.variant),
            r.telemetry_json);
      }
      small_avg.add(r.small_fct_us.mean());
      small_p95.add(r.small_fct_us.p95());
      mid_avg.add(r.intermediate_fct_us.mean());
      mid_p95.add(r.intermediate_fct_us.p95());
      bg.add(r.background_mbps);
      flows += r.completed_flows;
    }
    table.add_row({to_string(c.scheme), to_string(c.variant),
                   util::fmt(small_avg.mean()), util::fmt(small_avg.ci95()),
                   util::fmt(small_p95.mean()), util::fmt(mid_avg.mean()),
                   util::fmt(mid_avg.ci95()), util::fmt(mid_p95.mean()),
                   util::fmt(bg.mean(), 0), std::to_string(flows)});
  }

  std::fputs(table.render().c_str(), stdout);
  if (!telemetry_runs.empty() &&
      bench::write_text_file(telemetry_path,
                             bench::combine_telemetry_runs(telemetry_runs))) {
    std::printf("\nWrote enclave telemetry to %s\n", telemetry_path.c_str());
  }
  if (trace_every > 0) {
    const std::string trace_json = telemetry::to_trace_event_json(
        telemetry::SpanCollector::instance().snapshot());
    if (bench::write_text_file(trace_path, trace_json)) {
      std::printf("Wrote lifecycle trace (Perfetto trace_event JSON) to %s\n",
                  trace_path.c_str());
    }
  }
  std::printf(
      "\nPaper shape: prioritization cuts small-flow FCT 25-40%%; SFF <=\n"
      "PIAS; native vs EDEN differences not significant; background\n"
      "traffic still saturates the residual capacity.\n");
  return 0;
}
