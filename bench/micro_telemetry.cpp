// Microbenchmarks of the fleet telemetry pipeline and the
// BENCH_telemetry.json acceptance sweep.
//
// The BM_TelemetryCollect ladder prices one collector poll cycle over
// 1/16/256/1024 in-memory agents, full-snapshot fetches versus
// steady-state delta polls, and the cross-enclave merge serially
// versus the pairwise tree. The sweep after the benchmarks measures
// the two gates:
//
//  * delta steady-state payload bytes <= 10% of the full snapshot, and
//  * 1024-agent tree collect >= 4x the serial collect on 4 threads.
//
// "Serial" is the pre-collector discipline (Controller::
// collect_telemetry): every snapshot merges into one accumulated
// aggregate, one session at a time, so snapshot i pays for the i
// enclaves already funneled through the accumulator. The tree
// aggregates 4 contiguous chunks independently and folds the 4
// partials pairwise. On the shared 1-core CI builder 4 threads
// timeslice instead of running concurrently, so — same normalization
// as the PR5/PR6 data-plane sweeps — the tree's cost is reported as
// its critical path: the largest contention-free chunk time plus the
// fold, which equals wall clock when each worker has its own core.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/collector.h"
#include "telemetry/delta.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"

namespace {

using namespace eden;
using telemetry::AggregateTelemetry;
using telemetry::EnclaveTelemetry;

bool g_smoke = false;

// A realistic per-agent snapshot: a handful of actions with latency
// histograms, named classes and host gauges — the shape the Table-1
// testbed exports, so payload byte counts mean something.
EnclaveTelemetry fleet_snapshot(std::size_t agent) {
  EnclaveTelemetry e;
  e.enclave = "agent" + std::to_string(agent);
  e.telemetry_enabled = true;
  e.packets = 100'000 + agent * 17;
  e.matched = 90'000 + agent * 13;
  e.dropped_by_action = 500 + agent;
  e.trace_sampled = 1000;
  e.trace_sample_every = 16;
  for (int a = 0; a < 6; ++a) {
    telemetry::ActionTelemetry act;
    act.name = "action" + std::to_string(a);
    act.executions = 10'000 * (a + 1) + agent;
    act.steps = act.executions * 40;
    act.has_histograms = true;
    telemetry::Histogram h;
    for (std::uint64_t v = 1; v < 2000; v += 7) h.record(v * (a + 1));
    act.latency_ns = h.snapshot();
    act.steps_hist = h.snapshot();
    // Bytecode profile rows — full snapshots carry them, deltas never do.
    act.has_profile = true;
    act.profile_runs = act.executions;
    act.profile_instructions = act.steps;
    for (std::uint32_t pc = 0; pc < 8; ++pc) {
      telemetry::HotSpot hot;
      hot.pc = pc;
      hot.count = 1000 - pc * 90;
      hot.ticks = hot.count * 3;
      hot.count_pct = 12.5;
      hot.ticks_pct = 12.5;
      hot.text = "load_field p.priority ; jz +4";
      act.hotspots.push_back(std::move(hot));
    }
    e.actions.push_back(std::move(act));
  }
  for (int c = 0; c < 4; ++c) {
    telemetry::ClassTelemetry cls;
    cls.name = "enclave.flows.class" + std::to_string(c);
    cls.matched = 5'000 * (c + 1) + agent;
    e.classes.push_back(std::move(cls));
  }
  e.host_series.emplace_back("dataplane_ring_depth",
                             static_cast<double>(agent % 128));
  e.host_series.emplace_back("dataplane_backpressure_total", 12.0);
  e.host_series.emplace_back("pool_exhausted_total", 0.0);
  // A sampled trace ring — like profiles, fulls-only wire freight.
  for (int t = 0; t < 16; ++t) {
    telemetry::TraceEntry entry;
    entry.ts_ns = 1'000'000 + t * 1000;
    entry.class_name = "enclave.flows.class" + std::to_string(t % 4);
    entry.action = "action" + std::to_string(t % 6);
    entry.status = "ok";
    entry.steps = 40;
    e.trace.push_back(std::move(entry));
  }
  return e;
}

// A steady-state tick: a couple of counters and one gauge move, the
// bulk of the series stay put — what a quiet poll interval looks like.
void advance_snapshot(EnclaveTelemetry& e, std::uint64_t step) {
  e.packets += 40 + step % 9;
  e.matched += 35 + step % 7;
  e.actions[0].executions += 35;
  e.actions[0].steps += 35 * 40;
  e.host_series[0].second = static_cast<double>((step * 31) % 128);
}

// Agent-side half of the delta protocol, the same cursor discipline as
// core::wire::TelemetryCursor over a hand-held snapshot.
struct FakeAgent {
  EnclaveTelemetry state;
  EnclaveTelemetry prev;
  std::uint64_t epoch = 0, seq = 0;
  std::uint64_t next_epoch = 1;
  bool primed = false;

  std::string poll(std::uint64_t epoch_in, std::uint64_t seq_in) {
    telemetry::DeltaPayload p;
    if (primed && epoch_in == epoch && seq_in == seq) {
      if (auto d = telemetry::delta_between(prev, state)) {
        ++seq;
        p.full = false;
        p.epoch = epoch;
        p.seq = seq;
        if (!telemetry::delta_is_empty(*d)) p.enclaves.push_back(*std::move(d));
        prev = state;
        return telemetry::encode_delta_payload(p);
      }
    }
    epoch = next_epoch++;
    seq = 1;
    primed = true;
    p.full = true;
    p.epoch = epoch;
    p.seq = seq;
    p.enclaves.push_back(state);
    prev = state;
    return telemetry::encode_delta_payload(p);
  }
};

struct Fleet {
  std::vector<std::unique_ptr<FakeAgent>> agents;
  std::uint64_t step = 0;

  explicit Fleet(std::size_t n) {
    agents.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto a = std::make_unique<FakeAgent>();
      a->state = fleet_snapshot(i);
      a->next_epoch = 100 + i;
      agents.push_back(std::move(a));
    }
  }

  void tick() {
    ++step;
    for (auto& a : agents) advance_snapshot(a->state, step);
  }

  std::vector<telemetry::CollectorSource> sources(bool delta) {
    std::vector<telemetry::CollectorSource> out;
    for (auto& owned : agents) {
      FakeAgent* a = owned.get();
      telemetry::CollectorSource s;
      s.name = a->state.enclave;
      if (delta) {
        s.fetch_delta = [a](std::uint64_t e, std::uint64_t q) {
          return a->poll(e, q);
        };
      } else {
        s.fetch_full = [a]() {
          return telemetry::to_json(telemetry::aggregate({a->state}));
        };
      }
      out.push_back(std::move(s));
    }
    return out;
  }
};

// One collector poll cycle per iteration: fetch every agent, decode,
// refresh rings, tree-merge. The full/delta pair prices the payload
// decode; items/s is agents polled per second.
void collect_bench(benchmark::State& state, bool delta) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fleet fleet(n);
  std::uint64_t now_ns = 0;
  telemetry::TelemetryCollector collector({}, [&]() { return now_ns; });
  for (auto& s : fleet.sources(delta)) collector.add_source(std::move(s));
  now_ns += 1'000'000'000;
  collector.poll();  // priming resync outside the timed loop
  for (auto _ : state) {
    state.PauseTiming();
    fleet.tick();
    now_ns += 1'000'000'000;
    state.ResumeTiming();
    benchmark::DoNotOptimize(collector.poll().packets);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_TelemetryCollect_Full(benchmark::State& state) {
  collect_bench(state, /*delta=*/false);
}
BENCHMARK(BM_TelemetryCollect_Full)->Arg(1)->Arg(16)->Arg(256)->Arg(1024);

void BM_TelemetryCollect_Delta(benchmark::State& state) {
  collect_bench(state, /*delta=*/true);
}
BENCHMARK(BM_TelemetryCollect_Delta)->Arg(1)->Arg(16)->Arg(256)->Arg(1024);

std::vector<EnclaveTelemetry> fleet_snapshots(std::size_t n) {
  std::vector<EnclaveTelemetry> snaps;
  snaps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) snaps.push_back(fleet_snapshot(i));
  return snaps;
}

// The serial funnel: every snapshot merges into the one accumulated
// aggregate (Controller::collect_telemetry's discipline).
AggregateTelemetry serial_collect(const std::vector<EnclaveTelemetry>& all) {
  AggregateTelemetry acc;
  for (const EnclaveTelemetry& e : all) {
    acc = telemetry::merge_aggregates(std::move(acc), telemetry::aggregate({e}));
  }
  return acc;
}

void BM_TelemetryMerge_Serial(benchmark::State& state) {
  const auto snaps = fleet_snapshots(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(serial_collect(snaps).packets);
  }
}
BENCHMARK(BM_TelemetryMerge_Serial)->Arg(16)->Arg(256)->Arg(1024);

void BM_TelemetryMerge_Tree(benchmark::State& state) {
  const auto snaps = fleet_snapshots(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(telemetry::aggregate_tree(snaps, 4).packets);
  }
}
BENCHMARK(BM_TelemetryMerge_Tree)->Arg(16)->Arg(256)->Arg(1024);

// --- Acceptance sweep ---------------------------------------------------

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

template <typename Fn>
double time_best_of(int reps, Fn&& fn) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_ns();
    fn();
    const double t = now_ns() - t0;
    if (r == 0 || t < best) best = t;
  }
  return best;
}

struct SweepRow {
  std::size_t agents = 0;
  double full_bytes = 0;         // full-snapshot payload per agent
  double delta_bytes = 0;        // steady-state delta payload per agent
  double delta_ratio = 0;
  double serial_ns = 0;          // serial funnel over all agents
  double chunk_max_ns = 0;       // largest contention-free chunk
  double fold_ns = 0;            // pairwise fold of the 4 partials
  double tree_cpu_ns = 0;        // critical path = chunk_max + fold
  double tree_speedup = 0;
};

SweepRow run_sweep_row(std::size_t n, int reps) {
  SweepRow row;
  row.agents = n;

  // Payload bytes, measured on the agent-side cursor: one full resync,
  // then steady-state deltas with the usual couple of moving counters.
  FakeAgent agent;
  agent.state = fleet_snapshot(0);
  const std::string full = agent.poll(0, 0);
  row.full_bytes = static_cast<double>(full.size());
  double delta_total = 0;
  const int delta_polls = 16;
  for (int i = 0; i < delta_polls; ++i) {
    advance_snapshot(agent.state, static_cast<std::uint64_t>(i) + 1);
    delta_total +=
        static_cast<double>(agent.poll(agent.epoch, agent.seq).size());
  }
  row.delta_bytes = delta_total / delta_polls;
  row.delta_ratio = row.delta_bytes / row.full_bytes;

  const std::vector<EnclaveTelemetry> all = fleet_snapshots(n);
  row.serial_ns = time_best_of(reps, [&]() {
    benchmark::DoNotOptimize(serial_collect(all).packets);
  });

  // Tree critical path, cpu-normalized: chunks timed one at a time so
  // each runs contention-free (= per-core wall clock), then the fold.
  const std::size_t chunks = 4;
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<AggregateTelemetry> partials;
  row.chunk_max_ns = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = std::min(c * per, all.size());
    const std::size_t hi = std::min(lo + per, all.size());
    std::vector<EnclaveTelemetry> chunk(all.begin() + lo, all.begin() + hi);
    const double t = time_best_of(reps, [&]() {
      benchmark::DoNotOptimize(telemetry::aggregate(chunk).packets);
    });
    row.chunk_max_ns = std::max(row.chunk_max_ns, t);
    partials.push_back(telemetry::aggregate(std::move(chunk)));
  }
  // The fold consumes its inputs (the collector moves its partials into
  // the pairwise merge), so rebuild the copy outside the timed window.
  for (int r = 0; r < reps; ++r) {
    std::vector<AggregateTelemetry> fold = partials;
    const double t0 = now_ns();
    for (std::size_t stride = 1; stride < fold.size(); stride *= 2) {
      for (std::size_t i = 0; i + stride < fold.size(); i += 2 * stride) {
        fold[i] = telemetry::merge_aggregates(std::move(fold[i]),
                                              std::move(fold[i + stride]));
      }
    }
    benchmark::DoNotOptimize(fold[0].packets);
    const double t = now_ns() - t0;
    if (r == 0 || t < row.fold_ns) row.fold_ns = t;
  }
  row.tree_cpu_ns = row.chunk_max_ns + row.fold_ns;
  row.tree_speedup = row.tree_cpu_ns > 0 ? row.serial_ns / row.tree_cpu_ns : 0;
  return row;
}

int run_acceptance_sweep(const std::string& json_path) {
  const int reps = g_smoke ? 3 : 7;
  std::vector<SweepRow> rows;
  for (const std::size_t n : {std::size_t{1}, std::size_t{16},
                              std::size_t{256}, std::size_t{1024}}) {
    rows.push_back(run_sweep_row(n, reps));
    const SweepRow& r = rows.back();
    std::printf(
        "agents=%-5zu full=%.0fB delta=%.0fB (%.1f%%)  serial=%.0fns  "
        "tree(4t,cpu)=%.0fns (chunk max %.0f + fold %.0f)  speedup=%.2fx\n",
        r.agents, r.full_bytes, r.delta_bytes, 100 * r.delta_ratio,
        r.serial_ns, r.tree_cpu_ns, r.chunk_max_ns, r.fold_ns,
        r.tree_speedup);
  }

  std::string json =
      "{\n  \"note\": \"serial_collect_ns merges every snapshot into one "
      "accumulated aggregate, one agent at a time (the pre-collector "
      "discipline). tree_collect_cpu_ns is the 4-thread tree's critical "
      "path — largest contention-free chunk + pairwise fold — which equals "
      "wall clock when each worker has its own core (PR5/PR6 "
      "cpu-normalization). Payload bytes are per agent per poll.\",\n";
  json += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    json += "    {\"agents\": " + std::to_string(r.agents) +
            ", \"full_bytes\": " + std::to_string(r.full_bytes) +
            ", \"delta_steady_bytes\": " + std::to_string(r.delta_bytes) +
            ", \"delta_ratio\": " + std::to_string(r.delta_ratio) +
            ", \"serial_collect_ns\": " + std::to_string(r.serial_ns) +
            ", \"tree_chunk_max_ns\": " + std::to_string(r.chunk_max_ns) +
            ", \"tree_fold_ns\": " + std::to_string(r.fold_ns) +
            ", \"tree_collect_cpu_ns\": " + std::to_string(r.tree_cpu_ns) +
            ", \"tree_speedup_4t\": " + std::to_string(r.tree_speedup) + "}";
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  const SweepRow& top = rows.back();
  json += "  ],\n  \"headline\": {\n";
  json += "    \"delta_steady_ratio\": " + std::to_string(top.delta_ratio) +
          ",\n";
  json += "    \"tree_speedup_1024_agents_4t\": " +
          std::to_string(top.tree_speedup) + "\n  }\n}\n";

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());

  // The acceptance bars. Bytes are deterministic; the speedup compares
  // two timings of the same build, so the ratio is stable even on a
  // noisy shared runner.
  int rc = 0;
  if (top.delta_ratio > 0.10) {
    std::fprintf(stderr,
                 "FAIL: delta steady-state payload %.1f%% of full > 10%%\n",
                 100 * top.delta_ratio);
    rc = 1;
  }
  if (top.tree_speedup < 4.0) {
    std::fprintf(stderr,
                 "FAIL: 1024-agent tree collect %.2fx serial < 4x "
                 "(4 threads, cpu-normalized)\n",
                 top.tree_speedup);
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_telemetry.json";
  // Strip our own flags before handing argv to google-benchmark.
  for (int i = 1; i < argc;) {
    const std::string arg = argv[i];
    bool consumed = true;
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      g_smoke = true;
    } else {
      consumed = false;
    }
    if (consumed) {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_acceptance_sweep(json_path);
}
