// Microbenchmarks of the enclave data path: full process() cost under
// each concurrency mode, match-table scaling, message-state behaviour
// and the enclave's own five-tuple classification.
#include <benchmark/benchmark.h>

#include "core/enclave.h"
#include "functions/misc.h"
#include "functions/scheduling.h"
#include "telemetry/span.h"

namespace {

using namespace eden;

netsim::Packet make_test_packet(core::ClassId cls) {
  netsim::Packet p;
  p.src = 1;
  p.dst = 2;
  p.src_port = 10000;
  p.dst_port = 8000;
  p.protocol = netsim::Protocol::tcp;
  p.size_bytes = 1514;
  p.payload_bytes = 1460;
  p.meta.msg_id = 77;
  p.meta.flow_size = 64 * 1024;
  p.classes.add(cls);
  return p;
}

void setup_thresholds(core::Enclave& enclave, core::ActionId action) {
  const std::int64_t limits[] = {10240, 1048576};
  const std::int64_t prios[] = {7, 5};
  functions::push_priority_thresholds(enclave, action, limits, prios);
}

// Full data-path cost per concurrency mode. SFF writes only packet
// state (parallel); PIAS writes message state (per_message); the
// counter writes global state (serialized).
template <typename Fn>
void bench_mode(benchmark::State& state) {
  core::ClassRegistry registry;
  core::Enclave enclave("bench", registry);
  const core::ClassId cls = registry.intern("app.rs.cls");
  Fn fn;
  const core::ActionId action = fn.install(enclave, false);
  if constexpr (std::is_same_v<Fn, functions::SffFunction> ||
                std::is_same_v<Fn, functions::PiasFunction>) {
    setup_thresholds(enclave, action);
  }
  const core::TableId table = enclave.create_table("t");
  enclave.add_rule(table, core::ClassPattern("app.rs.cls"), action);
  netsim::Packet packet = make_test_packet(cls);
  for (auto _ : state) {
    enclave.process(packet);
    benchmark::DoNotOptimize(packet.priority);
  }
}

void BM_Process_Parallel_Sff(benchmark::State& state) {
  bench_mode<functions::SffFunction>(state);
}
BENCHMARK(BM_Process_Parallel_Sff);

void BM_Process_PerMessage_Pias(benchmark::State& state) {
  bench_mode<functions::PiasFunction>(state);
}
BENCHMARK(BM_Process_PerMessage_Pias);

void BM_Process_Serialized_Counter(benchmark::State& state) {
  bench_mode<functions::CounterFunction>(state);
}
BENCHMARK(BM_Process_Serialized_Counter);

// Rule-scan scaling: the matching rule sits behind N-1 non-matching
// ones in the same table.
void BM_Process_TableScan(benchmark::State& state) {
  const int rules = static_cast<int>(state.range(0));
  core::ClassRegistry registry;
  core::Enclave enclave("bench", registry);
  const core::ClassId cls = registry.intern("app.rs.cls");
  functions::SffFunction sff;
  const core::ActionId action = sff.install(enclave, false);
  setup_thresholds(enclave, action);
  const core::TableId table = enclave.create_table("t");
  for (int i = 0; i + 1 < rules; ++i) {
    enclave.add_rule(table,
                     core::ClassPattern("other.rs.c" + std::to_string(i)),
                     action);
  }
  enclave.add_rule(table, core::ClassPattern("app.rs.cls"), action);
  netsim::Packet packet = make_test_packet(cls);
  for (auto _ : state) {
    enclave.process(packet);
    benchmark::DoNotOptimize(packet.priority);
  }
}
BENCHMARK(BM_Process_TableScan)->Arg(1)->Arg(8)->Arg(64);

// Message-state locality: same message every packet (cache hit) vs a
// new message per packet (entry creation + eventual eviction).
void BM_MessageState_Hit(benchmark::State& state) {
  core::ClassRegistry registry;
  core::Enclave enclave("bench", registry);
  const core::ClassId cls = registry.intern("app.rs.cls");
  functions::PiasFunction pias;
  const core::ActionId action = pias.install(enclave, false);
  setup_thresholds(enclave, action);
  const core::TableId table = enclave.create_table("t");
  enclave.add_rule(table, core::ClassPattern("app.rs.cls"), action);
  netsim::Packet packet = make_test_packet(cls);
  for (auto _ : state) {
    enclave.process(packet);
  }
}
BENCHMARK(BM_MessageState_Hit);

void BM_MessageState_Miss(benchmark::State& state) {
  core::ClassRegistry registry;
  core::Enclave enclave("bench", registry);
  const core::ClassId cls = registry.intern("app.rs.cls");
  functions::PiasFunction pias;
  const core::ActionId action = pias.install(enclave, false);
  setup_thresholds(enclave, action);
  const core::TableId table = enclave.create_table("t");
  enclave.add_rule(table, core::ClassPattern("app.rs.cls"), action);
  netsim::Packet packet = make_test_packet(cls);
  std::int64_t next_msg = 1;
  for (auto _ : state) {
    packet.meta.msg_id = next_msg++;
    enclave.process(packet);
  }
}
BENCHMARK(BM_MessageState_Miss);

// Batched execution (Section 6): amortizes message lookup, locking and
// the state copy across the batch. Items processed = packets.
void BM_ProcessBatch(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  core::ClassRegistry registry;
  core::Enclave enclave("bench", registry);
  const core::ClassId cls = registry.intern("app.rs.cls");
  functions::PiasFunction pias;
  const core::ActionId action = pias.install(enclave, false);
  setup_thresholds(enclave, action);
  const core::TableId table = enclave.create_table("t");
  enclave.add_rule(table, core::ClassPattern("app.rs.cls"), action);

  std::vector<netsim::PacketPtr> batch;
  for (std::size_t i = 0; i < batch_size; ++i) {
    batch.push_back(netsim::make_packet());
    *batch.back() = make_test_packet(cls);
  }
  for (auto _ : state) {
    enclave.process_batch(batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_ProcessBatch)->Arg(1)->Arg(8)->Arg(32);

// The enclave's own stage: five-tuple classification of unmarked
// traffic (Table 2, last row).
void BM_FlowClassification(benchmark::State& state) {
  core::ClassRegistry registry;
  core::Enclave enclave("bench", registry);
  const core::ClassId cls = registry.intern("enclave.flows.tcp");
  core::FlowClassifierRule rule;
  rule.proto = static_cast<std::int64_t>(netsim::Protocol::tcp);
  rule.class_id = cls;
  enclave.add_flow_rule(rule);
  functions::SffFunction sff;
  const core::ActionId action = sff.install(enclave, false);
  setup_thresholds(enclave, action);
  const core::TableId table = enclave.create_table("t");
  enclave.add_rule(table, core::ClassPattern("enclave.flows.*"), action);
  for (auto _ : state) {
    netsim::Packet packet = make_test_packet(cls);
    packet.classes.clear();
    packet.meta.msg_id = 0;
    enclave.process(packet);
    benchmark::DoNotOptimize(packet.priority);
  }
}
BENCHMARK(BM_FlowClassification);

// Telemetry cost ladder over the same SFF data path. The argument picks
// the configuration: 0 = telemetry off, 1 = per-class counters only,
// 2 = counters + sampled latency/steps histograms, 3 = 2 + trace ring.
// Adjacent rungs isolate what each instrument adds per packet.
void BM_Process_Telemetry(benchmark::State& state) {
  core::ClassRegistry registry;
  core::EnclaveConfig config;
  const int rung = static_cast<int>(state.range(0));
  config.telemetry.enabled = rung >= 1;
  config.telemetry.histograms = rung >= 2;
  config.telemetry.trace_sample_every = rung == 3 ? 64 : 0;
  if (rung == 4) config.telemetry.histogram_sample_every = 1024;
  if (rung == 5) config.telemetry.histogram_sample_every = 1;
  core::Enclave enclave("bench", registry, config);
  const core::ClassId cls = registry.intern("app.rs.cls");
  functions::SffFunction sff;
  const core::ActionId action = sff.install(enclave, false);
  setup_thresholds(enclave, action);
  const core::TableId table = enclave.create_table("t");
  enclave.add_rule(table, core::ClassPattern("app.rs.cls"), action);
  netsim::Packet packet = make_test_packet(cls);
  for (auto _ : state) {
    enclave.process(packet);
    benchmark::DoNotOptimize(packet.priority);
  }
}
BENCHMARK(BM_Process_Telemetry)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Arg(5);

// Lifecycle span tracing cost on the same SFF data path. The argument
// is the sampling rate: 0 = tracing off (the single untraced-packet
// branch), 128 = production 1-in-128 sampling, 1 = every packet traced
// (worst case: one ring write per hop). The packet's trace id is
// cleared every iteration so sampling actually runs instead of reusing
// the first stamp.
void BM_Process_SpanTracing(benchmark::State& state) {
  const auto sample_every = static_cast<std::uint32_t>(state.range(0));
  core::ClassRegistry registry;
  core::EnclaveConfig config;
  config.telemetry.span_sample_every = sample_every;
  telemetry::SpanCollector::instance().reset();
  if (sample_every == 0) telemetry::SpanCollector::instance().disable();
  core::Enclave enclave("bench", registry, config);
  const core::ClassId cls = registry.intern("app.rs.cls");
  functions::SffFunction sff;
  const core::ActionId action = sff.install(enclave, false);
  setup_thresholds(enclave, action);
  const core::TableId table = enclave.create_table("t");
  enclave.add_rule(table, core::ClassPattern("app.rs.cls"), action);
  netsim::Packet packet = make_test_packet(cls);
  for (auto _ : state) {
    packet.meta.trace_id = 0;
    enclave.process(packet);
    benchmark::DoNotOptimize(packet.priority);
  }
}
BENCHMARK(BM_Process_SpanTracing)->Arg(0)->Arg(128)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
