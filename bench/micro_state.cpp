// micro_state: the million-flow state engine churn benchmark. Runs the
// FlowStore through a sustained create/hit/erase churn at 10k and 1M
// live entries, compares the hit path against the pre-FlowStore store
// (shared_mutex + unordered_map<int64, shared_ptr<Entry>> + creation-
// order deque, replicated below), and writes BENCH_state.json
// (override with --json=PATH).
//
// Acceptance bars (ISSUE 9):
//   - sustained churn holds >= 1,000,000 live entries,
//   - end-to-end action latency p99 (enclave.process_batch running the
//     PIAS message-state action) at 1M live <= 1.5x the 10k p99,
//   - mid-churn hit-path lookup >= 3x faster than the baseline store
//     on the same 90/10 profile at the large population.
//
// --smoke shrinks the populations (1M -> 100k) and skips the absolute
// gates for CI smoke lanes; the full gates run in the state-churn job.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <random>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/enclave.h"
#include "src/functions/scheduling.h"
#include "src/state/epoch.h"
#include "src/state/flow_store.h"

namespace {

using eden::state::EpochDomain;
using eden::state::FlowStore;
using eden::state::FlowStoreConfig;

bool g_smoke = false;

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void stamp_key(void* ctx, eden::lang::StateBlock& block) {
  block.scalars.assign(4, *static_cast<const std::int64_t*>(ctx));
}

// The pre-FlowStore message store, replicated verbatim in shape: one
// shared_mutex over an unordered_map of shared_ptr entries plus a
// creation-order deque for capacity eviction. Every hit takes the
// shared lock, hashes, chases the node pointer and copies the
// shared_ptr (two atomic refcount ops) — the per-packet cost the
// FlowStore exists to delete.
struct BaselineStore {
  struct Entry {
    eden::lang::StateBlock block;
    std::mutex lock;
  };

  std::shared_mutex mutex;
  std::unordered_map<std::int64_t, std::shared_ptr<Entry>> map;
  std::deque<std::int64_t> creation_order;

  std::shared_ptr<Entry> acquire(std::int64_t key) {
    {
      std::shared_lock<std::shared_mutex> lock(mutex);
      auto it = map.find(key);
      if (it != map.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mutex);
    auto [it, inserted] = map.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<Entry>();
      it->second->block.scalars.assign(4, key);
      creation_order.push_back(key);
    }
    return it->second;
  }

  bool erase(std::int64_t key) {
    std::unique_lock<std::shared_mutex> lock(mutex);
    return map.erase(key) != 0;
  }
};

FlowStoreConfig churn_config() {
  FlowStoreConfig config;
  config.shards = 8;
  config.initial_capacity = 4096;
  config.idle_timeout_ns = 60'000'000'000;  // wheel armed, nothing expires
  config.wheel_tick_ns = 1'000'000;
  return config;
}

// --- google-benchmark hit-path microbenches ----------------------------

void BM_FlowStoreAcquireHit(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  FlowStore store(churn_config());
  {
    EpochDomain::Guard guard(store.domain());
    for (std::int64_t k = 0; k < n; ++k) {
      store.acquire(guard, k, k + 1, &stamp_key, &k);
    }
  }
  std::mt19937_64 rng(42);
  std::int64_t now = n;
  for (auto _ : state) {
    // One pin per 64 packets, the enclave's process_batch discipline.
    EpochDomain::Guard guard(store.domain());
    for (int i = 0; i < 64; ++i) {
      std::int64_t key = static_cast<std::int64_t>(rng() % n);
      benchmark::DoNotOptimize(
          store.acquire(guard, key, ++now, &stamp_key, &key));
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FlowStoreAcquireHit)->Arg(10'000)->Arg(100'000);

void BM_BaselineAcquireHit(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  BaselineStore store;
  for (std::int64_t k = 0; k < n; ++k) store.acquire(k);
  std::mt19937_64 rng(42);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      const std::int64_t key = static_cast<std::int64_t>(rng() % n);
      benchmark::DoNotOptimize(store.acquire(key));
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BaselineAcquireHit)->Arg(10'000)->Arg(100'000);

// --- Acceptance sweep ---------------------------------------------------

struct ChurnRow {
  std::size_t live_target = 0;
  std::size_t sustained_live = 0;
  double ops_per_sec = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  // Read-only hit batches sampled mid-churn: the per-lookup cost of
  // the store's hit path at this live population, caches churning.
  double lookup_ns = 0;
};

double percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double idx = p * static_cast<double>(samples.size() - 1);
  return samples[static_cast<std::size_t>(idx)];
}

// Churn at a fixed live population: 90% hits on the resident keyspace,
// 10% create-new + erase-oldest pairs that keep the population level
// while forcing slab recycling, tombstone traffic and wheel scheduling.
// Per-op latency is sampled in 64-op batches. The batch runs the
// enclave's discipline: keys are known up front (they come off packet
// headers), so the two prefetch waves overlap the table and entry
// cache misses across the whole batch before any lookup executes.
ChurnRow run_churn(std::size_t live_target) {
  ChurnRow row;
  row.live_target = live_target;
  FlowStore store(churn_config());

  std::int64_t clock = 1;
  {
    EpochDomain::Guard guard(store.domain());
    for (std::size_t k = 0; k < live_target; ++k) {
      std::int64_t key = static_cast<std::int64_t>(k);
      store.acquire(guard, key, ++clock, &stamp_key, &key);
    }
  }

  const std::size_t total_ops =
      std::max<std::size_t>(2 * live_target, 2'000'000);
  constexpr std::size_t kBatch = 64;
  std::vector<double> samples;
  samples.reserve(total_ops / kBatch + 1);
  std::mt19937_64 rng(7);
  std::int64_t next_key = static_cast<std::int64_t>(live_target);
  std::int64_t oldest_key = 0;
  std::size_t min_live = store.live();

  std::int64_t keys[kBatch];
  std::int64_t erase_keys[kBatch];
  bool is_churn_pair[kBatch];
  std::vector<double> lookup_samples;

  double store_ns = 0;
  for (std::size_t done = 0; done < total_ops; done += kBatch) {
    // Key selection models packet arrival: the ids are in hand before
    // the batch body runs, exactly as in DataPlane::worker_main.
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < kBatch; ++i) {
      is_churn_pair[i] = rng() % 10 == 0;
      if (is_churn_pair[i]) {
        keys[i] = next_key++;
        erase_keys[pairs++] = oldest_key++;
      } else {
        const auto span = static_cast<std::uint64_t>(next_key - oldest_key);
        keys[i] = oldest_key + static_cast<std::int64_t>(rng() % span);
      }
    }
    const double t0 = now_ns();
    // Pin once per 64-op batch, the enclave's process_batch discipline;
    // dropping the pin between batches lets retired slabs recycle.
    EpochDomain::Guard guard(store.domain());
    for (std::size_t i = 0; i < kBatch; ++i) store.prefetch(guard, keys[i]);
    for (std::size_t i = 0; i < pairs; ++i) {
      store.prefetch(guard, erase_keys[i]);
    }
    for (std::size_t i = 0; i < kBatch; ++i) {
      store.prefetch_entry(guard, keys[i]);
    }
    for (std::size_t i = 0; i < pairs; ++i) {
      store.prefetch_entry(guard, erase_keys[i]);
    }
    std::size_t pair = 0;
    for (std::size_t i = 0; i < kBatch; ++i) {
      ++clock;
      if (is_churn_pair[i]) {
        // Churn pair: retire the oldest resident, admit a fresh key.
        store.erase(erase_keys[pair++]);
        store.acquire(guard, keys[i], clock, &stamp_key, &keys[i]);
      } else {
        benchmark::DoNotOptimize(
            store.acquire(guard, keys[i], clock, &stamp_key, &keys[i]));
      }
    }
    const double batch_ns = now_ns() - t0;
    store_ns += batch_ns;
    samples.push_back(batch_ns / static_cast<double>(kBatch));
    if ((done / kBatch) % 128 == 0) {
      // Read-only hit batch: the peek path the PR 8 gate compares —
      // no shard lock, no refcounts, no touch stamp, misses overlapped
      // by the same two prefetch waves.
      for (std::size_t i = 0; i < kBatch; ++i) {
        const auto span = static_cast<std::uint64_t>(next_key - oldest_key);
        keys[i] = oldest_key + static_cast<std::int64_t>(rng() % span);
      }
      FlowStore::Entry* found[kBatch];
      const double l0 = now_ns();
      EpochDomain::Guard lg(store.domain());
      store.find_batch(lg, keys, kBatch, found);
      benchmark::DoNotOptimize(found[kBatch - 1]);
      lookup_samples.push_back((now_ns() - l0) /
                               static_cast<double>(kBatch));
    }
    if ((done / kBatch) % 1024 == 0) {
      store.advance(clock);  // keep the wheel cursor honest
      min_live = std::min(min_live, store.live());
    }
  }

  row.sustained_live = std::min(min_live, store.live());
  row.ops_per_sec = static_cast<double>(total_ops) / (store_ns * 1e-9);
  row.p50_ns = percentile(samples, 0.50);
  row.p99_ns = percentile(samples, 0.99);
  row.lookup_ns = percentile(lookup_samples, 0.50);
  return row;
}

// The identical 90/10 churn profile against the pre-FlowStore store.
// There is nothing to prefetch: every hit serializes shared_lock,
// bucket walk, node chase and a shared_ptr refcount round-trip.
ChurnRow run_baseline_churn(std::size_t live_target) {
  ChurnRow row;
  row.live_target = live_target;
  BaselineStore store;
  for (std::size_t k = 0; k < live_target; ++k) {
    store.acquire(static_cast<std::int64_t>(k));
  }

  const std::size_t total_ops =
      std::max<std::size_t>(2 * live_target, 2'000'000);
  constexpr std::size_t kBatch = 64;
  std::vector<double> samples;
  samples.reserve(total_ops / kBatch + 1);
  std::mt19937_64 rng(7);
  std::int64_t next_key = static_cast<std::int64_t>(live_target);
  std::int64_t oldest_key = 0;

  std::int64_t keys[kBatch];
  std::int64_t erase_keys[kBatch];
  bool is_churn_pair[kBatch];
  std::vector<double> lookup_samples;

  double store_ns = 0;
  for (std::size_t done = 0; done < total_ops; done += kBatch) {
    // Same key-selection-outside-the-timed-window discipline as the
    // FlowStore loop, so the two timings cover store work only.
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < kBatch; ++i) {
      is_churn_pair[i] = rng() % 10 == 0;
      if (is_churn_pair[i]) {
        keys[i] = next_key++;
        erase_keys[pairs++] = oldest_key++;
      } else {
        const auto span = static_cast<std::uint64_t>(next_key - oldest_key);
        keys[i] = oldest_key + static_cast<std::int64_t>(rng() % span);
      }
    }
    const double t0 = now_ns();
    std::size_t pair = 0;
    for (std::size_t i = 0; i < kBatch; ++i) {
      if (is_churn_pair[i]) {
        store.erase(erase_keys[pair++]);
        benchmark::DoNotOptimize(store.acquire(keys[i]));
      } else {
        benchmark::DoNotOptimize(store.acquire(keys[i]));
      }
    }
    const double batch_ns = now_ns() - t0;
    store_ns += batch_ns;
    samples.push_back(batch_ns / static_cast<double>(kBatch));
    if ((done / kBatch) % 128 == 0) {
      // Read-only hit batch: every lookup takes the shared lock, walks
      // the bucket, chases the node and round-trips the shared_ptr
      // refcount — nothing to prefetch, the addresses are unknowable
      // until the probe resolves them.
      for (std::size_t i = 0; i < kBatch; ++i) {
        const auto span = static_cast<std::uint64_t>(next_key - oldest_key);
        keys[i] = oldest_key + static_cast<std::int64_t>(rng() % span);
      }
      const double l0 = now_ns();
      for (std::size_t i = 0; i < kBatch; ++i) {
        benchmark::DoNotOptimize(store.acquire(keys[i]));
      }
      lookup_samples.push_back((now_ns() - l0) /
                               static_cast<double>(kBatch));
    }
  }

  row.sustained_live = store.map.size();
  row.ops_per_sec = static_cast<double>(total_ops) / (store_ns * 1e-9);
  row.p50_ns = percentile(samples, 0.50);
  row.p99_ns = percentile(samples, 0.99);
  row.lookup_ns = percentile(lookup_samples, 0.50);
  return row;
}

struct ActionRow {
  std::size_t live_target = 0;
  double p50_ns = 0;
  double p99_ns = 0;
};

// The flat-tail gate measures what the ISSUE names: p99 ACTION latency
// with N live message entries, end to end through the enclave's
// batched data path (classify, match, group by message, PIAS action
// writing message state). The message-store cost is one component of
// the action latency, and the gate asserts it stays one — the p99 at
// 1M live entries must not leave the 10k p99's regime.
ActionRow run_action_latency(std::size_t live_target) {
  using namespace eden;
  ActionRow row;
  row.live_target = live_target;

  core::EnclaveConfig config;
  config.max_messages_per_action = 0;  // population is the variable
  config.message_store_shards = 8;
  core::ClassRegistry registry;
  core::Enclave enclave("bench", registry, config);
  const core::ClassId cls = registry.intern("app.rs.cls");
  functions::PiasFunction pias;
  const core::ActionId action = pias.install(enclave, false);
  const std::int64_t limits[] = {10240, 1048576};
  const std::int64_t prios[] = {7, 5};
  functions::push_priority_thresholds(enclave, action, limits, prios);
  const core::TableId table = enclave.create_table("t");
  enclave.add_rule(table, core::ClassPattern("app.rs.cls"), action);

  constexpr std::size_t kBatch = 64;
  std::vector<netsim::PacketPtr> packets;
  for (std::size_t i = 0; i < kBatch; ++i) {
    auto p = std::make_shared<netsim::Packet>();
    p->src = 1;
    p->dst = 2;
    p->src_port = 10000;
    p->dst_port = 8000;
    p->protocol = netsim::Protocol::tcp;
    p->size_bytes = 1514;
    p->payload_bytes = 1460;
    p->meta.flow_size = 64 * 1024;
    p->classes.add(cls);
    packets.push_back(std::move(p));
  }
  std::span<netsim::PacketPtr> batch(packets);

  // Preload the live population.
  for (std::size_t base = 0; base < live_target; base += kBatch) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      packets[i]->meta.msg_id = static_cast<std::int64_t>(base + i + 1);
      packets[i]->drop_mark = false;
    }
    enclave.process_batch(batch);
  }

  const std::size_t total_ops = 2'000'000;
  std::vector<double> samples;
  samples.reserve(total_ops / kBatch + 1);
  std::mt19937_64 rng(21);
  for (std::size_t done = 0; done < total_ops; done += kBatch) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      packets[i]->meta.msg_id =
          static_cast<std::int64_t>(rng() % live_target + 1);
      packets[i]->drop_mark = false;
    }
    const double t0 = now_ns();
    enclave.process_batch(batch);
    samples.push_back((now_ns() - t0) / static_cast<double>(kBatch));
  }
  row.p50_ns = percentile(samples, 0.50);
  row.p99_ns = percentile(samples, 0.99);
  return row;
}

int run_acceptance_sweep(const std::string& json_path) {
  const std::size_t big = g_smoke ? 100'000 : 1'000'000;
  std::vector<ChurnRow> rows;
  for (const std::size_t live : {std::size_t{10'000}, big}) {
    rows.push_back(run_churn(live));
    const ChurnRow& r = rows.back();
    std::printf(
        "churn live=%-8zu sustained=%-8zu  %.2fM ops/s  p50=%.0fns  "
        "p99=%.0fns\n",
        r.live_target, r.sustained_live, r.ops_per_sec / 1e6, r.p50_ns,
        r.p99_ns);
  }
  // The head-to-head gate runs the identical churn profile against the
  // pre-FlowStore store at the large population and compares the
  // mid-churn hit-path lookup — the per-packet cost the engine exists
  // to delete.
  const ChurnRow base = run_baseline_churn(big);
  const double flow_ns = 1e9 / rows.back().ops_per_sec;
  const double baseline_ns = 1e9 / base.ops_per_sec;
  const double speedup = rows.back().lookup_ns > 0
                             ? base.lookup_ns / rows.back().lookup_ns
                             : 0;
  std::printf(
      "churn @%zu: flow=%.1fns/op baseline=%.1fns/op  "
      "lookup flow=%.1fns baseline=%.1fns  speedup=%.2fx\n",
      big, flow_ns, baseline_ns, rows.back().lookup_ns, base.lookup_ns,
      speedup);

  // Flat-tail gate: end-to-end action latency through the enclave at
  // both populations.
  std::vector<ActionRow> action_rows;
  for (const std::size_t live : {std::size_t{10'000}, big}) {
    action_rows.push_back(run_action_latency(live));
    const ActionRow& a = action_rows.back();
    std::printf("action live=%-8zu p50=%.0fns  p99=%.0fns\n", a.live_target,
                a.p50_ns, a.p99_ns);
  }
  const double p99_ratio = action_rows[0].p99_ns > 0
                               ? action_rows.back().p99_ns /
                                     action_rows[0].p99_ns
                               : 0;

  std::string json =
      "{\n  \"note\": \"Churn profile: 90% hit acquires over the resident "
      "keyspace, 10% erase-oldest+create-new pairs, wheel advanced every "
      "64k ops; per-op latency sampled in 64-op batches. The baseline "
      "store is the pre-FlowStore design (shared_mutex + unordered_map of "
      "shared_ptr entries + creation-order deque) replicated in-bench.\",\n";
  json += "  \"smoke\": " + std::string(g_smoke ? "true" : "false") + ",\n";
  json += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ChurnRow& r = rows[i];
    json += "    {\"live_target\": " + std::to_string(r.live_target) +
            ", \"sustained_live\": " + std::to_string(r.sustained_live) +
            ", \"ops_per_sec\": " + std::to_string(r.ops_per_sec) +
            ", \"p50_ns\": " + std::to_string(r.p50_ns) +
            ", \"p99_ns\": " + std::to_string(r.p99_ns) +
            ", \"lookup_ns\": " + std::to_string(r.lookup_ns) + "}";
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"action_latency\": [\n";
  for (std::size_t i = 0; i < action_rows.size(); ++i) {
    const ActionRow& a = action_rows[i];
    json += "    {\"live_target\": " + std::to_string(a.live_target) +
            ", \"p50_ns\": " + std::to_string(a.p50_ns) +
            ", \"p99_ns\": " + std::to_string(a.p99_ns) + "}";
    json += i + 1 < action_rows.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"hit_path\": {\"flow_churn_ns_per_op\": " +
          std::to_string(flow_ns) +
          ", \"baseline_churn_ns_per_op\": " + std::to_string(baseline_ns) +
          ", \"flow_lookup_ns\": " + std::to_string(rows.back().lookup_ns) +
          ", \"baseline_lookup_ns\": " + std::to_string(base.lookup_ns) +
          ", \"baseline_p99_ns\": " + std::to_string(base.p99_ns) +
          ", \"speedup\": " + std::to_string(speedup) + "},\n";
  json += "  \"headline\": {\n";
  json += "    \"sustained_live\": " +
          std::to_string(rows.back().sustained_live) + ",\n";
  json += "    \"p99_ratio_big_vs_10k\": " + std::to_string(p99_ratio) +
          ",\n";
  json += "    \"hit_path_speedup\": " + std::to_string(speedup) +
          "\n  }\n}\n";

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());

  if (g_smoke) return 0;  // smoke lanes check the machinery, not the bars

  int rc = 0;
  if (rows.back().sustained_live < 1'000'000) {
    std::fprintf(stderr, "FAIL: sustained live %zu < 1,000,000\n",
                 rows.back().sustained_live);
    rc = 1;
  }
  if (p99_ratio > 1.5) {
    std::fprintf(
        stderr,
        "FAIL: action p99 at 1M live is %.2fx the 10k p99 (> 1.5x)\n",
        p99_ratio);
    rc = 1;
  }
  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: churn hit path %.2fx the baseline store (< 3x)\n",
                 speedup);
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_state.json";
  // Strip our own flags before handing argv to google-benchmark.
  for (int i = 1; i < argc;) {
    const std::string arg = argv[i];
    bool consumed = true;
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      g_smoke = true;
    } else {
      consumed = false;
    }
    if (consumed) {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_acceptance_sweep(json_path);
}
