// Microbenchmarks of the sharded data plane: SPSC ring hand-off cost,
// steering, and — the headline — the worker-count scaling curve of
// batched enclave execution plus the pooled-vs-heap datapath A/B.
//
// Besides the google-benchmark suite, main() runs a fixed-format sweep
// and writes BENCH_dataplane.json (override with --json=PATH). Two
// action profiles are swept, each in two datapath modes:
//
//   profile "heavy"    ~64 interpreter loop steps + a message-state
//                      bump per packet. Interpreter-dominated: this is
//                      the PR5-comparable scaling curve, and buffer
//                      management is a small fraction of its cost.
//   profile "forward"  a steer-only action (one field write). The
//                      per-packet datapath overhead — allocation, ring
//                      hops, classify/match, state marshalling — IS the
//                      cost, so this profile is where the pooled burst
//                      datapath shows up, and where the >=5x headline
//                      per-worker rate is gated.
//
//   mode "heap_single"  per-packet std::make_shared + per-packet
//                       submit(): the PR5 datapath, kept as the A side.
//   mode "pooled_burst" pool-backed make_packet + submit_burst(): the
//                       PR6 datapath, B side.
//
// Throughput is reported two ways:
//   wall_pkts_per_sec  end-to-end wall-clock rate (bounded by the
//                      machine's core count — on a 1-core CI box every
//                      worker count walls out at the same rate), and
//   cpu_pkts_per_sec   the sum of per-worker contention-free rates
//                      (packets / CLOCK_THREAD_CPUTIME_ID nanoseconds
//                      spent inside process_batch). This is the
//                      aggregate enclave capacity the shard layout
//                      delivers when each worker has its own core, and
//                      is what the scaling curve tracks.
// allocs_per_packet counts process-wide operator-new calls per packet
// during the run (this binary links the counting allocator), making
// datapath allocation regressions visible in the JSON.
// --smoke shrinks the sweep and skips the absolute-rate gate for CI.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/enclave.h"
#include "hoststack/dataplane.h"
#include "hoststack/spsc_ring.h"
#include "support/alloc_count.h"

namespace {

using namespace eden;

long g_sweep_packets = 40000;
bool g_smoke = false;

// PR5's recorded 1-worker cpu_pkts_per_sec (heavy action, heap+single
// datapath) — the denominator of every speedup in the JSON.
constexpr double kPr5Baseline1wCpuRate = 805712.0;

// A compute-heavy per-message action (~64 interpreter loop steps plus a
// message-state bump), so the measured scaling is enclave execution,
// not ring overhead.
constexpr const char* kHeavyAction = R"(fun(p, m, g) ->
    let i = 0 in
    let acc = 0 in
    (while i < 64 do acc <- acc + i * 3 - 1; i <- i + 1 done;
     m.state0 <- m.state0 + 1;
     p.path <- acc % 1000))";

// A steer-only action: the minimal useful NF (set a priority and go).
// Everything around it — allocation, rings, classification, state
// marshalling — is what this profile measures.
constexpr const char* kForwardAction = "fun(p, m, g) -> p.priority <- 7";

struct Bed {
  core::ClassRegistry registry;
  core::Enclave enclave{"bench", registry};
  core::Controller controller{registry};

  explicit Bed(const char* action_source = kHeavyAction) {
    const auto program = controller.compile("act", action_source, {});
    const core::ActionId action = enclave.install_action("act", program, {});
    const core::TableId table = enclave.create_table("t");
    enclave.add_rule(table, core::ClassPattern("*"), action);
  }
};

void fill_packet(netsim::Packet& p, std::uint64_t i) {
  p.src = 1;
  p.dst = 2;
  p.src_port = 1000;
  p.dst_port = 2000;
  p.protocol = netsim::Protocol::tcp;
  p.size_bytes = 1514;
  p.payload_bytes = 1460;
  p.meta.msg_id = static_cast<std::int64_t>(i % 1024 + 1);
}

netsim::PacketPtr bench_packet(std::uint64_t i) {
  auto p = netsim::make_packet();
  fill_packet(*p, i);
  return p;
}

void BM_SpscRing_PushPop(benchmark::State& state) {
  hoststack::SpscRing<netsim::PacketPtr> ring(1024);
  auto p = netsim::make_packet();
  netsim::PacketPtr out[64];
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      auto q = p;
      benchmark::DoNotOptimize(ring.push(std::move(q)));
    }
    benchmark::DoNotOptimize(ring.pop_bulk(out, 64));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SpscRing_PushPop);

void BM_SpscRing_PushBulkPopBulk(benchmark::State& state) {
  hoststack::SpscRing<netsim::PacketPtr> ring(1024);
  auto p = netsim::make_packet();
  netsim::PacketPtr in[64];
  netsim::PacketPtr out[64];
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) in[i] = p;
    benchmark::DoNotOptimize(ring.push_bulk(in, 64));
    benchmark::DoNotOptimize(ring.pop_bulk(out, 64));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SpscRing_PushBulkPopBulk);

void BM_PacketAlloc_Heap(benchmark::State& state) {
  for (auto _ : state) {
    auto p = std::make_shared<netsim::Packet>();
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketAlloc_Heap);

void BM_PacketAlloc_Pooled(benchmark::State& state) {
  for (auto _ : state) {
    auto p = netsim::make_packet();
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketAlloc_Pooled);

void BM_Steering(benchmark::State& state) {
  auto p = bench_packet(7);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += hoststack::DataPlane::shard_of(
        core::Enclave::steering_key(*p), 4);
    p->meta.msg_id = static_cast<std::int64_t>(acc % 4096 + 1);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Steering);

// Submit a burst through the data plane and flush it; the benchmark
// argument is the worker count.
void BM_DataPlane(benchmark::State& state) {
  Bed bed;
  hoststack::DataPlaneConfig config;
  config.workers = static_cast<std::size_t>(state.range(0));
  config.ring_capacity = 1024;
  hoststack::DataPlane dp(bed.enclave, config);
  const auto sink = [](netsim::PacketPtr) {};
  std::uint64_t seq = 0;
  std::vector<netsim::PacketPtr> burst(64);
  for (auto _ : state) {
    for (int b = 0; b < 4; ++b) {
      for (auto& slot : burst) slot = bench_packet(seq++);
      std::size_t sent = 0;
      while (sent < burst.size()) {
        sent += dp.submit_burst(std::span(burst.data(), burst.size()));
        if (sent < burst.size()) dp.drain_completions(sink);
      }
    }
    dp.flush(sink);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_DataPlane)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

struct SweepRun {
  std::size_t workers = 0;
  std::uint64_t packets = 0;
  std::uint64_t wall_ns = 0;
  double wall_rate = 0.0;
  double cpu_rate = 0.0;
  double imbalance = 0.0;
  double allocs_per_packet = 0.0;
  hoststack::DataPlaneStats stats;
};

// One sweep run: `pooled_burst` selects the PR6 datapath (pool-backed
// packets, burst submission); otherwise the PR5 datapath (make_shared,
// per-packet submit) is replayed as the A side.
SweepRun run_sweep(const char* action_source, bool pooled_burst,
                   std::size_t workers, std::uint64_t packets) {
  Bed bed(action_source);
  hoststack::DataPlaneConfig config;
  config.workers = workers;
  config.ring_capacity = 1024;
  hoststack::DataPlane dp(bed.enclave, config);
  const auto sink = [](netsim::PacketPtr) {};

  const auto allocs0 = testsupport::alloc_counts();
  const auto t0 = std::chrono::steady_clock::now();
  if (pooled_burst) {
    constexpr std::size_t kBurst = 64;
    std::vector<netsim::PacketPtr> burst(kBurst);
    std::uint64_t seq = 0;
    while (seq < packets) {
      std::size_t filled = 0;
      while (filled < kBurst && seq < packets) {
        burst[filled] = netsim::make_packet();
        fill_packet(*burst[filled], seq++);
        ++filled;
      }
      std::size_t sent = 0;
      while (sent < filled) {
        sent += dp.submit_burst(std::span(burst.data(), filled));
        if (sent < filled) dp.drain_completions(sink);
      }
    }
  } else {
    for (std::uint64_t i = 0; i < packets; ++i) {
      auto p = std::make_shared<netsim::Packet>();
      fill_packet(*p, i);
      while (!dp.submit(p)) dp.drain_completions(sink);
    }
  }
  dp.flush(sink);
  const auto t1 = std::chrono::steady_clock::now();
  const auto allocs1 = testsupport::alloc_counts();

  SweepRun run;
  run.workers = workers;
  run.packets = packets;
  run.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  run.wall_rate = run.wall_ns > 0
                      ? static_cast<double>(packets) * 1e9 /
                            static_cast<double>(run.wall_ns)
                      : 0.0;
  run.allocs_per_packet =
      packets > 0 ? static_cast<double>(allocs1.news - allocs0.news) /
                        static_cast<double>(packets)
                  : 0.0;
  run.stats = dp.stats();
  for (const auto& w : run.stats.workers) {
    if (w.busy_ns > 0) {
      run.cpu_rate += static_cast<double>(w.processed) * 1e9 /
                      static_cast<double>(w.busy_ns);
    }
  }
  run.imbalance = run.stats.imbalance;
  return run;
}

std::string runs_json(const std::vector<SweepRun>& runs) {
  const double base = runs.front().cpu_rate;
  std::string json = "[\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SweepRun& r = runs[i];
    json += "        {\"workers\": " + std::to_string(r.workers) +
            ", \"wall_ns\": " + std::to_string(r.wall_ns) +
            ", \"wall_pkts_per_sec\": " + std::to_string(r.wall_rate) +
            ", \"cpu_pkts_per_sec\": " + std::to_string(r.cpu_rate) +
            ", \"imbalance\": " + std::to_string(r.imbalance) +
            ", \"allocs_per_packet\": " + std::to_string(r.allocs_per_packet) +
            ", \"scaling_vs_1w\": " +
            std::to_string(base > 0 ? r.cpu_rate / base : 0.0) +
            ", \"per_worker\": [";
    for (std::size_t w = 0; w < r.stats.workers.size(); ++w) {
      const auto& ws = r.stats.workers[w];
      if (w != 0) json += ", ";
      json += "{\"processed\": " + std::to_string(ws.processed) +
              ", \"busy_ns\": " + std::to_string(ws.busy_ns) +
              ", \"batches\": " + std::to_string(ws.batches) +
              ", \"max_ring_depth\": " + std::to_string(ws.max_ring_depth) +
              "}";
    }
    json += "]}";
    json += i + 1 < runs.size() ? ",\n" : "\n";
  }
  json += "      ]";
  return json;
}

int run_scaling_sweep(const std::string& json_path) {
  const auto packets = static_cast<std::uint64_t>(g_sweep_packets);
  struct Profile {
    const char* name;
    const char* source;
    const char* description;
  };
  const Profile profiles[] = {
      {"heavy", kHeavyAction,
       "~64 interpreter steps + message-state bump per packet "
       "(PR5-comparable scaling curve)"},
      {"forward", kForwardAction,
       "steer-only action: per-packet datapath overhead dominates"},
  };
  struct Mode {
    const char* name;
    bool pooled_burst;
  };
  const Mode modes[] = {
      {"heap_single", false},  // PR5 datapath: make_shared + submit()
      {"pooled_burst", true},  // PR6 datapath: pool + submit_burst()
  };

  std::string json =
      "{\n  \"note\": \"cpu_pkts_per_sec sums per-worker contention-free "
      "rates (thread CPU time inside process_batch); it equals wall-clock "
      "scaling when each worker has its own core. wall_pkts_per_sec is "
      "bounded by the benchmark machine's core count. allocs_per_packet is "
      "process-wide operator-new calls divided by packets for the run.\",\n";
  json += "  \"pr5_baseline_1w_cpu_pkts_per_sec\": " +
          std::to_string(kPr5Baseline1wCpuRate) + ",\n";
  json += "  \"packets_per_run\": " + std::to_string(packets) + ",\n";
  json += "  \"profiles\": [\n";

  double heavy_scaling4 = 0.0;
  double forward_pooled_1w = 0.0;
  double heavy_pooled_1w = 0.0;
  double pooled_allocs_per_packet = 0.0;

  for (std::size_t pi = 0; pi < std::size(profiles); ++pi) {
    const Profile& profile = profiles[pi];
    json += "    {\"profile\": \"" + std::string(profile.name) + "\",\n";
    json += "     \"description\": \"" + std::string(profile.description) +
            "\",\n     \"modes\": [\n";
    for (std::size_t mi = 0; mi < std::size(modes); ++mi) {
      const Mode& mode = modes[mi];
      std::vector<SweepRun> runs;
      for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
        runs.push_back(
            run_sweep(profile.source, mode.pooled_burst, workers, packets));
        std::printf(
            "%s/%s workers=%zu  wall=%.0f pkt/s  cpu-normalized=%.0f pkt/s  "
            "allocs/pkt=%.3f  imbalance=%.2f\n",
            profile.name, mode.name, runs.back().workers,
            runs.back().wall_rate, runs.back().cpu_rate,
            runs.back().allocs_per_packet, runs.back().imbalance);
      }
      json += "      {\"mode\": \"" + std::string(mode.name) +
              "\", \"runs\": " + runs_json(runs) + "}";
      json += mi + 1 < std::size(modes) ? ",\n" : "\n";

      const double base = runs.front().cpu_rate;
      if (profile.name == std::string("heavy") && mode.pooled_burst) {
        heavy_scaling4 = base > 0 ? runs[2].cpu_rate / base : 0.0;
        heavy_pooled_1w = base;
      }
      if (profile.name == std::string("forward") && mode.pooled_burst) {
        forward_pooled_1w = base;
        pooled_allocs_per_packet = runs.front().allocs_per_packet;
      }
    }
    json += "     ]}";
    json += pi + 1 < std::size(profiles) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"headline\": {\n";
  json += "    \"forward_pooled_1w_cpu_pkts_per_sec\": " +
          std::to_string(forward_pooled_1w) + ",\n";
  json += "    \"forward_pooled_speedup_vs_pr5_baseline\": " +
          std::to_string(forward_pooled_1w / kPr5Baseline1wCpuRate) + ",\n";
  json += "    \"heavy_pooled_1w_cpu_pkts_per_sec\": " +
          std::to_string(heavy_pooled_1w) + ",\n";
  json += "    \"heavy_pooled_speedup_vs_pr5_baseline\": " +
          std::to_string(heavy_pooled_1w / kPr5Baseline1wCpuRate) + ",\n";
  json += "    \"heavy_pooled_scaling_4w\": " +
          std::to_string(heavy_scaling4) + ",\n";
  json += "    \"pooled_allocs_per_packet\": " +
          std::to_string(pooled_allocs_per_packet) + "\n";
  json += "  }\n}\n";

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);

  std::printf(
      "heavy 4-worker scaling: %.2fx; forward pooled 1w: %.0f pkt/s "
      "(%.2fx PR5 baseline); pooled allocs/pkt: %.4f (wrote %s)\n",
      heavy_scaling4, forward_pooled_1w,
      forward_pooled_1w / kPr5Baseline1wCpuRate, pooled_allocs_per_packet,
      json_path.c_str());

  // The acceptance bars. Scaling: 4 heavy workers must deliver >= 3x
  // the aggregate enclave capacity of 1. Zero-alloc: the pooled burst
  // datapath must average (well) under 1/100 heap allocation per
  // packet. Headline rate: the forward profile's pooled per-worker
  // rate must clear 5x the PR5 baseline — skipped under --smoke, where
  // the runs are too short for stable absolute rates.
  int rc = 0;
  if (heavy_scaling4 < 3.0) {
    std::fprintf(stderr, "FAIL: heavy 4-worker scaling %.2fx < 3x\n",
                 heavy_scaling4);
    rc = 1;
  }
  if (pooled_allocs_per_packet > 0.01) {
    std::fprintf(stderr, "FAIL: pooled datapath allocates %.4f per packet\n",
                 pooled_allocs_per_packet);
    rc = 1;
  }
  if (!g_smoke && forward_pooled_1w < 5.0 * kPr5Baseline1wCpuRate) {
    std::fprintf(stderr,
                 "FAIL: forward pooled 1w %.0f pkt/s < 5x PR5 baseline "
                 "(%.0f)\n",
                 forward_pooled_1w, 5.0 * kPr5Baseline1wCpuRate);
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_dataplane.json";
  // Strip our own flags before handing argv to google-benchmark.
  for (int i = 1; i < argc;) {
    const std::string arg = argv[i];
    bool consumed = true;
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      g_sweep_packets = 4000;
      g_smoke = true;
    } else {
      consumed = false;
    }
    if (consumed) {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_scaling_sweep(json_path);
}
