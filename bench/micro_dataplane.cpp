// Microbenchmarks of the sharded data plane: SPSC ring hand-off cost,
// steering, and — the headline — the worker-count scaling curve of
// batched enclave execution.
//
// Besides the google-benchmark suite, main() runs a fixed-format sweep
// at 1/2/4/8 workers and writes BENCH_dataplane.json (override with
// --json=PATH). Throughput is reported two ways:
//   wall_pkts_per_sec  end-to-end wall-clock rate (bounded by the
//                      machine's core count — on a 1-core CI box every
//                      worker count walls out at the same rate), and
//   cpu_pkts_per_sec   the sum of per-worker contention-free rates
//                      (packets / CLOCK_THREAD_CPUTIME_ID nanoseconds
//                      spent inside process_batch). This is the
//                      aggregate enclave capacity the shard layout
//                      delivers when each worker has its own core, and
//                      is what the scaling curve tracks.
// --smoke shrinks the sweep for CI.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/enclave.h"
#include "hoststack/dataplane.h"
#include "hoststack/spsc_ring.h"

namespace {

using namespace eden;

long g_sweep_packets = 40000;

// A compute-heavy per-message action (~64 interpreter loop steps plus a
// message-state bump), so the measured scaling is enclave execution,
// not ring overhead.
constexpr const char* kHeavyAction = R"(fun(p, m, g) ->
    let i = 0 in
    let acc = 0 in
    (while i < 64 do acc <- acc + i * 3 - 1; i <- i + 1 done;
     m.state0 <- m.state0 + 1;
     p.path <- acc % 1000))";

struct Bed {
  core::ClassRegistry registry;
  core::Enclave enclave{"bench", registry};
  core::Controller controller{registry};

  Bed() {
    const auto program = controller.compile("heavy", kHeavyAction, {});
    const core::ActionId action =
        enclave.install_action("heavy", program, {});
    const core::TableId table = enclave.create_table("t");
    enclave.add_rule(table, core::ClassPattern("*"), action);
  }
};

netsim::PacketPtr bench_packet(std::uint64_t i) {
  auto p = netsim::make_packet();
  p->src = 1;
  p->dst = 2;
  p->src_port = 1000;
  p->dst_port = 2000;
  p->protocol = netsim::Protocol::tcp;
  p->size_bytes = 1514;
  p->payload_bytes = 1460;
  p->meta.msg_id = static_cast<std::int64_t>(i % 1024 + 1);
  return p;
}

void BM_SpscRing_PushPop(benchmark::State& state) {
  hoststack::SpscRing<netsim::PacketPtr> ring(1024);
  auto p = netsim::make_packet();
  netsim::PacketPtr out[64];
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      auto q = p;
      benchmark::DoNotOptimize(ring.push(std::move(q)));
    }
    benchmark::DoNotOptimize(ring.pop_bulk(out, 64));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SpscRing_PushPop);

void BM_Steering(benchmark::State& state) {
  auto p = bench_packet(7);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += hoststack::DataPlane::shard_of(
        core::Enclave::steering_key(*p), 4);
    p->meta.msg_id = static_cast<std::int64_t>(acc % 4096 + 1);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Steering);

// Submit a burst through the data plane and flush it; the benchmark
// argument is the worker count.
void BM_DataPlane(benchmark::State& state) {
  Bed bed;
  hoststack::DataPlaneConfig config;
  config.workers = static_cast<std::size_t>(state.range(0));
  config.ring_capacity = 1024;
  hoststack::DataPlane dp(bed.enclave, config);
  const auto sink = [](netsim::PacketPtr) {};
  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      auto p = bench_packet(seq++);
      while (!dp.submit(p)) dp.drain_completions(sink);
    }
    dp.flush(sink);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_DataPlane)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

struct SweepRun {
  std::size_t workers = 0;
  std::uint64_t packets = 0;
  std::uint64_t wall_ns = 0;
  double wall_rate = 0.0;
  double cpu_rate = 0.0;
  double imbalance = 0.0;
  hoststack::DataPlaneStats stats;
};

SweepRun run_sweep(std::size_t workers, std::uint64_t packets) {
  Bed bed;
  hoststack::DataPlaneConfig config;
  config.workers = workers;
  config.ring_capacity = 1024;
  hoststack::DataPlane dp(bed.enclave, config);
  const auto sink = [](netsim::PacketPtr) {};

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < packets; ++i) {
    auto p = bench_packet(i);
    while (!dp.submit(p)) dp.drain_completions(sink);
  }
  dp.flush(sink);
  const auto t1 = std::chrono::steady_clock::now();

  SweepRun run;
  run.workers = workers;
  run.packets = packets;
  run.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  run.wall_rate = run.wall_ns > 0
                      ? static_cast<double>(packets) * 1e9 /
                            static_cast<double>(run.wall_ns)
                      : 0.0;
  run.stats = dp.stats();
  for (const auto& w : run.stats.workers) {
    if (w.busy_ns > 0) {
      run.cpu_rate += static_cast<double>(w.processed) * 1e9 /
                      static_cast<double>(w.busy_ns);
    }
  }
  run.imbalance = run.stats.imbalance;
  return run;
}

int run_scaling_sweep(const std::string& json_path) {
  const auto packets = static_cast<std::uint64_t>(g_sweep_packets);
  std::vector<SweepRun> runs;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    runs.push_back(run_sweep(workers, packets));
    std::printf("workers=%zu  wall=%.0f pkt/s  cpu-normalized=%.0f pkt/s  "
                "imbalance=%.2f\n",
                runs.back().workers, runs.back().wall_rate,
                runs.back().cpu_rate, runs.back().imbalance);
  }

  const double base = runs.front().cpu_rate;
  std::string json = "{\n  \"note\": \"cpu_pkts_per_sec sums per-worker "
                     "contention-free rates (thread CPU time inside "
                     "process_batch); it equals wall-clock scaling when "
                     "each worker has its own core. wall_pkts_per_sec is "
                     "bounded by the benchmark machine's core count.\",\n";
  json += "  \"packets_per_run\": " + std::to_string(packets) + ",\n";
  json += "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SweepRun& r = runs[i];
    json += "    {\"workers\": " + std::to_string(r.workers) +
            ", \"wall_ns\": " + std::to_string(r.wall_ns) +
            ", \"wall_pkts_per_sec\": " + std::to_string(r.wall_rate) +
            ", \"cpu_pkts_per_sec\": " + std::to_string(r.cpu_rate) +
            ", \"imbalance\": " + std::to_string(r.imbalance) +
            ", \"scaling_vs_1w\": " +
            std::to_string(base > 0 ? r.cpu_rate / base : 0.0) +
            ", \"per_worker\": [";
    for (std::size_t w = 0; w < r.stats.workers.size(); ++w) {
      const auto& ws = r.stats.workers[w];
      if (w != 0) json += ", ";
      json += "{\"processed\": " + std::to_string(ws.processed) +
              ", \"busy_ns\": " + std::to_string(ws.busy_ns) +
              ", \"batches\": " + std::to_string(ws.batches) +
              ", \"max_ring_depth\": " + std::to_string(ws.max_ring_depth) +
              "}";
    }
    json += "]}";
    json += i + 1 < runs.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);

  // The acceptance bar: 4 workers must deliver >= 3x the aggregate
  // enclave capacity of 1 worker.
  const double scaling4 = base > 0 ? runs[2].cpu_rate / base : 0.0;
  std::printf("4-worker scaling: %.2fx (wrote %s)\n", scaling4,
              json_path.c_str());
  if (scaling4 < 3.0) {
    std::fprintf(stderr, "FAIL: 4-worker scaling %.2fx < 3x\n", scaling4);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_dataplane.json";
  // Strip our own flags before handing argv to google-benchmark.
  for (int i = 1; i < argc;) {
    const std::string arg = argv[i];
    bool consumed = true;
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      g_sweep_packets = 4000;
    } else {
      consumed = false;
    }
    if (consumed) {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_scaling_sweep(json_path);
}
